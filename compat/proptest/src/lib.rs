//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range and `any::<bool>()` strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! case number and generated inputs printed via `Debug`), and generation is
//! driven by a fixed-seed deterministic RNG, so failures reproduce exactly
//! across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert!` failed; the test fails.
    Fail(String),
}

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (subset of upstream `Strategy`; no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, f64);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(0u64..2) == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(0u64..=u64::MAX - 1)
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (subset of upstream `any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Combinator strategies, mirroring upstream's `prop` module paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.random_range(self.size.clone());
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// `Vec` strategy: `size.len()` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                    stringify!($a), stringify!($b), a, b, format!($($fmt)*)),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests (subset of upstream `proptest!`).
///
/// Each test runs `cases` deterministic seeded cases; `prop_assume!`
/// rejections are skipped without counting as failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg); $($rest)*);
    };
    (@with_cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Deterministic per-test seed derived from the test name.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                    });
                let mut rng =
                    <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < cfg.cases && attempts < cfg.cases.saturating_mul(20) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!("{:?}", ($( &$arg, )*));
                    // The immediately-called closure gives `$body` a `?`
                    // scope, like real proptest's test-case function.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs: {inputs}",
                                ran + 1,
                                stringify!($name),
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in 0.5f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_varies(b in any::<bool>(), c in any::<bool>()) {
            // Both values are valid booleans; nothing else to check.
            let _ = (b, c);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 1000, "x was {x}");
            }
        }
        inner();
    }
}
