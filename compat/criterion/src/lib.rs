//! Offline stand-in for the `criterion` crate.
//!
//! Provides the minimal API the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, and the
//! `criterion_group!` / `criterion_main!` macros — as a simple wall-clock
//! timer printing mean iteration time per benchmark. No statistics, plots,
//! or baselines; enough to run `cargo bench` without network access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size: 10 }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters == 0 { Duration::ZERO } else { b.total / b.iters as u32 };
    println!("bench {id:<40} {:>12.3?}/iter over {} iters", mean, b.iters);
}

/// Passed to benchmark closures; accumulates timed iterations.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` once, keeping its output alive until after the clock stops.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 3);
    }
}
