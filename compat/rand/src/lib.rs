//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` cannot be resolved. This crate re-implements the small
//! API surface the workspace actually uses — `StdRng::seed_from_u64` and
//! `Rng::random_range` over integer and float ranges — on top of a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, but every
//! consumer in this workspace only relies on *seed-determinism* (same seed,
//! same draws) and reasonable statistical quality, both of which hold.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a range can sample (subset of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from `rng` within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw 64-bit generator core (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53 random mantissa bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)` (stand-in for `random::<f64>()`).
    fn random_f64(&mut self) -> f64 {
        self.unit_f64()
    }

    /// A random boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(42); // distinct seeds should diverge quickly
            a.random_range(0u64..u64::MAX) == c.random_range(0u64..u64::MAX)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
