//! Cross-validation tests for the paper's appendix-A equivalences and the
//! §4.1 SRLG failure model, exercised through the facade.

use flexile::prelude::*;
use flexile::scenario::model::link_units;

/// Appendix A: minimizing ScenLoss ≡ minimizing MLU ≡ maximizing the
/// concurrent scale: `ScenLoss = max(0, 1 − 1/MLU)`.
#[test]
fn scenloss_equals_one_minus_inverse_mlu() {
    let topo = topology_by_name("Sprint").unwrap();
    // Overload the network: scale demand to MLU 1.5 so losses appear.
    let inst = Instance::single_class(topo, 3, 1.5, Some(20));
    let mlu = min_mlu(&inst.topo, &inst.tunnels[0], &inst.demands[0]).unwrap();
    assert!((mlu - 1.5).abs() < 1e-6);

    let units = link_units(&inst.topo, &vec![0.001; inst.topo.num_links()]);
    let set = enumerate_scenarios(
        &units,
        inst.topo.num_links(),
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 1, coverage_target: 2.0 },
    );
    // Intact-network ScenBest worst loss = 1 - 1/MLU = 1/3.
    let losses = flexile::te::mcf::scen_best_scenario(&inst, &set.scenarios[0], true);
    let worst = losses.iter().cloned().fold(0.0, f64::max);
    assert!(
        (worst - (1.0 - 1.0 / mlu)).abs() < 1e-6,
        "ScenLoss {worst} vs 1-1/MLU {}",
        1.0 - 1.0 / mlu
    );
}

/// Below saturation the optimal scenario loss is zero.
#[test]
fn scenloss_zero_below_saturation() {
    let topo = topology_by_name("Sprint").unwrap();
    let inst = Instance::single_class(topo, 3, 0.7, Some(20));
    let units = link_units(&inst.topo, &vec![0.001; inst.topo.num_links()]);
    let set = enumerate_scenarios(
        &units,
        inst.topo.num_links(),
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 1, coverage_target: 2.0 },
    );
    let worst = flexile::te::mcf::optimal_scen_loss(&inst, &set.scenarios[0], true);
    assert!(worst < 1e-6, "ScenLoss {worst} should be 0 at MLU 0.7");
}

/// SRLGs (§4.1): links sharing an optical component fail together. A
/// scenario set built from SRLG units must kill whole groups atomically.
#[test]
fn srlg_units_fail_atomically() {
    let _topo = Topology::new("sq", 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
    // Links 0 and 2 share fate; links 1 and 3 are independent.
    let units = vec![
        FailureUnit::srlg(&[LinkId(0), LinkId(2)], 0.01),
        FailureUnit::link(LinkId(1), 0.01),
        FailureUnit::link(LinkId(3), 0.01),
    ];
    let set = enumerate_scenarios(
        &units,
        4,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    assert_eq!(set.scenarios.len(), 8);
    for s in &set.scenarios {
        // Links 0 and 2 always share a fate.
        assert_eq!(
            s.cap_factor[0], s.cap_factor[2],
            "SRLG links diverged in {:?}",
            s.failed_units
        );
    }
    // The SRLG failure scenario exists and has the group's probability.
    let srlg_only = set
        .scenarios
        .iter()
        .find(|s| s.failed_units == vec![0])
        .expect("srlg scenario");
    assert!((srlg_only.prob - 0.01 * 0.99 * 0.99).abs() < 1e-12);
    assert_eq!(srlg_only.cap_factor, vec![0.0, 1.0, 0.0, 1.0]);
}

/// Flexile designs correctly against SRLG scenario sets: the square ring
/// with a correlated (0,2) pair still admits a zero-PercLoss design at 99%
/// for adjacent flows.
#[test]
fn flexile_with_srlgs() {
    let topo = Topology::new("sq", 4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut class = ClassConfig::single();
    class.beta = 0.99;
    let inst = Instance {
        topo,
        pairs,
        classes: vec![class],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    let units = vec![
        FailureUnit::srlg(&[LinkId(0), LinkId(2)], 0.005),
        FailureUnit::link(LinkId(1), 0.005),
        FailureUnit::link(LinkId(3), 0.005),
    ];
    let set = enumerate_scenarios(
        &inst_units(&units),
        4,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    // Each flow's direct link is alive with probability ≥ 0.99 even under
    // the correlated failure, so zero PercLoss is achievable.
    assert!(design.penalty < 1e-6, "penalty {}", design.penalty);
}

fn inst_units(u: &[FailureUnit]) -> Vec<FailureUnit> {
    u.to_vec()
}

/// §4.4 imperfect-probability compensation: the inflated target covers the
/// true SLO even when predictions overstate scenario probabilities.
#[test]
fn inflate_beta_compensates_prediction_error() {
    use flexile::core::inflate_beta;
    let beta = 0.99;
    let margin = 0.005;
    let designed = inflate_beta(beta, margin);
    assert!(designed > beta);
    assert!(designed <= 1.0);
    // Designing with overestimated probabilities: true mass of the covered
    // set is at least designed / (1 + margin) >= beta.
    assert!(designed / (1.0 + margin) + 1e-12 >= beta);
    assert_eq!(inflate_beta(0.999, 1.0), 1.0); // saturates
}
