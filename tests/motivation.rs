//! Integration tests for the paper's §3 motivation and appendix
//! propositions, exercised through the public facade API.

use flexile::prelude::*;
use flexile::scenario::model::link_units;

/// The Fig. 1 triangle with β = 0.99.
fn fig1() -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut class = ClassConfig::single();
    class.beta = 0.99;
    let inst = Instance {
        topo,
        pairs,
        classes: vec![class],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    let units = link_units(&inst.topo, &[0.01; 3]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

fn percloss(r: &SchemeResult, set: &ScenarioSet, beta: f64) -> f64 {
    let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
    let flows: Vec<usize> = (0..r.loss.len()).collect();
    perc_loss(&m, &flows, beta)
}

#[test]
fn fig2_scenbest_stuck_at_half() {
    // "ScenBest can only support 0.5 units for f1 and f2 99% of the time."
    let (inst, set) = fig1();
    let r = flexile::te::mcf::scen_best(&inst, &set);
    let pl = percloss(&r, &set, 0.99);
    assert!((pl - 0.5).abs() < 1e-6, "ScenBest PercLoss = {pl}");
}

#[test]
fn fig3_teavar_stuck_at_half() {
    // "Teavar too cannot support more than 0.5 units 99% of time."
    let (inst, set) = fig1();
    let r = flexile::te::teavar::teavar(&inst, &set, 0.99);
    let pl = percloss(&r, &set, 0.99);
    assert!((0.45..=0.55).contains(&pl), "Teavar PercLoss = {pl}");
}

#[test]
fn fig4_flexile_meets_objectives() {
    // "Flexile can support 1 unit of each of f1 and f2 by prioritizing
    // them in their critical scenarios."
    let (inst, set) = fig1();
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let r = flexile_losses(&inst, &set, &design);
    let pl = percloss(&r, &set, 0.99);
    assert!(pl < 1e-6, "Flexile PercLoss = {pl}");
    // Fig. 4's criticality structure: the two single-failure scenarios
    // where a flow's direct link is alive are critical for it.
    let q_ab_fail = set
        .scenarios
        .iter()
        .position(|s| s.failed_units == vec![0])
        .unwrap();
    let q_ac_fail = set
        .scenarios
        .iter()
        .position(|s| s.failed_units == vec![1])
        .unwrap();
    // Not both flows can be critical in both single-failure scenarios.
    assert!(
        !(design.critical[0][q_ab_fail]
            && design.critical[1][q_ab_fail]
            && design.critical[0][q_ac_fail]
            && design.critical[1][q_ac_fail]),
        "criticality must differ per flow across failure states"
    );
}

#[test]
fn proposition2_cvar_family_conservative() {
    // "PercLoss found by Teavar, and all CVaR strategies is at least 48%
    // even though there exists an optimal strategy achieving zero."
    let (inst, set) = fig1();
    let st = flexile::te::cvar_flow::cvar_flow_st(
        &inst,
        &set,
        &flexile::te::cvar_flow::CvarOptions::new(0.99),
    );
    let ad = flexile::te::cvar_flow::cvar_flow_ad(
        &inst,
        &set,
        &flexile::te::cvar_flow::CvarOptions::new(0.99),
    );
    // Allow a few percent of slack around the analytical 48.51% bound for
    // LP tolerance.
    assert!(percloss(&st, &set, 0.99) >= 0.44, "St too good");
    assert!(percloss(&ad, &set, 0.99) >= 0.44, "Ad too good");
}

#[test]
fn appendix_fig16_no_bc_link_scenbest_succeeds() {
    // Without the B-C link, ScenBest meets both objectives (the anomaly:
    // ADDING a link degrades ScenBest's guarantee, Fig. 16).
    let topo = Topology::new("fig16", 3, &[(0, 1, 1.0), (0, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut class = ClassConfig::single();
    class.beta = 0.99;
    let inst = Instance {
        topo,
        pairs,
        classes: vec![class],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    let units = link_units(&inst.topo, &[0.01; 2]);
    let set = enumerate_scenarios(
        &units,
        2,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 4, coverage_target: 2.0 },
    );
    let r = flexile::te::mcf::scen_best(&inst, &set);
    let pl = percloss(&r, &set, 0.99);
    assert!(pl < 1e-6, "ScenBest on fig16 should be lossless at 99%: {pl}");

    // ... while Flexile is immune to the anomaly on BOTH topologies.
    let (inst1, set1) = fig1();
    let design = solve_flexile(&inst1, &set1, &FlexileOptions::default());
    let fx = flexile_losses(&inst1, &set1, &design);
    assert!(percloss(&fx, &set1, 0.99) < 1e-6);
}

#[test]
fn appendix_fig17_maxmin_unfair_across_scenarios() {
    // Directed-intuition version of Fig. 17: with the full triangle, SWAN
    // max-min (fair per scenario) still leaves some flow with 0.5 loss at
    // the 99th percentile, while Flexile protects both flows.
    let (inst, set) = fig1();
    let sm = flexile::te::swan::swan_maxmin(&inst, &set);
    let pl_sm = percloss(&sm, &set, 0.99);
    assert!(pl_sm >= 0.45, "max-min per scenario cannot meet the target: {pl_sm}");
}
