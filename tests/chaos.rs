//! Chaos suite: inject every solver fault kind at every solve-call index
//! of the online controller and check the degradation chain's contract —
//! the controller never panics, always returns losses in `[0, 1]`, and the
//! `SolveReport`s / `DegradationLevel` record exactly which fallback rung
//! produced the allocation. Runs on the paper's Fig. 1 triangle and a
//! Table-2 topology.

use flexile::core::online::carry_forward_losses;
use flexile::lp::fault::{self, FaultInjector};
use flexile::lp::{FaultKind, LpError, Rung};
use flexile::prelude::*;
use flexile::scenario::model::link_units;

fn fig1() -> (Instance, ScenarioSet, FlexileDesign) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![0.8, 0.8]],
    };
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 4, coverage_target: 2.0 },
    );
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    (inst, set, design)
}

fn sprint() -> (Instance, ScenarioSet, FlexileDesign) {
    let topo = topology_by_name("Sprint").expect("Sprint in Table 2");
    let probs = link_failure_probs(topo.num_links(), 0.8, 0.001, 99);
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-7, max_scenarios: 6, coverage_target: 1.1 },
    );
    let inst = Instance::single_class(topo, 99, 0.6, Some(8));
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    (inst, set, design)
}

fn columns(design: &FlexileDesign, q: usize) -> (Vec<bool>, Vec<f64>) {
    let nf = design.critical.len();
    let critical = (0..nf).map(|f| design.critical[f][q]).collect();
    let promised = (0..nf).map(|f| design.offline_loss[f][q]).collect();
    (critical, promised)
}

fn assert_valid_losses(inst: &Instance, losses: &[f64]) {
    assert_eq!(losses.len(), inst.num_flows());
    for (f, &l) in losses.iter().enumerate() {
        assert!(l.is_finite() && (0.0..=1.0).contains(&l), "flow {f} loss {l}");
    }
}

/// The full acceptance sweep for one scenario: count the zero-fault solve
/// attempts, then inject each fault kind at every attempt index in turn.
fn sweep_scenario(inst: &Instance, set: &ScenarioSet, design: &FlexileDesign, q: usize) {
    let scen = &set.scenarios[q];
    let (critical, promised) = columns(design, q);

    // Zero-fault runs are deterministic and bit-identical: the robust path
    // must reproduce the plain controller exactly, attempt for attempt.
    let base = online_allocate(inst, scen, &critical, &promised);
    assert_eq!(base, online_allocate(inst, scen, &critical, &promised));
    fault::reset_attempts();
    let nominal = online_allocate_robust(inst, scen, &critical, &promised, None);
    let n = fault::attempts();
    assert!(n >= 1, "scenario {q} performed no solve");
    assert_eq!(nominal.level, DegradationLevel::None, "scenario {q} not nominal");
    assert_eq!(nominal.losses, base, "robust path diverged from plain path");
    assert_valid_losses(inst, &nominal.losses);

    // Whether the scenario has a mandatory (water-filling) solve stage; the
    // final attempt is always the optional residual fill.
    let has_mandatory = n > 1;

    for kind in FaultKind::ALL {
        for idx in 0..n {
            let inj = FaultInjector::new().at(idx, kind);
            let (out, used) = fault::with_injector(inj, || {
                online_allocate_robust(inst, scen, &critical, &promised, Some(&base))
            });
            assert_eq!(
                used.injected().len(),
                1,
                "scenario {q}: fault {kind:?} at attempt {idx} never fired"
            );
            assert_valid_losses(inst, &out.losses);

            match kind {
                FaultKind::DeadlineExceeded => {
                    // Terminal: the ladder must not escalate past it.
                    assert!(!out.errors.is_empty());
                    let faulted = out
                        .reports
                        .iter()
                        .find(|r| {
                            r.attempts
                                .iter()
                                .any(|a| matches!(a.error, Some(LpError::DeadlineExceeded)))
                        })
                        .expect("deadline fault must appear in a report");
                    assert_eq!(faulted.attempts.len(), 1, "deadline escalated the ladder");
                    if idx == n - 1 {
                        // The residual fill is optional: skipped, not
                        // degraded. It only ever adds bandwidth, so the
                        // water-filling losses it leaves behind are at
                        // worst higher, never lower.
                        assert_eq!(out.level, DegradationLevel::SolverRecovered);
                        for f in 0..inst.num_flows() {
                            assert!(
                                out.losses[f] + 1e-9 >= base[f],
                                "flow {f}: skipping residual lowered loss"
                            );
                        }
                    } else {
                        // A mandatory stage died: frozen-share carry-forward.
                        assert_eq!(out.level, DegradationLevel::FrozenCarryForward);
                        assert_eq!(out.losses, carry_forward_losses(inst, scen, &base));
                    }
                }
                _ => {
                    // Retryable: one fault is absorbed by the next rung.
                    assert_eq!(
                        out.level,
                        DegradationLevel::SolverRecovered,
                        "scenario {q}: {kind:?} at {idx}"
                    );
                    assert!(out.errors.is_empty(), "recovered run must report no errors");
                    let recovered: Vec<_> =
                        out.reports.iter().filter(|r| r.recovered()).collect();
                    assert_eq!(recovered.len(), 1, "exactly one solve needed the ladder");
                    assert_eq!(recovered[0].succeeded_rung(), Some(Rung::ColdRefactor));
                }
            }
        }

        if has_mandatory {
            // Persistent fault, no carry state: last-resort proportional share.
            let (out, _) = fault::with_injector(FaultInjector::always(kind), || {
                online_allocate_robust(inst, scen, &critical, &promised, None)
            });
            assert_valid_losses(inst, &out.losses);
            assert_eq!(out.level, DegradationLevel::ProportionalShare, "{kind:?}");
            assert!(!out.errors.is_empty());
        }
    }
}

#[test]
fn fig1_every_fault_kind_at_every_attempt_index() {
    let (inst, set, design) = fig1();
    for q in 0..set.scenarios.len() {
        sweep_scenario(&inst, &set, &design, q);
    }
}

#[test]
fn sprint_every_fault_kind_at_every_attempt_index() {
    let (inst, set, design) = sprint();
    // All-alive plus the most likely failure scenario keep tier-1 fast.
    sweep_scenario(&inst, &set, &design, 0);
    sweep_scenario(&inst, &set, &design, 1);
}

#[test]
fn fig1_post_analysis_is_fault_free_and_identical() {
    let (inst, set, design) = fig1();
    let plain = flexile_losses(&inst, &set, &design);
    let (robust, report) = flexile_losses_with_report(&inst, &set, &design);
    assert_eq!(report.worst(), DegradationLevel::None);
    assert!(report.errors.is_empty());
    assert_eq!(plain.loss, robust.loss, "reporting path changed allocations");
}

#[test]
fn fig1_chaos_trace_with_random_faults_never_violates_bounds() {
    let (inst, set, design) = fig1();
    let trace = ChaosTrace::new()
        .fail(0, 0)
        .fail(1, 1)
        .recover(2, 0)
        .recover(3, 1)
        .fail(4, 2)
        .recover(5, 2);
    let report = run_chaos(&inst, &set, &design, &trace, |t| {
        Some(FaultInjector::random(0xC0FFEE ^ t, 0.3, FaultKind::Numerical))
    });
    assert_eq!(report.steps.len(), 6);
    report.check_invariants(&inst).unwrap();
}
