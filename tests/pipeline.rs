//! End-to-end pipeline tests on a real (Table-2) topology through the
//! public facade: every scheme runs, and the qualitative orderings the
//! paper reports hold.

use flexile::prelude::*;
use flexile::scenario::model::link_units;

fn sprint_setup(pairs_cap: usize, scen_cap: usize) -> (Instance, ScenarioSet) {
    let topo = topology_by_name("Sprint").expect("Sprint in Table 2");
    let probs = link_failure_probs(topo.num_links(), 0.8, 0.001, 99);
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &topo_units(&units),
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-7, max_scenarios: scen_cap, coverage_target: 1.1 },
    );
    let inst = Instance::single_class(topo, 99, 0.6, Some(pairs_cap));
    (inst, set)
}

// Identity helper keeps the unit list's type independent of the facade path.
fn topo_units(u: &[FailureUnit]) -> Vec<FailureUnit> {
    u.to_vec()
}

fn percloss(r: &SchemeResult, set: &ScenarioSet, flows: &[usize], beta: f64) -> f64 {
    let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
    perc_loss(&m, flows, beta)
}

#[test]
fn single_class_scheme_ordering_on_sprint() {
    let (mut inst, set) = sprint_setup(15, 15);
    let beta = set.max_feasible_beta(&inst.tunnels[0]);
    inst.classes[0].beta = beta;
    let flows: Vec<usize> = (0..inst.num_flows()).collect();

    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let fx = flexile_losses(&inst, &set, &design);
    let sb = flexile::te::mcf::scen_best(&inst, &set);
    let tv = flexile::te::teavar::teavar(&inst, &set, beta);

    let pl_fx = percloss(&fx, &set, &flows, beta);
    let pl_sb = percloss(&sb, &set, &flows, beta);
    let pl_tv = percloss(&tv, &set, &flows, beta);

    // Proposition 1 end to end: Flexile is never worse than ScenBest, and
    // ScenBest is never worse than Teavar's conservative design.
    assert!(pl_fx <= pl_sb + 1e-6, "Flexile {pl_fx} vs ScenBest {pl_sb}");
    assert!(pl_sb <= pl_tv + 1e-6, "ScenBest {pl_sb} vs Teavar {pl_tv}");
}

#[test]
fn offline_alpha_matches_online_losses() {
    // The offline promise (per-class alpha) is honored by the online
    // allocation: critical flows never lose more than alpha in their
    // critical scenarios.
    let (mut inst, set) = sprint_setup(12, 12);
    let beta = set.max_feasible_beta(&inst.tunnels[0]);
    inst.classes[0].beta = beta;
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let fx = flexile_losses(&inst, &set, &design);
    for f in 0..inst.num_flows() {
        for q in 0..set.scenarios.len() {
            if design.critical[f][q] {
                assert!(
                    fx.loss[f][q] <= design.alpha[0] + 1e-4,
                    "flow {f} scen {q}: online loss {} exceeds promised {}",
                    fx.loss[f][q],
                    design.alpha[0]
                );
            }
        }
    }
}

#[test]
fn percentile_guarantee_holds_end_to_end() {
    // The β-percentile of every flow's ONLINE loss is within the design
    // PercLoss (the metric the whole paper optimizes).
    let (mut inst, set) = sprint_setup(12, 12);
    let beta = set.max_feasible_beta(&inst.tunnels[0]);
    inst.classes[0].beta = beta;
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let fx = flexile_losses(&inst, &set, &design);
    let m = LossMatrix::new(fx.loss.clone(), set.probs(), set.residual);
    for f in 0..inst.num_flows() {
        let fl = flow_loss(&m, f, beta);
        assert!(
            fl <= design.alpha[0] + 1e-4,
            "flow {f}: percentile loss {fl} exceeds design alpha {}",
            design.alpha[0]
        );
    }
}

#[test]
fn two_class_high_priority_protected() {
    let topo = topology_by_name("Sprint").unwrap();
    let probs = link_failure_probs(topo.num_links(), 0.8, 0.001, 5);
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-7, max_scenarios: 12, coverage_target: 1.1 },
    );
    let inst = Instance::two_class(topo, 5, 0.6, Some(12));
    let betas = effective_betas(&inst, &set);
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let fx = flexile_losses(&inst, &set, &design);
    let m = LossMatrix::new(fx.loss.clone(), set.probs(), set.residual);
    let hi = perc_loss(&m, &inst.class_flows(0), betas[0]);
    let lo = perc_loss(&m, &inst.class_flows(1), betas[1]);
    // High-priority traffic sees (near) zero percentile loss, and never
    // does worse than the heavier low-priority class.
    assert!(hi <= lo + 1e-6, "high {hi} vs low {lo}");
    assert!(hi < 0.2, "high-priority PercLoss too large: {hi}");
}

#[test]
fn emulation_of_flexile_matches_model() {
    let (mut inst, set) = sprint_setup(10, 8);
    let beta = set.max_feasible_beta(&inst.tunnels[0]);
    inst.classes[0].beta = beta;
    let design = solve_flexile(&inst, &set, &FlexileOptions::default());
    let fx = flexile_losses(&inst, &set, &design);
    let emu = &emulate_scheme(&inst, &set, &fx, &EmuConfig::default(), 1)[0];
    for f in 0..inst.num_flows() {
        for q in 0..set.scenarios.len() {
            assert!(
                (emu.loss[f][q] - fx.loss[f][q]).abs() < 0.03,
                "flow {f} scen {q}: emu {} vs model {}",
                emu.loss[f][q],
                fx.loss[f][q]
            );
        }
    }
}
