//! Property-based tests on cross-crate invariants.

use flexile::lp::{Model, Sense};
use flexile::metrics::{flow_loss, Cdf, LossMatrix};
use flexile::prelude::*;
use flexile::scenario::model::link_units;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simplex always returns a feasible point, and for maximization
    /// with nonnegative data it dominates a trivially feasible point.
    #[test]
    fn simplex_feasible_and_dominant(
        costs in prop::collection::vec(0.1f64..10.0, 3..6),
        caps in prop::collection::vec(1.0f64..20.0, 2..4),
    ) {
        let mut m = Model::new(Sense::Max);
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_var(&format!("x{i}"), 0.0, 5.0, c))
            .collect();
        for (r, &cap) in caps.iter().enumerate() {
            // Each row covers a sliding window of variables.
            let coeffs: Vec<_> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| (i + r) % 2 == 0)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            if !coeffs.is_empty() {
                m.add_row_le(&coeffs, cap);
            }
        }
        let sol = m.solve().unwrap();
        prop_assert!(m.max_violation(&sol.x) < 1e-6);
        // The origin is feasible with objective 0.
        prop_assert!(sol.objective >= -1e-9);
    }

    /// FlowLoss is monotone non-decreasing in β.
    #[test]
    fn flow_loss_monotone_in_beta(
        losses in prop::collection::vec(0.0f64..=1.0, 4..10),
        beta1 in 0.05f64..0.5,
        beta2 in 0.5f64..0.95,
    ) {
        let n = losses.len();
        let prob = vec![1.0 / n as f64; n];
        let m = LossMatrix::new(vec![losses], prob, 0.0);
        prop_assert!(flow_loss(&m, 0, beta1) <= flow_loss(&m, 0, beta2) + 1e-12);
    }

    /// CDF quantile and at() are consistent: at(quantile(q)) >= q.
    #[test]
    fn cdf_quantile_at_consistency(
        samples in prop::collection::vec(0.0f64..100.0, 1..30),
        q in 0.01f64..0.99,
    ) {
        let cdf = Cdf::from_samples(&samples);
        let v = cdf.quantile(q);
        prop_assert!(cdf.at(v) + 1e-9 >= q);
    }

    /// Scenario enumeration emits non-increasing probabilities that match
    /// the independent-failure product, and covers + residual == 1.
    #[test]
    fn enumeration_probabilities_consistent(
        probs in prop::collection::vec(0.001f64..0.3, 3..6),
    ) {
        let n = probs.len();
        let links: Vec<(u32, u32, f64)> =
            (0..n).map(|i| (i as u32, ((i + 1) % n) as u32, 1.0)).collect();
        let topo = Topology::new("ring", n, &links);
        let units = link_units(&topo, &probs);
        let set = enumerate_scenarios(
            &units,
            n,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 1 << n, coverage_target: 2.0 },
        );
        prop_assert_eq!(set.scenarios.len(), 1 << n);
        let total: f64 = set.scenarios.iter().map(|s| s.prob).sum();
        prop_assert!((total + set.residual - 1.0).abs() < 1e-9);
        for w in set.scenarios.windows(2) {
            prop_assert!(w[0].prob >= w[1].prob - 1e-15);
        }
    }

    /// Tunnel-split quantization: weights sum to the level count and no
    /// bucket is off by more than one unit from the exact proportion.
    #[test]
    fn quantization_error_bounded(
        xs in prop::collection::vec(0.0f64..10.0, 1..6),
    ) {
        let total: f64 = xs.iter().sum();
        prop_assume!(total > 1e-9);
        let levels = 100u32;
        let w = flexile::emu::plan::quantize_weights(&xs, total, levels);
        prop_assert_eq!(w.iter().sum::<u32>(), levels);
        for (i, &wi) in w.iter().enumerate() {
            let exact = xs[i] / total * levels as f64;
            prop_assert!((wi as f64 - exact).abs() <= 1.0 + 1e-9);
        }
    }

    /// Benders cuts from the subproblem under-estimate its value at every
    /// other criticality column (validity), and are tight at their own.
    #[test]
    fn subproblem_cut_validity(z1 in any::<bool>(), z2 in any::<bool>()) {
        use flexile::core::subproblem::SubproblemTemplate;
        let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
        let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
        let mut class = ClassConfig::single();
        class.beta = 0.99;
        let inst = Instance {
            topo, pairs, classes: vec![class],
            tunnels: vec![tunnels], demands: vec![vec![1.0, 1.0]],
        };
        let units = link_units(&inst.topo, &[0.01; 3]);
        let set = enumerate_scenarios(
            &units, 3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        );
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, None);
        let base = t.solve(&inst, scen, &[true, true]).unwrap();
        let cap_arc: Vec<f64> = (0..inst.num_arcs())
            .map(|a| inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)])
            .collect();
        // Tightness at the generation point.
        let g_here = base.cut.eval(&[1.0, 1.0], &cap_arc);
        prop_assert!((g_here - base.value).abs() < 1e-6);
        // Validity at an arbitrary other point.
        let mut t2 = SubproblemTemplate::new(&inst, None);
        let other = t2.solve(&inst, scen, &[z1, z2]).unwrap();
        let zf = [if z1 { 1.0 } else { 0.0 }, if z2 { 1.0 } else { 0.0 }];
        let g_other = base.cut.eval(&zf, &cap_arc);
        prop_assert!(g_other <= other.value + 1e-6,
            "cut {g_other} exceeds value {}", other.value);
    }
}
