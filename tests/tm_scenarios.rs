//! §4.4 "More general scenarios": designing for a set of traffic matrices
//! with associated probabilities (demand levels crossed with failures).

use flexile::prelude::*;
use flexile::scenario::model::link_units;
use flexile::scenario::with_demand_levels;

fn fig1(beta: f64) -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut class = ClassConfig::single();
    class.beta = beta;
    let inst = Instance {
        topo,
        pairs,
        classes: vec![class],
        tunnels: vec![tunnels],
        // Base demands below capacity so only the surge level contends.
        demands: vec![vec![0.8, 0.8]],
    };
    let units = link_units(&inst.topo, &[0.01; 3]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

#[test]
fn surge_scenarios_increase_subproblem_loss() {
    use flexile::core::subproblem::SubproblemTemplate;
    let (inst, set) = fig1(0.99);
    let tm = with_demand_levels(&set, &[(1.0, 0.7), (2.0, 0.3)]);
    // Find the all-alive scenario at each level.
    let normal = tm
        .scenarios
        .iter()
        .find(|s| s.failed_units.is_empty() && s.demand_factor == 1.0)
        .unwrap();
    let surge = tm
        .scenarios
        .iter()
        .find(|s| s.failed_units.is_empty() && s.demand_factor == 2.0)
        .unwrap();
    let z = vec![true, true];
    let mut t1 = SubproblemTemplate::for_demand_factor(&inst, None, 1.0);
    let v_normal = t1.solve(&inst, normal, &z).unwrap().value;
    let mut t2 = SubproblemTemplate::for_demand_factor(&inst, None, 2.0);
    let v_surge = t2.solve(&inst, surge, &z).unwrap().value;
    // Normal load fits (0.8 per direct link); the 2× surge (1.6 per flow)
    // cannot: each flow has total path capacity 2 but they share links, so
    // some loss is unavoidable.
    assert!(v_normal < 1e-7, "normal-level value {v_normal}");
    assert!(v_surge > 0.05, "surge-level value {v_surge}");
}

#[test]
fn template_factor_mismatch_is_rejected() {
    use flexile::core::subproblem::SubproblemTemplate;
    let (inst, set) = fig1(0.99);
    let tm = with_demand_levels(&set, &[(1.0, 0.5), (1.5, 0.5)]);
    let surge = tm.scenarios.iter().find(|s| s.demand_factor == 1.5).unwrap();
    let mut t = SubproblemTemplate::new(&inst, None); // factor 1.0
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = t.solve(&inst, surge, &[true, true]);
    }));
    assert!(res.is_err(), "factor mismatch must be rejected");
}

#[test]
fn flexile_designs_across_demand_levels() {
    // β = 0.95 with a 20%-probable 2× surge: the design may treat surge
    // states as non-critical for one of the flows and still cover β.
    let (inst, set) = fig1(0.95);
    let tm = with_demand_levels(&set, &[(1.0, 0.8), (2.0, 0.2)]);
    let design = solve_flexile(&inst, &tm, &FlexileOptions::default());
    // Coverage must hold per flow.
    for f in 0..inst.num_flows() {
        let mass: f64 = tm
            .scenarios
            .iter()
            .enumerate()
            .filter(|(q, _)| design.critical[f][*q])
            .map(|(_, s)| s.prob)
            .sum();
        assert!(mass + 1e-9 >= 0.95, "flow {f} covers {mass}");
    }
    // The normal level alone carries 0.97 × 0.8 ≈ 0.78 < β, so surge
    // scenarios must participate and the penalty reflects surge contention
    // but stays below the naive 2×-everywhere loss.
    assert!(design.penalty <= 0.65, "penalty {}", design.penalty);

    // Online allocation honors the surge demands end to end.
    let r = flexile_losses(&inst, &tm, &design);
    let m = LossMatrix::new(r.loss.clone(), tm.probs(), tm.residual);
    let pl = perc_loss(&m, &[0, 1], 0.95);
    assert!(pl <= design.penalty + 0.05, "online PercLoss {pl} vs offline {}", design.penalty);
}
