//! Property-based tests for path and tunnel machinery on randomized
//! cycle-plus-chords topologies (the same family the zoo generator uses).

use flexile_topo::graph::Topology;
use flexile_topo::paths::{k_shortest_paths, shortest_path};
use flexile_topo::tunnels::select_tunnels;
use flexile_topo::{zoo, NodeId, TunnelClass};
use proptest::prelude::*;

fn random_topo(nodes: usize, extra: usize, seed: u64) -> Topology {
    // Clamp the chord count to the simple-graph limit.
    let max_extra = nodes * (nodes - 1) / 2 - nodes;
    zoo::generate("prop", nodes, nodes + extra.min(max_extra), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dijkstra's result is a valid, minimal-hop walk.
    #[test]
    fn dijkstra_is_shortest(
        nodes in 4usize..12,
        extra in 0usize..6,
        seed in 0u64..500,
    ) {
        let t = random_topo(nodes, extra, seed);
        let (s, d) = (NodeId(0), NodeId((nodes / 2) as u32));
        let p = shortest_path(&t, s, d, &vec![false; t.num_links()], &vec![false; t.num_nodes()])
            .expect("cycle topologies are connected");
        // Valid walk endpoints.
        prop_assert_eq!(p.nodes[0], s);
        prop_assert_eq!(*p.nodes.last().unwrap(), d);
        // BFS distance equals hop count (weights are ~1 per hop).
        let mut dist = vec![usize::MAX; t.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[s.index()] = 0;
        queue.push_back(s);
        while let Some(n) = queue.pop_front() {
            for &(nb, _) in t.neighbors(n) {
                if dist[nb.index()] == usize::MAX {
                    dist[nb.index()] = dist[n.index()] + 1;
                    queue.push_back(nb);
                }
            }
        }
        prop_assert_eq!(p.len(), dist[d.index()]);
    }

    /// Yen's paths are distinct, loopless, and sorted by length.
    #[test]
    fn yen_paths_distinct_loopless_sorted(
        nodes in 4usize..10,
        extra in 1usize..6,
        seed in 0u64..500,
    ) {
        let t = random_topo(nodes, extra, seed);
        let ps = k_shortest_paths(&t, NodeId(0), NodeId((nodes - 1) as u32), 6);
        prop_assert!(!ps.is_empty());
        for w in ps.windows(2) {
            prop_assert!(w[0].len() <= w[1].len());
            prop_assert!(w[0] != w[1], "duplicate path");
        }
        for p in &ps {
            let mut seen = std::collections::HashSet::new();
            prop_assert!(p.nodes.iter().all(|n| seen.insert(*n)), "loop in path");
        }
    }

    /// Every tunnel-selection policy returns valid walks between the
    /// requested endpoints, and the low-priority set extends high-priority.
    #[test]
    fn tunnel_policies_return_valid_walks(
        nodes in 4usize..10,
        extra in 1usize..6,
        seed in 0u64..300,
    ) {
        let t = random_topo(nodes, extra, seed);
        let (s, d) = (NodeId(1), NodeId((nodes - 1) as u32));
        for class in [TunnelClass::SingleClass, TunnelClass::HighPriority, TunnelClass::LowPriority] {
            let ts = select_tunnels(&t, s, d, class);
            prop_assert!(!ts.is_empty());
            for p in &ts {
                prop_assert_eq!(p.nodes[0], s);
                prop_assert_eq!(*p.nodes.last().unwrap(), d);
                for (i, &l) in p.links.iter().enumerate() {
                    let link = t.link(l);
                    let (a, b) = (p.nodes[i], p.nodes[i + 1]);
                    prop_assert!(
                        (link.a == a && link.b == b) || (link.a == b && link.b == a)
                    );
                }
            }
        }
        let hi = select_tunnels(&t, s, d, TunnelClass::HighPriority);
        let lo = select_tunnels(&t, s, d, TunnelClass::LowPriority);
        for h in &hi {
            prop_assert!(lo.contains(h));
        }
    }

    /// The generated family survives any single failure (zoo invariant).
    #[test]
    fn generated_topologies_survive_single_failures(
        nodes in 4usize..12,
        extra in 0usize..5,
        seed in 0u64..200,
    ) {
        let t = random_topo(nodes, extra, seed);
        prop_assert!(t.survives_any_single_failure());
    }
}
