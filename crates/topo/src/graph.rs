//! Undirected capacitated multigraph with failure-aware connectivity.

use std::collections::VecDeque;

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Positional index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an (undirected) link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Positional index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A full-duplex link: `capacity` units are available independently in each
/// direction; the link fails as a unit (both directions).
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Per-direction capacity.
    pub capacity: f64,
}

impl Link {
    /// The endpoint opposite `n` (panics if `n` is not an endpoint).
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b);
            self.a
        }
    }
}

/// A simple path: the visited node sequence plus the traversed links.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence, `nodes.len() == links.len() + 1`.
    pub nodes: Vec<NodeId>,
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Hop count.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for a degenerate (empty) path.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether the path survives when `failed[l]` marks dead links.
    pub fn alive(&self, failed: &[bool]) -> bool {
        self.links.iter().all(|l| !failed[l.index()])
    }

    /// Number of links shared with another path.
    pub fn shared_links(&self, other: &Path) -> usize {
        self.links
            .iter()
            .filter(|l| other.links.contains(l))
            .count()
    }
}

/// An undirected capacitated network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable name (e.g. `"IBM"`).
    pub name: String,
    num_nodes: usize,
    links: Vec<Link>,
    /// `adj[n]` lists `(neighbor, link)` pairs.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Build a topology from `(a, b, capacity)` link triples.
    pub fn new(name: &str, num_nodes: usize, link_list: &[(u32, u32, f64)]) -> Self {
        let mut links = Vec::with_capacity(link_list.len());
        let mut adj = vec![Vec::new(); num_nodes];
        for &(a, b, cap) in link_list {
            assert!((a as usize) < num_nodes && (b as usize) < num_nodes, "link endpoint out of range");
            assert_ne!(a, b, "self-loop links are not allowed");
            let id = LinkId(links.len() as u32);
            links.push(Link { a: NodeId(a), b: NodeId(b), capacity: cap });
            adj[a as usize].push((NodeId(b), id));
            adj[b as usize].push((NodeId(a), id));
        }
        Topology { name: name.to_string(), num_nodes, links, adj }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u32).map(NodeId)
    }

    /// All links with ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Borrow a link.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Mutable link access (used by capacity augmentation).
    pub fn link_mut(&mut self, l: LinkId) -> &mut Link {
        &mut self.links[l.index()]
    }

    /// Neighbors of `n` as `(neighbor, link)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.index()]
    }

    /// All ordered node pairs `(s, d)`, `s != d` — the *pairs* `P` of the
    /// paper (one flow per pair per traffic class).
    pub fn ordered_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.num_nodes * (self.num_nodes - 1));
        for s in self.nodes() {
            for d in self.nodes() {
                if s != d {
                    out.push((s, d));
                }
            }
        }
        out
    }

    /// BFS reachability from `src` with `failed[l]` marking dead links.
    pub fn reachable_under_failures(&self, src: NodeId, failed: &[bool]) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes];
        let mut q = VecDeque::new();
        seen[src.index()] = true;
        q.push_back(src);
        while let Some(n) = q.pop_front() {
            for &(nb, l) in self.neighbors(n) {
                if !failed[l.index()] && !seen[nb.index()] {
                    seen[nb.index()] = true;
                    q.push_back(nb);
                }
            }
        }
        seen
    }

    /// Whether the whole graph is connected given failed links.
    pub fn connected_under_failures(&self, failed: &[bool]) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        self.reachable_under_failures(NodeId(0), failed)
            .iter()
            .all(|&s| s)
    }

    /// Whether the intact graph is connected.
    pub fn is_connected(&self) -> bool {
        self.connected_under_failures(&vec![false; self.num_links()])
    }

    /// Whether any single link failure disconnects the graph.
    pub fn survives_any_single_failure(&self) -> bool {
        let mut failed = vec![false; self.num_links()];
        for l in 0..self.num_links() {
            failed[l] = true;
            if !self.connected_under_failures(&failed) {
                return false;
            }
            failed[l] = false;
        }
        true
    }

    /// Recursively remove degree-1 nodes (the paper's preprocessing), and
    /// return the pruned topology with nodes re-indexed. Node identity is
    /// not preserved; the zoo generator never actually produces degree-1
    /// nodes, so this is exercised only by imported/custom topologies.
    pub fn prune_degree_one(&self) -> Topology {
        let mut alive_node = vec![true; self.num_nodes];
        let mut alive_link = vec![true; self.num_links()];
        loop {
            let mut changed = false;
            for n in 0..self.num_nodes {
                if !alive_node[n] {
                    continue;
                }
                let deg = self.adj[n]
                    .iter()
                    .filter(|(nb, l)| alive_node[nb.index()] && alive_link[l.index()])
                    .count();
                if deg <= 1 {
                    alive_node[n] = false;
                    for &(_, l) in &self.adj[n] {
                        alive_link[l.index()] = false;
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut remap = vec![u32::MAX; self.num_nodes];
        let mut next = 0u32;
        for n in 0..self.num_nodes {
            if alive_node[n] {
                remap[n] = next;
                next += 1;
            }
        }
        let links: Vec<(u32, u32, f64)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(i, _)| alive_link[*i])
            .map(|(_, l)| (remap[l.a.index()], remap[l.b.index()], l.capacity))
            .collect();
        Topology::new(&self.name, next as usize, &links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        // The Fig. 1 topology: A(0), B(1), C(2), unit capacities.
        Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn basic_accessors() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.link(LinkId(0)).other(NodeId(0)), NodeId(1));
        assert_eq!(t.ordered_pairs().len(), 6);
    }

    #[test]
    fn connectivity_under_failures() {
        let t = triangle();
        assert!(t.is_connected());
        assert!(t.survives_any_single_failure());
        // Fail A-B and A-C: A is isolated.
        let failed = vec![true, true, false];
        let r = t.reachable_under_failures(NodeId(0), &failed);
        assert_eq!(r, vec![true, false, false]);
        assert!(!t.connected_under_failures(&failed));
    }

    #[test]
    fn line_does_not_survive_single_failure() {
        let t = Topology::new("line", 3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(t.is_connected());
        assert!(!t.survives_any_single_failure());
    }

    #[test]
    fn prune_degree_one_removes_stub() {
        // Triangle with a pendant node 3 hanging off node 0.
        let t = Topology::new(
            "stub",
            4,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (0, 3, 1.0)],
        );
        let p = t.prune_degree_one();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_links(), 3);
        assert!(p.survives_any_single_failure());
    }

    #[test]
    fn prune_handles_chains() {
        // A chain hanging off a triangle collapses entirely.
        let t = Topology::new(
            "chain",
            5,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (0, 3, 1.0), (3, 4, 1.0)],
        );
        let p = t.prune_degree_one();
        assert_eq!(p.num_nodes(), 3);
    }

    #[test]
    fn path_helpers() {
        let t = triangle();
        let p = Path { nodes: vec![NodeId(0), NodeId(2), NodeId(1)], links: vec![LinkId(1), LinkId(2)] };
        assert_eq!(p.len(), 2);
        assert!(p.alive(&[true, false, false]));
        assert!(!p.alive(&[false, true, false]));
        let q = Path { nodes: vec![NodeId(0), NodeId(2)], links: vec![LinkId(1)] };
        assert_eq!(p.shared_links(&q), 1);
        let _ = t;
    }
}
