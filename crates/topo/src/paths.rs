//! Deterministic shortest paths (Dijkstra) and Yen's k-shortest paths.
//!
//! Link weights are hop counts perturbed by a tiny deterministic per-link
//! epsilon so that shortest paths are unique and runs are reproducible.

use crate::graph::{LinkId, NodeId, Path, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Deterministic per-link weight: 1 hop + tiny id-dependent epsilon that
/// breaks ties without affecting hop-count ordering.
#[inline]
fn link_weight(l: LinkId) -> f64 {
    1.0 + 1e-7 * ((l.0 as f64 * 0.754_877_666).fract())
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, tie-break on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

/// Dijkstra shortest path from `src` to `dst`, ignoring `banned_links` and
/// `banned_nodes`. Returns `None` when unreachable.
pub fn shortest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_links: &[bool],
    banned_nodes: &[bool],
) -> Option<Path> {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    if banned_nodes[src.index()] || banned_nodes[dst.index()] {
        return None;
    }
    dist[src.index()] = 0.0;
    heap.push(HeapItem { dist: 0.0, node: src });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if d > dist[node.index()] {
            continue;
        }
        if node == dst {
            break;
        }
        for &(nb, l) in topo.neighbors(node) {
            if banned_links[l.index()] || banned_nodes[nb.index()] {
                continue;
            }
            let nd = d + link_weight(l);
            if nd < dist[nb.index()] {
                dist[nb.index()] = nd;
                prev[nb.index()] = Some((node, l));
                heap.push(HeapItem { dist: nd, node: nb });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.index()].expect("reconstruction broke");
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links })
}

fn path_cost(p: &Path) -> f64 {
    p.links.iter().map(|&l| link_weight(l)).sum()
}

/// Yen's algorithm: up to `k` loopless shortest paths from `src` to `dst`,
/// in non-decreasing cost order.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let no_links = vec![false; topo.num_links()];
    let no_nodes = vec![false; topo.num_nodes()];
    let first = match shortest_path(topo, src, dst, &no_links, &no_nodes) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut result = vec![first];
    // Candidate pool: (cost, path). Kept sorted by extraction.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result nonempty").clone();
        // Spur from each node of the last accepted path.
        for i in 0..last.links.len() {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_links = &last.links[..i];

            let mut banned_links = no_links.clone();
            let mut banned_nodes = no_nodes.clone();
            // Ban links that would recreate a previously found path sharing
            // this root.
            for p in result.iter().map(|p| (p, 0)).chain(candidates.iter().map(|(_, p)| (p, 0))) {
                let (p, _) = p;
                if p.links.len() > i && p.nodes[..=i] == *root_nodes {
                    banned_links[p.links[i].index()] = true;
                }
            }
            // Ban root nodes except the spur node (looplessness).
            for rn in &root_nodes[..i] {
                banned_nodes[rn.index()] = true;
            }

            if let Some(spur) = shortest_path(topo, spur_node, dst, &banned_links, &banned_nodes) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur.links);
                let total = Path { nodes, links };
                if !result.contains(&total) && !candidates.iter().any(|(_, c)| *c == total) {
                    candidates.push((path_cost(&total), total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract cheapest candidate (stable against ties by construction of
        // the perturbed weights).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap_or(Ordering::Equal))
            .map(|(i, _)| i)
            .expect("candidates nonempty");
        let (_, path) = candidates.swap_remove(best);
        result.push(path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    fn diamond() -> Topology {
        // 0 - 1 - 3 and 0 - 2 - 3, plus direct 0 - 3.
        Topology::new(
            "diamond",
            4,
            &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)],
        )
    }

    #[test]
    fn dijkstra_picks_direct_link() {
        let t = diamond();
        let p = shortest_path(
            &t,
            NodeId(0),
            NodeId(3),
            &vec![false; t.num_links()],
            &vec![false; t.num_nodes()],
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.links, vec![LinkId(4)]);
    }

    #[test]
    fn dijkstra_respects_bans() {
        let t = diamond();
        let mut banned = vec![false; t.num_links()];
        banned[4] = true; // ban 0-3 direct
        let p = shortest_path(&t, NodeId(0), NodeId(3), &banned, &[false; 4]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn dijkstra_unreachable() {
        let t = Topology::new("split", 4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(shortest_path(
            &t,
            NodeId(0),
            NodeId(3),
            &[false; 2],
            &[false; 4]
        )
        .is_none());
    }

    #[test]
    fn yen_finds_three_distinct_paths() {
        let t = diamond();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(3), 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].len(), 1);
        assert_eq!(ps[1].len(), 2);
        assert_eq!(ps[2].len(), 2);
        assert_ne!(ps[1], ps[2]);
        // Non-decreasing lengths.
        assert!(ps.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn yen_exhausts_gracefully() {
        let t = diamond();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(3), 50);
        // Loopless paths 0->3 in the diamond: direct, two 2-hop, and two
        // 3-hop (0-1-3 ... no 3-hops exist without revisiting). Exact count:
        assert!(ps.len() >= 3);
        // All paths are loopless.
        for p in &ps {
            let mut seen = std::collections::HashSet::new();
            assert!(p.nodes.iter().all(|n| seen.insert(*n)));
        }
    }

    #[test]
    fn yen_paths_are_valid_walks() {
        let t = diamond();
        for p in k_shortest_paths(&t, NodeId(0), NodeId(3), 10) {
            assert_eq!(p.nodes.len(), p.links.len() + 1);
            for (i, &l) in p.links.iter().enumerate() {
                let link = t.link(l);
                let (a, b) = (p.nodes[i], p.nodes[i + 1]);
                assert!(
                    (link.a == a && link.b == b) || (link.a == b && link.b == a),
                    "link {l:?} does not join {a:?}-{b:?}"
                );
            }
        }
    }
}
