//! # flexile-topo — WAN topologies, paths and tunnels
//!
//! The topology substrate for the Flexile reproduction:
//!
//! * [`graph`] — an undirected multigraph of *links* (full-duplex: each link
//!   carries `capacity` units independently in each direction, and fails as a
//!   unit), with BFS connectivity and recursive degree-1 pruning exactly as
//!   the paper's preprocessing requires.
//! * [`zoo`] — the 20 evaluation topologies of Table 2. The Topology Zoo
//!   `.gml` sources are not redistributable/offline, so each network is
//!   regenerated deterministically with the *exact* node and edge counts of
//!   Table 2 as a Hamiltonian cycle plus seeded random chords. A cycle is
//!   2-edge-connected, so every generated network survives any single link
//!   failure — the invariant the paper establishes by pruning one-degree
//!   nodes.
//! * [`paths`] — deterministic Dijkstra and Yen's k-shortest paths.
//! * [`tunnels`] — the paper's three tunnel-selection policies (§6):
//!   single-class (3 max-disjoint short paths), high-priority (3 shortest
//!   collectively single-failure-survivable) and low-priority (the high-
//!   priority set plus 3 disjointness-preferring extras).

#![warn(missing_docs)]

pub mod graph;
pub mod io;
pub mod paths;
pub mod tunnels;
pub mod zoo;

pub use graph::{LinkId, NodeId, Path, Topology};
pub use io::{format_topology, parse_topology};
pub use tunnels::{Tunnel, TunnelClass, TunnelSet};
pub use zoo::{all_topologies, topology_by_name, ZooEntry, TABLE2};
