//! Tunnel selection policies (§6 of the paper).
//!
//! Traffic for a source-destination pair is carried over a small set of
//! pre-installed tunnels; on failure only the split ratios change (SMORE's
//! "semi-oblivious" model, also used by Flexile's online phase). The paper
//! balances latency (prefer short paths) and disjointness (avoid shared
//! links) and uses:
//!
//! * **single class** — three physical tunnels as disjoint as possible,
//!   preferring shorter ones;
//! * **high priority** — three shortest paths such that no single link
//!   failure kills all of them (best effort when topology prevents it);
//! * **low priority** — the high-priority tunnels plus three more from a
//!   larger shortest-path pool, prioritizing disjointness.

use crate::graph::{NodeId, Path, Topology};
use crate::paths::k_shortest_paths;

/// A tunnel is a loopless path; tunnels are identified positionally within
/// their [`TunnelSet`].
pub type Tunnel = Path;

/// Which tunnel-selection policy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelClass {
    /// Three max-disjoint short tunnels (single-class experiments).
    SingleClass,
    /// Three shortest tunnels, collectively resilient to any single failure.
    HighPriority,
    /// High-priority tunnels plus three disjointness-preferring extras.
    LowPriority,
}

/// Tunnels for every ordered pair of a topology.
#[derive(Debug, Clone)]
pub struct TunnelSet {
    /// Ordered pairs, aligned with `tunnels`.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// `tunnels[p]` holds the tunnels of pair `p`.
    pub tunnels: Vec<Vec<Tunnel>>,
}

impl TunnelSet {
    /// Build tunnels for the given pairs under a policy.
    pub fn build(topo: &Topology, pairs: &[(NodeId, NodeId)], class: TunnelClass) -> Self {
        let tunnels = pairs
            .iter()
            .map(|&(s, d)| select_tunnels(topo, s, d, class))
            .collect();
        TunnelSet { pairs: pairs.to_vec(), tunnels }
    }

    /// Total number of tunnels across pairs.
    pub fn total_tunnels(&self) -> usize {
        self.tunnels.iter().map(|t| t.len()).sum()
    }

    /// Whether pair `p` has at least one tunnel alive under `failed` links.
    pub fn pair_alive(&self, p: usize, failed: &[bool]) -> bool {
        self.tunnels[p].iter().any(|t| t.alive(failed))
    }
}

/// Greedy disjointness-aware selection from a candidate pool: repeatedly
/// pick the candidate minimizing `(shared links with chosen, length)`.
fn greedy_disjoint(candidates: &[Path], chosen: &mut Vec<Path>, want: usize) {
    while chosen.len() < want {
        let mut best: Option<(usize, usize, usize)> = None; // (shared, len, idx)
        for (i, c) in candidates.iter().enumerate() {
            if chosen.contains(c) {
                continue;
            }
            let shared: usize = chosen.iter().map(|p| p.shared_links(c)).sum();
            let key = (shared, c.len(), i);
            if best.is_none_or(|b| (key.0, key.1, key.2) < b) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, i)) => chosen.push(candidates[i].clone()),
            None => break,
        }
    }
}

/// Does any single link failure kill every path in `set`?
fn single_failure_vulnerable(topo: &Topology, set: &[Path]) -> Option<usize> {
    if set.is_empty() {
        return None;
    }
    let mut failed = vec![false; topo.num_links()];
    for l in 0..topo.num_links() {
        failed[l] = true;
        if set.iter().all(|p| !p.alive(&failed)) {
            failed[l] = false;
            return Some(l);
        }
        failed[l] = false;
    }
    None
}

/// Select tunnels for a single pair under a policy.
pub fn select_tunnels(topo: &Topology, src: NodeId, dst: NodeId, class: TunnelClass) -> Vec<Tunnel> {
    match class {
        TunnelClass::SingleClass => {
            let pool = k_shortest_paths(topo, src, dst, 15);
            let mut chosen = Vec::new();
            if let Some(first) = pool.first() {
                chosen.push(first.clone());
            }
            greedy_disjoint(&pool, &mut chosen, 3);
            chosen
        }
        TunnelClass::HighPriority => {
            let pool = k_shortest_paths(topo, src, dst, 15);
            let mut chosen: Vec<Path> = pool.iter().take(3).cloned().collect();
            // Repair: if some single link kills all three, try swapping the
            // longest chosen tunnel for a pool path avoiding that link.
            for _ in 0..4 {
                let vulnerable = match single_failure_vulnerable(topo, &chosen) {
                    Some(l) => l,
                    None => break,
                };
                let replacement = pool.iter().find(|c| {
                    !c.links.iter().any(|l| l.index() == vulnerable) && !chosen.contains(c)
                });
                match replacement {
                    Some(r) => {
                        // Replace the last (longest) tunnel.
                        let n = chosen.len();
                        if n == 0 {
                            break;
                        }
                        chosen[n - 1] = r.clone();
                    }
                    None => break,
                }
            }
            chosen
        }
        TunnelClass::LowPriority => {
            let mut chosen = select_tunnels(topo, src, dst, TunnelClass::HighPriority);
            let pool = k_shortest_paths(topo, src, dst, 25);
            greedy_disjoint(&pool, &mut chosen, 6);
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    fn grid() -> Topology {
        // 3x3-ish mesh giving plenty of path diversity between 0 and 5.
        Topology::new(
            "mesh",
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 5, 1.0),
                (0, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (1, 4, 1.0),
                (0, 5, 1.0),
            ],
        )
    }

    #[test]
    fn single_class_prefers_disjoint() {
        let t = grid();
        let ts = select_tunnels(&t, NodeId(0), NodeId(5), TunnelClass::SingleClass);
        assert_eq!(ts.len(), 3);
        // First tunnel is the direct link.
        assert_eq!(ts[0].len(), 1);
        // The three tunnels use strictly more links than any pair of them
        // would if fully overlapping; check pairwise shared links are small.
        let shared01 = ts[0].shared_links(&ts[1]);
        let shared02 = ts[0].shared_links(&ts[2]);
        assert_eq!(shared01 + shared02, 0, "direct link shares nothing");
    }

    #[test]
    fn high_priority_survives_single_failures() {
        let t = grid();
        let ts = select_tunnels(&t, NodeId(0), NodeId(5), TunnelClass::HighPriority);
        assert!(!ts.is_empty());
        assert!(single_failure_vulnerable(&t, &ts).is_none());
    }

    #[test]
    fn low_priority_extends_high_priority() {
        let t = grid();
        let hi = select_tunnels(&t, NodeId(0), NodeId(5), TunnelClass::HighPriority);
        let lo = select_tunnels(&t, NodeId(0), NodeId(5), TunnelClass::LowPriority);
        assert!(lo.len() >= hi.len());
        for h in &hi {
            assert!(lo.contains(h), "low-priority tunnels must include high-priority ones");
        }
    }

    #[test]
    fn tunnel_set_alive_detection() {
        let t = grid();
        let pairs = vec![(NodeId(0), NodeId(5))];
        let ts = TunnelSet::build(&t, &pairs, TunnelClass::SingleClass);
        let alive_all = vec![false; t.num_links()];
        assert!(ts.pair_alive(0, &alive_all));
        let all_failed = vec![true; t.num_links()];
        assert!(!ts.pair_alive(0, &all_failed));
    }

    #[test]
    fn sparse_pair_gets_best_effort() {
        // Line graph: only one path exists.
        let t = Topology::new("line", 3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let ts = select_tunnels(&t, NodeId(0), NodeId(2), TunnelClass::HighPriority);
        assert_eq!(ts.len(), 1); // duplicates are not fabricated
    }
}
