//! Plain-text topology import/export.
//!
//! A minimal, diff-friendly format so users can bring their own WANs
//! (e.g. converted from Topology Zoo `.gml`) instead of the generated
//! Table-2 networks:
//!
//! ```text
//! # comment
//! topology MyWan
//! nodes 4
//! link 0 1 1000        # a b capacity
//! link 1 2 1000
//! link 2 3 2500
//! link 3 0 1000
//! ```
//!
//! Node ids are dense integers `0..nodes`. Capacity is per direction.

use crate::graph::Topology;
use std::fmt;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be interpreted.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        msg: String,
    },
    /// Required header fields missing.
    MissingHeader(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::MissingHeader(h) => write!(f, "missing '{h}' header"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a topology from the text format.
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    let mut name: Option<String> = None;
    let mut nodes: Option<usize> = None;
    let mut links: Vec<(u32, u32, f64)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |msg: &str| ParseError::BadLine { line: line_no, msg: msg.to_string() };
        match parts.next() {
            Some("topology") => {
                name = Some(
                    parts
                        .next()
                        .ok_or_else(|| bad("topology needs a name"))?
                        .to_string(),
                );
            }
            Some("nodes") => {
                nodes = Some(
                    parts
                        .next()
                        .ok_or_else(|| bad("nodes needs a count"))?
                        .parse()
                        .map_err(|_| bad("nodes count must be an integer"))?,
                );
            }
            Some("link") => {
                let a: u32 = parts
                    .next()
                    .ok_or_else(|| bad("link needs two endpoints"))?
                    .parse()
                    .map_err(|_| bad("endpoint must be an integer"))?;
                let b: u32 = parts
                    .next()
                    .ok_or_else(|| bad("link needs two endpoints"))?
                    .parse()
                    .map_err(|_| bad("endpoint must be an integer"))?;
                let cap: f64 = match parts.next() {
                    Some(c) => c.parse().map_err(|_| bad("capacity must be a number"))?,
                    None => crate::zoo::DEFAULT_CAPACITY,
                };
                if a == b {
                    return Err(bad("self-loop links are not allowed"));
                }
                if cap <= 0.0 {
                    return Err(bad("capacity must be positive"));
                }
                links.push((a, b, cap));
            }
            Some(other) => {
                return Err(bad(&format!("unknown directive '{other}'")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let nodes = nodes.ok_or(ParseError::MissingHeader("nodes"))?;
    let name = name.unwrap_or_else(|| "unnamed".to_string());
    for (i, &(a, b, _)) in links.iter().enumerate() {
        if a as usize >= nodes || b as usize >= nodes {
            return Err(ParseError::BadLine {
                line: i + 1,
                msg: format!("link {a}-{b} references a node >= {nodes}"),
            });
        }
    }
    Ok(Topology::new(&name, nodes, &links))
}

/// Serialize a topology to the text format (round-trips with
/// [`parse_topology`]).
pub fn format_topology(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", topo.name));
    out.push_str(&format!("nodes {}\n", topo.num_nodes()));
    for (_, l) in topo.links() {
        out.push_str(&format!("link {} {} {}\n", l.a.0, l.b.0, l.capacity));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let t = parse_topology(
            "# demo\ntopology demo\nnodes 3\nlink 0 1 100\nlink 1 2 200\nlink 2 0 100\n",
        )
        .unwrap();
        assert_eq!(t.name, "demo");
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.link(crate::LinkId(1)).capacity, 200.0);
    }

    #[test]
    fn default_capacity_applies() {
        let t = parse_topology("nodes 2\nlink 0 1\n").unwrap();
        assert_eq!(t.link(crate::LinkId(0)).capacity, crate::zoo::DEFAULT_CAPACITY);
        assert_eq!(t.name, "unnamed");
    }

    #[test]
    fn roundtrip() {
        let orig = crate::topology_by_name("Sprint").unwrap();
        let text = format_topology(&orig);
        let back = parse_topology(&text).unwrap();
        assert_eq!(back.num_nodes(), orig.num_nodes());
        assert_eq!(back.num_links(), orig.num_links());
        for (id, l) in orig.links() {
            let b = back.link(id);
            assert_eq!((b.a, b.b), (l.a, l.b));
            assert_eq!(b.capacity, l.capacity);
        }
    }

    #[test]
    fn errors_are_located() {
        let e = parse_topology("nodes 2\nlink 0 0\n").unwrap_err();
        assert!(matches!(e, ParseError::BadLine { line: 2, .. }), "{e}");
        let e = parse_topology("link 0 1\n").unwrap_err();
        assert!(matches!(e, ParseError::BadLine { .. }) || matches!(e, ParseError::MissingHeader(_)));
        let e = parse_topology("nodes 2\nlink 0 5\n").unwrap_err();
        assert!(matches!(e, ParseError::BadLine { .. }));
        let e = parse_topology("nodes 2\nfrob 1\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"));
    }

    #[test]
    fn negative_capacity_rejected() {
        assert!(parse_topology("nodes 2\nlink 0 1 -5\n").is_err());
    }
}
