//! The 20 evaluation topologies of Table 2.
//!
//! The paper uses Topology Zoo and SMORE/Yates `.gml` topologies; those files
//! are not available offline, so each network is *regenerated* with the exact
//! node and edge counts reported in Table 2 (after the paper's degree-1
//! pruning). The generator emits a Hamiltonian cycle over the nodes plus
//! seeded random chords until the edge count matches. A cycle is
//! 2-edge-connected, so every generated topology survives any single link
//! failure — the invariant the paper's preprocessing establishes — and the
//! chords give the path diversity the schemes exploit. Link capacities are
//! uniform (1000 units per direction), matching the normalized-capacity
//! setting of the paper's gravity-model workloads; demands are later scaled
//! against these capacities to hit the paper's MLU ∈ [0.5, 0.7] operating
//! range (see `flexile-traffic`).
//!
//! The per-topology RNG seed is derived from the topology name (FNV-1a), so
//! every figure regenerates identically across runs and machines.

use crate::graph::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct ZooEntry {
    /// Topology name as printed in the paper.
    pub name: &'static str,
    /// Node count after degree-1 pruning.
    pub nodes: usize,
    /// Edge count after degree-1 pruning.
    pub edges: usize,
}

/// Table 2 of the paper, verbatim.
pub const TABLE2: [ZooEntry; 20] = [
    ZooEntry { name: "B4", nodes: 12, edges: 19 },
    ZooEntry { name: "IBM", nodes: 17, edges: 23 },
    ZooEntry { name: "ATT", nodes: 25, edges: 56 },
    ZooEntry { name: "Quest", nodes: 19, edges: 30 },
    ZooEntry { name: "Tinet", nodes: 48, edges: 84 },
    ZooEntry { name: "Sprint", nodes: 10, edges: 17 },
    ZooEntry { name: "GEANT", nodes: 32, edges: 50 },
    ZooEntry { name: "Xeex", nodes: 22, edges: 32 },
    ZooEntry { name: "CWIX", nodes: 21, edges: 26 },
    ZooEntry { name: "Digex", nodes: 31, edges: 35 },
    ZooEntry { name: "JanetBackbone", nodes: 29, edges: 45 },
    ZooEntry { name: "Highwinds", nodes: 16, edges: 29 },
    ZooEntry { name: "BTNorthAmerica", nodes: 36, edges: 76 },
    ZooEntry { name: "CRLNetwork", nodes: 32, edges: 37 },
    ZooEntry { name: "Darkstrand", nodes: 28, edges: 31 },
    ZooEntry { name: "Integra", nodes: 23, edges: 32 },
    ZooEntry { name: "Xspedius", nodes: 33, edges: 47 },
    ZooEntry { name: "InternetMCI", nodes: 18, edges: 32 },
    ZooEntry { name: "Deltacom", nodes: 103, edges: 151 },
    ZooEntry { name: "IIJ", nodes: 27, edges: 55 },
];

/// Uniform per-direction link capacity used by the generated topologies.
pub const DEFAULT_CAPACITY: f64 = 1000.0;

/// FNV-1a hash of a string, used to derive per-topology RNG seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generate a topology with `nodes` nodes and `edges` edges: a Hamiltonian
/// cycle plus seeded random chords (no self-loops, no duplicate links).
///
/// # Panics
/// Panics when `edges < nodes` (a cycle is the minimum), or when the chord
/// demand exceeds the simple-graph limit.
pub fn generate(name: &str, nodes: usize, edges: usize, seed: u64) -> Topology {
    assert!(nodes >= 3, "{name}: need at least 3 nodes");
    assert!(edges >= nodes, "{name}: need at least {nodes} edges for the base cycle");
    let max_edges = nodes * (nodes - 1) / 2;
    assert!(edges <= max_edges, "{name}: {edges} edges exceed simple-graph limit {max_edges}");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut present = vec![false; nodes * nodes];
    let mut links: Vec<(u32, u32, f64)> = Vec::with_capacity(edges);
    let add = |a: usize, b: usize, present: &mut Vec<bool>, links: &mut Vec<(u32, u32, f64)>| {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        present[lo * nodes + hi] = true;
        links.push((lo as u32, hi as u32, DEFAULT_CAPACITY));
    };
    for i in 0..nodes {
        add(i, (i + 1) % nodes, &mut present, &mut links);
    }
    while links.len() < edges {
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        if a == b {
            continue;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if present[lo * nodes + hi] {
            continue;
        }
        add(lo, hi, &mut present, &mut links);
    }
    Topology::new(name, nodes, &links)
}

/// Build one of the Table-2 topologies by name (case-insensitive).
pub fn topology_by_name(name: &str) -> Option<Topology> {
    TABLE2
        .iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .map(|e| generate(e.name, e.nodes, e.edges, fnv1a(e.name)))
}

/// Build all 20 evaluation topologies in Table-2 order.
pub fn all_topologies() -> Vec<Topology> {
    TABLE2
        .iter()
        .map(|e| generate(e.name, e.nodes, e.edges, fnv1a(e.name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_generated() {
        for e in TABLE2 {
            let t = topology_by_name(e.name).unwrap();
            assert_eq!(t.num_nodes(), e.nodes, "{}", e.name);
            assert_eq!(t.num_links(), e.edges, "{}", e.name);
        }
    }

    #[test]
    fn all_topologies_survive_single_failures() {
        for t in all_topologies() {
            assert!(t.is_connected(), "{} disconnected", t.name);
            assert!(
                t.survives_any_single_failure(),
                "{} vulnerable to a single link failure",
                t.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = topology_by_name("IBM").unwrap();
        let b = topology_by_name("ibm").unwrap();
        let la: Vec<_> = a.links().map(|(_, l)| (l.a, l.b)).collect();
        let lb: Vec<_> = b.links().map(|(_, l)| (l.a, l.b)).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(topology_by_name("NotANetwork").is_none());
    }

    #[test]
    #[should_panic]
    fn too_few_edges_panics() {
        generate("bad", 10, 9, 1);
    }

    #[test]
    fn no_duplicate_links() {
        for t in all_topologies() {
            let mut seen = std::collections::HashSet::new();
            for (_, l) in t.links() {
                let key = (l.a.min(l.b), l.a.max(l.b));
                assert!(seen.insert(key), "{}: duplicate link {key:?}", t.name);
            }
        }
    }
}
