//! Shared scaffolding for per-scenario allocation LPs.
//!
//! Every online scheme (ScenBest, SWAN, Flexile's online phase) solves the
//! same kind of model per failure scenario: tunnel-bandwidth variables for
//! the live tunnels of each (class, pair), per-directed-arc capacity rows
//! scaled by the scenario's capacity factors, and per-pair "served
//! bandwidth" expressions. [`ScenAlloc`] builds that skeleton once per
//! scenario and lets schemes layer objectives and side constraints on top.

use flexile_lp::{Model, Sense, VarId};
use flexile_scenario::Scenario;
use flexile_traffic::Instance;

/// Per-scenario allocation model skeleton.
pub struct ScenAlloc<'a> {
    /// The underlying LP model (mutable access for scheme-specific rows).
    pub model: Model,
    /// The instance this allocates for.
    pub inst: &'a Instance,
    /// `x[k][p][t]`: bandwidth variable of tunnel `t` of pair `p`, class
    /// `k`. Dead tunnels get a fixed `[0,0]` variable so indexing stays
    /// uniform.
    pub x: Vec<Vec<Vec<VarId>>>,
    /// `tunnel_alive[k][p][t]` for this scenario.
    pub tunnel_alive: Vec<Vec<Vec<bool>>>,
    /// Whether pair `p` of class `k` has any live tunnel.
    pub pair_alive: Vec<Vec<bool>>,
}

impl<'a> ScenAlloc<'a> {
    /// Build the skeleton: variables + capacity rows for `scen`.
    pub fn new(inst: &'a Instance, scen: &Scenario, sense: Sense) -> Self {
        let mut model = Model::new(sense);
        let dead = scen.dead_mask();
        let num_arcs = inst.num_arcs();
        let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); num_arcs];
        let mut x = Vec::with_capacity(inst.num_classes());
        let mut tunnel_alive = Vec::with_capacity(inst.num_classes());
        let mut pair_alive = Vec::with_capacity(inst.num_classes());
        for k in 0..inst.num_classes() {
            let mut xk = Vec::with_capacity(inst.num_pairs());
            let mut ak = Vec::with_capacity(inst.num_pairs());
            let mut pk = Vec::with_capacity(inst.num_pairs());
            for p in 0..inst.num_pairs() {
                let tunnels = &inst.tunnels[k].tunnels[p];
                let mut xp = Vec::with_capacity(tunnels.len());
                let mut ap = Vec::with_capacity(tunnels.len());
                let mut any = false;
                for (t, path) in tunnels.iter().enumerate() {
                    let alive = path.alive(&dead);
                    any |= alive;
                    let ub = if alive { f64::INFINITY } else { 0.0 };
                    let v = model.add_var(&format!("x_{k}_{p}_{t}"), 0.0, ub, 0.0);
                    if alive {
                        for a in inst.arc_ids(path) {
                            arc_terms[a].push((v, 1.0));
                        }
                    }
                    xp.push(v);
                    ap.push(alive);
                }
                xk.push(xp);
                ak.push(ap);
                pk.push(any);
            }
            x.push(xk);
            tunnel_alive.push(ak);
            pair_alive.push(pk);
        }
        for (a, terms) in arc_terms.into_iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let factor = scen.cap_factor[inst.arc_link(a)];
            model.add_row_le(&terms, inst.arc_capacity(a) * factor);
        }
        ScenAlloc { model, inst, x, tunnel_alive, pair_alive }
    }

    /// Coefficient list for the served bandwidth of `(class, pair)` over its
    /// live tunnels.
    pub fn served_coeffs(&self, k: usize, p: usize) -> Vec<(VarId, f64)> {
        self.x[k][p]
            .iter()
            .zip(self.tunnel_alive[k][p].iter())
            .filter(|(_, &alive)| alive)
            .map(|(&v, _)| (v, 1.0))
            .collect()
    }

    /// Served bandwidth of `(class, pair)` at a solution.
    pub fn served_at(&self, sol: &flexile_lp::Solution, k: usize, p: usize) -> f64 {
        self.x[k][p]
            .iter()
            .zip(self.tunnel_alive[k][p].iter())
            .filter(|(_, &alive)| alive)
            .map(|(&v, _)| sol.value(v))
            .sum()
    }

    /// Loss of `(class, pair)` at a solution, given its demand.
    pub fn loss_at(&self, sol: &flexile_lp::Solution, k: usize, p: usize) -> f64 {
        let d = self.inst.demands[k][p];
        if d <= 0.0 {
            return 0.0;
        }
        crate::types::clamp_loss(1.0 - self.served_at(sol, k, p) / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions};
    use flexile_topo::topology_by_name;
    use flexile_traffic::Instance;

    fn sprint_instance() -> (Instance, flexile_scenario::ScenarioSet) {
        let topo = topology_by_name("Sprint").unwrap();
        let probs = vec![0.01; topo.num_links()];
        let units = link_units(&topo, &probs);
        let set = enumerate_scenarios(
            &units,
            topo.num_links(),
            &EnumOptions { prob_cutoff: 1e-4, max_scenarios: 30, coverage_target: 2.0 },
        );
        let inst = Instance::single_class(topo, 7, 0.6, Some(30));
        (inst, set)
    }

    #[test]
    fn skeleton_shapes() {
        let (inst, set) = sprint_instance();
        let alloc = ScenAlloc::new(&inst, &set.scenarios[0], Sense::Max);
        assert_eq!(alloc.x.len(), 1);
        assert_eq!(alloc.x[0].len(), inst.num_pairs());
        // All-alive scenario: every pair alive.
        assert!(alloc.pair_alive[0].iter().all(|&b| b));
    }

    #[test]
    fn dead_tunnels_are_fixed_to_zero() {
        let (inst, set) = sprint_instance();
        // Check every failure scenario: any tunnel crossing a dead link
        // must have its variable pinned to zero. Which scenarios actually
        // kill a tunnel depends on the (seeded) pair subsample, so require
        // only that the whole sweep exercises at least one dead tunnel.
        let mut saw_dead = false;
        for scen in set.scenarios.iter().filter(|s| !s.failed_units.is_empty()) {
            let alloc = ScenAlloc::new(&inst, scen, Sense::Max);
            for p in 0..inst.num_pairs() {
                for (t, &alive) in alloc.tunnel_alive[0][p].iter().enumerate() {
                    if !alive {
                        saw_dead = true;
                        let (lb, ub) = alloc.model.bounds(alloc.x[0][p][t]);
                        assert_eq!((lb, ub), (0.0, 0.0));
                    }
                }
            }
        }
        assert!(saw_dead, "expected some dead tunnel across the failure scenarios");
    }

    #[test]
    fn capacity_rows_bind_throughput() {
        let (inst, set) = sprint_instance();
        let mut alloc = ScenAlloc::new(&inst, &set.scenarios[0], Sense::Max);
        // Maximize total served, bounded by demand.
        let mut total = Vec::new();
        for p in 0..inst.num_pairs() {
            let coeffs = alloc.served_coeffs(0, p);
            alloc.model.add_row_le(&coeffs, inst.demands[0][p]);
            total.extend(coeffs);
        }
        for (v, _) in &total {
            alloc.model.set_obj(*v, 1.0);
        }
        let sol = alloc.model.solve().unwrap();
        let served: f64 = (0..inst.num_pairs()).map(|p| alloc.served_at(&sol, 0, p)).sum();
        let demand: f64 = inst.demands[0].iter().sum();
        // MLU 0.6 => the intact network can serve everything.
        assert!((served - demand).abs() / demand < 1e-6, "served {served} vs {demand}");
    }
}
