//! # flexile-te — baseline traffic-engineering schemes
//!
//! Every scheme the paper compares against, built on the `flexile-lp`
//! simplex substrate. Each scheme's entry point performs the paper's
//! *post-analysis*: determine the scheme's routing/bandwidth allocation for
//! every failure scenario and return the full loss matrix
//! `loss[flow][scenario]`, from which `flexile-metrics` computes PercLoss.
//!
//! * [`mcf`] — the per-scenario optimal max-concurrent-flow allocation:
//!   `ScenBest(MLU)` = SMORE's failure response (§2), its
//!   disconnected-flows-dropped variant (§6.2), and the two-class
//!   lexicographic generalization `ScenBest-Multi` (§6.3).
//! * [`swan`] — SWAN-Throughput and SWAN-Maxmin (§6): per-scenario
//!   allocation with strict class priority; max-min approximated by
//!   iterative water-filling with freeze detection.
//! * [`teavar`] — Teavar's CVaR LP with a static per-pair tunnel split and
//!   scenario-level (worst-flow) loss, solved with lazy rows.
//! * [`cvar_flow`] — the paper's §5 generalizations: `Cvar-Flow-St`
//!   (flow-level CVaR, static routing) and `Cvar-Flow-Ad` (flow-level CVaR,
//!   adaptive per-scenario routing), both solved with lazy rows.
//! * [`ffc`] — Forward Fault Correction (§2's congestion-free baseline
//!   that Teavar extends): conservative admission protected against up to
//!   `f` simultaneous failures.
//! * [`alloc`] — shared per-scenario allocation-model scaffolding.

#![warn(missing_docs)]

pub mod alloc;
pub mod cvar_flow;
pub mod ffc;
pub mod mcf;
pub mod swan;
pub mod teavar;
pub mod types;

pub use types::SchemeResult;
