//! FFC — Forward Fault Correction (§2's representative congestion-free
//! local mechanism).
//!
//! FFC conservatively admits traffic so that, for *every* scenario with at
//! most `f` simultaneous link failures, the admitted bandwidth of each flow
//! still fits the surviving tunnels without congestion. On failure the
//! network only rescales proportionally on live tunnels; no global
//! re-optimization happens. Teavar (§2) generalizes exactly this scheme
//! with failure probabilities.
//!
//! Design LP (per the FFC paper, conservative surviving-allocation form):
//!
//! ```text
//! max Σ_p b_p                      (admitted bandwidth, capped by demand)
//! s.t. b_p ≤ Σ_{t alive in s} x_{p,t}    ∀ scenarios s with |s| ≤ f  (lazy)
//!      Σ_{p,t ∋ arc} x_{p,t} ≤ c_arc     (intact capacities)
//!      0 ≤ b_p ≤ d_p,  x ≥ 0
//! ```
//!
//! The protection constraints are generated lazily; for `f = 1` only
//! `|E| + 1` scenarios exist, and larger `f` still activates only the
//! binding ones.
//!
//! Post-analysis: in an arbitrary scenario `q` (which may exceed `f`
//! failures), flow `p` receives `min(b_p, Σ_{t alive in q} x_{p,t})` — its
//! admitted rate if the scenario was protected against, less otherwise.

use crate::types::{clamp_loss, SchemeResult};
use flexile_lp::{solve_with_rowgen, Model, RowGenOptions, RowSpec, Sense, VarId};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;

/// An FFC design: admitted bandwidth and tunnel allocations.
#[derive(Debug, Clone)]
pub struct FfcDesign {
    /// Admitted bandwidth per pair (`b_p`).
    pub admitted: Vec<f64>,
    /// Tunnel allocations `x[p][t]`.
    pub x: Vec<Vec<f64>>,
    /// The protection level `f` designed for.
    pub protection: usize,
}

/// Solve the FFC design LP for protection level `f` (single class).
pub fn ffc_design(inst: &Instance, f: usize) -> FfcDesign {
    assert_eq!(inst.num_classes(), 1, "FFC is a single-class scheme");
    let np = inst.num_pairs();
    let nl = inst.topo.num_links();
    let mut m = Model::new(Sense::Max);
    let b: Vec<VarId> = (0..np)
        .map(|p| m.add_var(&format!("b_{p}"), 0.0, inst.demands[0][p].max(0.0), 1.0))
        .collect();
    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(np);
    let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
    for p in 0..np {
        let vars: Vec<VarId> = inst.tunnels[0].tunnels[p]
            .iter()
            .enumerate()
            .map(|(t, path)| {
                let v = m.add_var(&format!("x_{p}_{t}"), 0.0, f64::INFINITY, 0.0);
                for a in inst.arc_ids(path) {
                    arc_terms[a].push((v, 1.0));
                }
                v
            })
            .collect();
        x.push(vars);
    }
    for (a, terms) in arc_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            m.add_row_le(&terms, inst.arc_capacity(a));
        }
    }

    // Lazy protection constraints over failure sets of size ≤ f. For each
    // flow the oracle finds the failure set killing the most surviving
    // allocation: exhaustively over the flow's own used links when that
    // set is small (exact — tunnels share links, so independent top-f is
    // not), falling back to greedy top-f for pathological tunnel counts.
    let protection = f;
    let res = solve_with_rowgen(
        &mut m,
        &RowGenOptions { max_rounds: 200, rows_per_round: 100, ..Default::default() },
        |sol| {
            let mut rows = Vec::new();
            for p in 0..np {
                let bp = sol.value(b[p]);
                if bp <= 1e-9 {
                    continue;
                }
                // Allocation lost per failed link for this flow.
                let mut lost = vec![0.0f64; nl];
                for (t, path) in inst.tunnels[0].tunnels[p].iter().enumerate() {
                    let amt = sol.value(x[p][t]);
                    if amt <= 0.0 {
                        continue;
                    }
                    for &l in &path.links {
                        lost[l.index()] += amt;
                    }
                }
                // Links this flow actually uses (only those matter to its
                // protection constraint).
                let used: Vec<usize> =
                    (0..nl).filter(|&l| lost[l] > 1e-12).collect();
                let survive_given = |failed: &[usize]| -> f64 {
                    inst.tunnels[0].tunnels[p]
                        .iter()
                        .enumerate()
                        .filter(|(_, path)| {
                            !path.links.iter().any(|l| failed.contains(&l.index()))
                        })
                        .map(|(t, _)| sol.value(x[p][t]))
                        .sum()
                };
                // Worst failure set of size ≤ f: exact enumeration over the
                // used links when cheap, greedy top-lost otherwise.
                let failed: Vec<usize> = if protection == 0 {
                    Vec::new()
                } else if used.len() <= 14 && protection <= 3 {
                    let mut best: (f64, Vec<usize>) = (f64::INFINITY, Vec::new());
                    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
                    while let Some(set) = stack.pop() {
                        if !set.is_empty() {
                            let s = survive_given(&set);
                            if s < best.0 {
                                best = (s, set.clone());
                            }
                        }
                        if set.len() < protection {
                            let start = set.last().map_or(0, |&l| {
                                used.iter().position(|&u| u == l).unwrap() + 1
                            });
                            for &u in &used[start..] {
                                let mut next = set.clone();
                                next.push(u);
                                stack.push(next);
                            }
                        }
                    }
                    best.1
                } else {
                    let mut order = used.clone();
                    order.sort_by(|&i, &j| lost[j].partial_cmp(&lost[i]).unwrap());
                    order.into_iter().take(protection).collect()
                };
                let surviving = survive_given(&failed);
                if bp > surviving + 1e-7 {
                    // b_p − Σ_{t survives} x_{p,t} ≤ 0
                    let mut coeffs: Vec<(VarId, f64)> = vec![(b[p], 1.0)];
                    for (t, path) in inst.tunnels[0].tunnels[p].iter().enumerate() {
                        if !path.links.iter().any(|l| failed.contains(&l.index())) {
                            coeffs.push((x[p][t], -1.0));
                        }
                    }
                    rows.push(RowSpec::le(coeffs, 0.0));
                }
            }
            rows
        },
    )
    .expect("FFC LP failed");

    let sol = res.solution;
    FfcDesign {
        admitted: b.iter().map(|&v| sol.value(v)).collect(),
        x: x.iter().map(|vs| vs.iter().map(|&v| sol.value(v)).collect()).collect(),
        protection: f,
    }
}

/// Post-analysis of an FFC design over a scenario set.
pub fn ffc_losses(inst: &Instance, set: &ScenarioSet, design: &FfcDesign) -> SchemeResult {
    let np = inst.num_pairs();
    let mut loss = vec![vec![0.0; set.scenarios.len()]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let dead = scen.dead_mask();
        for p in 0..np {
            let d = inst.demands[0][p];
            if d <= 0.0 {
                continue;
            }
            let surviving: f64 = inst.tunnels[0].tunnels[p]
                .iter()
                .enumerate()
                .filter(|(_, path)| path.alive(&dead))
                .map(|(t, _)| design.x[p][t])
                .sum();
            let served = design.admitted[p].min(surviving);
            loss[p][q] = clamp_loss(1.0 - served / d);
        }
    }
    SchemeResult::new(&format!("FFC-{}", design.protection), loss)
}

/// Design + post-analysis in one call.
pub fn ffc(inst: &Instance, set: &ScenarioSet, f: usize) -> SchemeResult {
    let design = ffc_design(inst, f);
    ffc_losses(inst, set, &design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::tests::{fig1_instance, fig1_scenarios};

    #[test]
    fn ffc0_admits_everything_feasible() {
        // f = 0: no protection, plain multicommodity admission.
        let inst = fig1_instance();
        let d = ffc_design(&inst, 0);
        let total: f64 = d.admitted.iter().sum();
        assert!((total - 2.0).abs() < 1e-6, "admitted {total}");
    }

    #[test]
    fn ffc1_is_conservative_on_fig1() {
        // With f = 1 protected bandwidth must be duplicated across
        // disjoint paths, halving the usable capacity: total admitted
        // traffic cannot exceed 1 (vs 2 unprotected).
        let inst = fig1_instance();
        let d = ffc_design(&inst, 1);
        let total: f64 = d.admitted.iter().sum();
        assert!(total <= 1.0 + 1e-6, "total admitted {total} exceeds protected capacity");
        // Protection is real: killing any single link leaves enough.
        for l in 0..3 {
            for p in 0..2 {
                let surviving: f64 = inst.tunnels[0].tunnels[p]
                    .iter()
                    .enumerate()
                    .filter(|(_, path)| !path.links.iter().any(|x| x.index() == l))
                    .map(|(t, _)| d.x[p][t])
                    .sum();
                assert!(
                    surviving + 1e-6 >= d.admitted[p],
                    "pair {p} unprotected against link {l}"
                );
            }
        }
    }

    #[test]
    fn ffc_losses_match_guarantee() {
        // In every single-failure scenario the admitted bandwidth flows.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let design = ffc_design(&inst, 1);
        let r = ffc_losses(&inst, &set, &design);
        for (q, scen) in set.scenarios.iter().enumerate() {
            if scen.failed_units.len() > 1 {
                continue;
            }
            for p in 0..2 {
                let d = inst.demands[0][p];
                let promised = 1.0 - design.admitted[p] / d;
                assert!(
                    r.loss[p][q] <= promised + 1e-6,
                    "scenario {q} pair {p}: loss {} exceeds promised {}",
                    r.loss[p][q],
                    promised
                );
            }
        }
    }

    #[test]
    fn higher_protection_admits_less() {
        let inst = fig1_instance();
        let a0: f64 = ffc_design(&inst, 0).admitted.iter().sum();
        let a1: f64 = ffc_design(&inst, 1).admitted.iter().sum();
        let a2: f64 = ffc_design(&inst, 2).admitted.iter().sum();
        assert!(a1 <= a0 + 1e-9);
        assert!(a2 <= a1 + 1e-9);
    }
}
