//! ScenBest / SMORE: per-scenario optimal max-concurrent-flow allocation.
//!
//! `ScenBest(MLU)` re-splits traffic optimally among live tunnels in every
//! failure scenario, minimizing the worst flow loss in that scenario
//! (equivalently minimizing MLU / maximizing the concurrent scale factor —
//! see the paper's appendix A). It is exactly SMORE's failure response, and
//! the per-scenario *optimum* no existing scheme can beat (§2).
//!
//! Two post-analysis variants:
//! * **strict** (plain SMORE): the scale factor covers every flow, so a
//!   scenario that disconnects any flow forces scale 0 — the worst-flow loss
//!   is 100%, matching the paper's §6.2 discussion.
//! * **drop-disconnected** (§6.2's SMORE variant): disconnected flows are
//!   turned off (loss 1) and the scale factor covers the rest.
//!
//! After fixing the optimal scale both variants run a second pass that
//! maximizes total served demand (capped per pair), using residual capacity
//! realistically so per-flow losses differ (as in Fig. 5's CDFs).
//!
//! `ScenBest-Multi` (§6.3) generalizes to two classes lexicographically:
//! maximize the high-priority scale first, freeze it, then the low-priority
//! scale, then total throughput.

use crate::alloc::ScenAlloc;
use crate::types::{clamp_loss, SchemeResult};
use flexile_lp::Sense;
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_traffic::Instance;

/// Per-scenario ScenBest losses for a single-class instance.
///
/// Returns the per-pair losses. `drop_disconnected` selects the §6.2
/// variant.
pub fn scen_best_scenario(inst: &Instance, scen: &Scenario, drop_disconnected: bool) -> Vec<f64> {
    assert_eq!(inst.num_classes(), 1, "scen_best_scenario is single-class");
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Max);
    let np = inst.num_pairs();
    let mut disconnected_with_demand = false;
    let z = alloc.model.add_var("z", 0.0, 1.0, 1.0);
    for p in 0..np {
        let d = inst.demands[0][p];
        if d <= 0.0 {
            continue;
        }
        if alloc.pair_alive[0][p] {
            let mut coeffs = alloc.served_coeffs(0, p);
            coeffs.push((z, -d));
            alloc.model.add_row_ge(&coeffs, 0.0);
        } else {
            disconnected_with_demand = true;
        }
    }
    if disconnected_with_demand && !drop_disconnected {
        // Max-concurrent-flow semantics: the common scale factor includes
        // the disconnected flow, forcing it to zero.
        alloc.model.set_bounds(z, 0.0, 0.0);
    }
    let sol = alloc.model.solve().expect("ScenBest scale LP must be feasible");
    let zstar = sol.value(z);

    // Second pass: freeze the scale floor, maximize total served.
    alloc.model.set_bounds(z, (zstar - 1e-9).max(0.0), 1.0);
    alloc.model.set_obj(z, 0.0);
    for p in 0..np {
        if !alloc.pair_alive[0][p] {
            continue;
        }
        let coeffs = alloc.served_coeffs(0, p);
        alloc.model.add_row_le(&coeffs, inst.demands[0][p]);
        for &(v, _) in &coeffs {
            alloc.model.set_obj(v, 1.0);
        }
    }
    let sol2 = alloc.model.solve().expect("ScenBest throughput LP must be feasible");

    (0..np)
        .map(|p| {
            let d = inst.demands[0][p];
            if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[0][p] {
                1.0
            } else {
                alloc.loss_at(&sol2, 0, p)
            }
        })
        .collect()
}

/// The optimal per-scenario worst-flow loss (`ScenLoss` lower bound) for a
/// single-class instance — i.e. `1 - z*` over connected flows.
pub fn optimal_scen_loss(inst: &Instance, scen: &Scenario, drop_disconnected: bool) -> f64 {
    let losses = scen_best_scenario(inst, scen, drop_disconnected);
    losses.into_iter().fold(0.0, f64::max)
}

/// SMORE post-analysis (strict max-concurrent-flow semantics).
pub fn smore(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    run(inst, set, false, "SMORE")
}

/// The §6.2 SMORE variant that turns off disconnected flows.
pub fn smore_drop_disconnected(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    run(inst, set, true, "SMORE-drop")
}

/// ScenBest is SMORE with the drop-disconnected convention used in Fig. 5.
pub fn scen_best(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    run(inst, set, true, "ScenBest")
}

fn run(inst: &Instance, set: &ScenarioSet, drop: bool, name: &str) -> SchemeResult {
    let nf = inst.num_flows();
    let mut loss = vec![vec![0.0; set.scenarios.len()]; nf];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let l = scen_best_scenario(inst, scen, drop);
        for (p, &v) in l.iter().enumerate() {
            loss[p][q] = clamp_loss(v);
        }
    }
    SchemeResult::new(name, loss)
}

/// ScenBest-Multi: lexicographic two-class (or K-class) generalization.
/// Classes are processed highest priority first; each class's concurrent
/// scale is maximized and frozen, then total throughput is maximized.
pub fn scen_best_multi(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    let nf = inst.num_flows();
    let mut loss = vec![vec![0.0; set.scenarios.len()]; nf];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let l = scen_best_multi_scenario(inst, scen);
        for (f, &v) in l.iter().enumerate() {
            loss[f][q] = clamp_loss(v);
        }
    }
    SchemeResult::new("ScenBest-Multi", loss)
}

/// Per-scenario lexicographic multi-class allocation; returns per-flow
/// losses indexed by the instance's flow convention.
pub fn scen_best_multi_scenario(inst: &Instance, scen: &Scenario) -> Vec<f64> {
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Max);
    let nk = inst.num_classes();
    let np = inst.num_pairs();
    // Scale variable per class; demand caps for all pairs up front.
    let mut zs = Vec::with_capacity(nk);
    for k in 0..nk {
        let z = alloc.model.add_var(&format!("z_{k}"), 0.0, 1.0, 0.0);
        for p in 0..np {
            let d = inst.demands[k][p];
            if d <= 0.0 || !alloc.pair_alive[k][p] {
                continue;
            }
            let mut coeffs = alloc.served_coeffs(k, p);
            alloc.model.add_row_le(&coeffs, d);
            coeffs.push((z, -d));
            alloc.model.add_row_ge(&coeffs, 0.0);
        }
        zs.push(z);
    }
    // Lexicographic maximization of the class scales.
    for k in 0..nk {
        alloc.model.set_obj(zs[k], 1.0);
        let sol = alloc.model.solve().expect("ScenBest-Multi stage LP");
        let zstar = sol.value(zs[k]);
        alloc.model.set_obj(zs[k], 0.0);
        alloc.model.set_bounds(zs[k], (zstar - 1e-9).max(0.0), 1.0);
    }
    // Final throughput pass, higher classes weighted lexicographically
    // large so residual capacity prefers them.
    let mut weight = 1.0;
    for k in (0..nk).rev() {
        for p in 0..np {
            if !alloc.pair_alive[k][p] {
                continue;
            }
            for (v, _) in alloc.served_coeffs(k, p) {
                alloc.model.set_obj(v, weight);
            }
        }
        weight *= 1000.0;
    }
    let sol = alloc.model.solve().expect("ScenBest-Multi throughput LP");
    let mut out = vec![0.0; inst.num_flows()];
    for k in 0..nk {
        for p in 0..np {
            let f = inst.flow_index(k, p);
            let d = inst.demands[k][p];
            out[f] = if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[k][p] {
                1.0
            } else {
                alloc.loss_at(&sol, k, p)
            };
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
    use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
    use flexile_traffic::{ClassConfig, Instance};

    /// The Fig. 1 triangle with flows A->B and A->C of demand 1.
    pub(crate) fn fig1_instance() -> Instance {
        let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
        let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
        Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::single()],
            tunnels: vec![tunnels],
            demands: vec![vec![1.0, 1.0]],
        }
    }

    pub(crate) fn fig1_scenarios() -> ScenarioSet {
        let inst = fig1_instance();
        let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
        enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        )
    }

    #[test]
    fn fig2_scenbest_splits_half_half() {
        // Paper Fig. 2: when link A-B fails, ScenBest can only give each
        // flow 0.5 (both squeeze through the surviving links).
        let inst = fig1_instance();
        let set = fig1_scenarios();
        // Find the scenario where exactly link 0 (A-B) failed.
        let scen = set
            .scenarios
            .iter()
            .find(|s| s.failed_units == vec![0])
            .unwrap();
        let losses = scen_best_scenario(&inst, scen, true);
        assert!((losses[0] - 0.5).abs() < 1e-6, "f1 loss {}", losses[0]);
        assert!((losses[1] - 0.5).abs() < 1e-6, "f2 loss {}", losses[1]);
    }

    #[test]
    fn all_alive_scenario_is_lossless() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let losses = scen_best_scenario(&inst, &set.scenarios[0], true);
        assert!(losses.iter().all(|&l| l < 1e-6));
    }

    #[test]
    fn strict_vs_drop_on_disconnection() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        // Links A-B and B-C dead: A-B pair relies on A-C-B...
        // Find the scenario where A-B (0) and A-C (1) both failed: node A cut.
        let scen = set
            .scenarios
            .iter()
            .find(|s| s.failed_units == vec![0, 1])
            .unwrap();
        let strict = scen_best_scenario(&inst, scen, false);
        assert!(strict.iter().all(|&l| (l - 1.0).abs() < 1e-6), "strict {strict:?}");
        let drop = scen_best_scenario(&inst, scen, true);
        // Both flows originate at A which is cut off: still total loss.
        assert!(drop.iter().all(|&l| (l - 1.0).abs() < 1e-6));
    }

    #[test]
    fn drop_rescues_connected_flows() {
        // B-C and A-C fail: flow A->B is fine via the direct link; flow
        // A->C is disconnected.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set
            .scenarios
            .iter()
            .find(|s| s.failed_units == vec![1, 2])
            .unwrap();
        let strict = scen_best_scenario(&inst, scen, false);
        assert!((strict[1] - 1.0).abs() < 1e-6);
        // Strict forces the scale to zero, but the throughput pass still
        // pushes traffic for the connected flow.
        let drop = scen_best_scenario(&inst, scen, true);
        assert!(drop[0] < 1e-6, "connected flow should be served: {drop:?}");
        assert!((drop[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn smore_full_matrix_shape() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let r = smore(&inst, &set);
        assert_eq!(r.num_flows(), 2);
        assert_eq!(r.num_scenarios(), 8);
    }

    #[test]
    fn multi_class_priority_respected() {
        // Two classes on the triangle; high priority must never lose more
        // than low priority under contention... build a tight instance:
        let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1))];
        let hi = TunnelSet::build(&topo, &pairs, TunnelClass::HighPriority);
        let lo = TunnelSet::build(&topo, &pairs, TunnelClass::LowPriority);
        let inst = Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::interactive(), ClassConfig::elastic()],
            tunnels: vec![hi, lo],
            demands: vec![vec![1.5], vec![1.5]],
        };
        let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
        let set = enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 1, coverage_target: 2.0 },
        );
        let l = scen_best_multi_scenario(&inst, &set.scenarios[0]);
        // Total capacity out of A is 2.0; demand is 3.0. The lexicographic
        // scheme should fully serve the high class (1.5 <= 2.0).
        assert!(l[0] < 1e-6, "high-priority loss {l:?}");
        assert!(l[1] > 0.3, "low priority should bear the shortage {l:?}");
    }
}
