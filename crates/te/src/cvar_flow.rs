//! The paper's §5 CVaR generalizations of Teavar: `Cvar-Flow-St` and
//! `Cvar-Flow-Ad`.
//!
//! Both evaluate losses at *flow* level (per-flow CVaR, then the max across
//! flows — `MaxFlowCVaR`, eq. (20)) instead of Teavar's scenario-level loss.
//! `St` keeps Teavar's static tunnel split; `Ad` additionally re-splits
//! traffic per scenario (appendix C formulations).
//!
//! Solver strategy (the full LPs have `O(|P|·|Q|)` rows / `O(|T|·|Q|)`
//! columns, far beyond a dense-basis simplex):
//!
//! * **St** — all `s_fq` variables exist up front (columns are cheap), the
//!   per-flow CVaR rows exist up front, and the `s_fq ≥ l_fq − α_f` rows are
//!   generated lazily, exactly like our Teavar.
//! * **Ad** — per-scenario routing variables are materialized only for an
//!   *active* scenario set, grown by an oracle that solves a small
//!   per-scenario LP to check whether the scenario can keep every flow
//!   within its current VaR estimate `α_f`; the model is rebuilt when the
//!   active set grows (bounded by `max_active`). Post-analysis then routes
//!   every scenario with a best-response LP (min-max excess over `α_f`,
//!   then max throughput), reflecting that the scheme is fully adaptive
//!   online. This truncation is the documented substitution for Gurobi on
//!   the bundled model; with enough active scenarios it is exact.

use crate::alloc::ScenAlloc;
use crate::types::{clamp_loss, SchemeResult};
use flexile_lp::{solve_with_rowgen, Model, RowGenOptions, RowSpec, Sense, VarId};
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_traffic::Instance;

/// Options for the CVaR schemes.
#[derive(Debug, Clone)]
pub struct CvarOptions {
    /// CVaR target probability β.
    pub beta: f64,
    /// `Ad` only: cap on simultaneously active scenarios.
    pub max_active: usize,
    /// `Ad` only: scenarios activated per rebuild round.
    pub per_round: usize,
}

impl CvarOptions {
    /// Defaults tuned for the evaluation harness.
    pub fn new(beta: f64) -> Self {
        CvarOptions { beta, max_active: 8, per_round: 3 }
    }
}

/// `Cvar-Flow-St`: static routing, flow-level CVaR. Returns the loss matrix.
///
/// Like Teavar, requires the full demand to be routable on the intact
/// network (split fractions sum to 1); oversubscribed instances are
/// infeasible.
pub fn cvar_flow_st(inst: &Instance, set: &ScenarioSet, opts: &CvarOptions) -> SchemeResult {
    assert_eq!(inst.num_classes(), 1, "CVaR schemes are single-class");
    let np = inst.num_pairs();
    let nq = set.scenarios.len();
    let beta = opts.beta;
    let mut m = Model::new(Sense::Min);
    // CVaR at level beta is bounded by 1/(1-beta) (all tail mass at loss 1),
    // so the cap below is never binding at a true optimum.
    let theta_ub = 1.0 / (1.0 - beta) + 1.0;
    let theta = m.add_var("theta", 0.0, theta_ub, 1.0);
    let mut alpha = Vec::with_capacity(np);
    let mut s: Vec<Vec<VarId>> = Vec::with_capacity(np);
    for p in 0..np {
        alpha.push(m.add_var(&format!("a_{p}"), 0.0, 1.0, 0.0));
        s.push(
            (0..nq)
                .map(|q| m.add_var(&format!("s_{p}_{q}"), 0.0, f64::INFINITY, 0.0))
                .collect(),
        );
    }
    // Static split fractions + intact capacity.
    let mut lambda: Vec<Vec<VarId>> = Vec::with_capacity(np);
    let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
    for p in 0..np {
        let d = inst.demands[0][p];
        let vars: Vec<VarId> = inst.tunnels[0].tunnels[p]
            .iter()
            .enumerate()
            .map(|(t, path)| {
                let v = m.add_var(&format!("l_{p}_{t}"), 0.0, 1.0, 0.0);
                for a in inst.arc_ids(path) {
                    arc_terms[a].push((v, d));
                }
                v
            })
            .collect();
        if !vars.is_empty() && d > 0.0 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_row_eq(&coeffs, 1.0);
        }
        lambda.push(vars);
    }
    for (a, terms) in arc_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            m.add_row_le(&terms, inst.arc_capacity(a));
        }
    }
    // Per-flow CVaR rows: θ − α_p − Σ_q (p_q/(1−β)) s_pq ≥ 0.
    for p in 0..np {
        if inst.demands[0][p] <= 0.0 {
            continue;
        }
        let mut coeffs: Vec<(VarId, f64)> = vec![(theta, 1.0), (alpha[p], -1.0)];
        for (q, scen) in set.scenarios.iter().enumerate() {
            coeffs.push((s[p][q], -scen.prob / (1.0 - beta)));
        }
        m.add_row_ge(&coeffs, 0.0);
    }

    let dead_masks: Vec<Vec<bool>> = set.scenarios.iter().map(|x| x.dead_mask()).collect();
    let rg = RowGenOptions { max_rounds: 300, rows_per_round: 60, ..Default::default() };
    let res = solve_with_rowgen(&mut m, &rg, |sol| {
        let mut rows = Vec::new();
        for (q, dead) in dead_masks.iter().enumerate() {
            for p in 0..np {
                if inst.demands[0][p] <= 0.0 {
                    continue;
                }
                let surviving: f64 = inst.tunnels[0].tunnels[p]
                    .iter()
                    .zip(lambda[p].iter())
                    .filter(|(path, _)| path.alive(dead))
                    .map(|(_, &v)| sol.value(v))
                    .sum();
                let loss = 1.0 - surviving;
                if loss - sol.value(alpha[p]) - sol.value(s[p][q]) > 1e-7 {
                    let mut coeffs: Vec<(VarId, f64)> = vec![(s[p][q], 1.0), (alpha[p], 1.0)];
                    for (path, &v) in inst.tunnels[0].tunnels[p].iter().zip(lambda[p].iter()) {
                        if path.alive(dead) {
                            coeffs.push((v, 1.0));
                        }
                    }
                    rows.push(RowSpec::ge(coeffs, 1.0));
                }
            }
        }
        rows
    })
    .expect("Cvar-Flow-St LP failed");
    if !res.converged {
        eprintln!(
            "warning: Cvar-Flow-St lazy rows did not converge in {} rounds;              losses may be above the true optimum",
            res.rounds
        );
    }

    // Post-analysis: losses from the static split.
    let sol = res.solution;
    let mut loss = vec![vec![0.0; nq]; inst.num_flows()];
    for (q, dead) in dead_masks.iter().enumerate() {
        for p in 0..np {
            if inst.demands[0][p] <= 0.0 {
                continue;
            }
            let surviving: f64 = inst.tunnels[0].tunnels[p]
                .iter()
                .zip(lambda[p].iter())
                .filter(|(path, _)| path.alive(dead))
                .map(|(_, &v)| sol.value(v))
                .sum();
            loss[p][q] = clamp_loss(1.0 - surviving);
        }
    }
    SchemeResult::new("Cvar-Flow-St", loss)
}

/// `Cvar-Flow-Ad`: adaptive per-scenario routing, flow-level CVaR.
pub fn cvar_flow_ad(inst: &Instance, set: &ScenarioSet, opts: &CvarOptions) -> SchemeResult {
    assert_eq!(inst.num_classes(), 1, "CVaR schemes are single-class");
    let np = inst.num_pairs();
    let nq = set.scenarios.len();
    // Active scenario set: grow until the oracle is satisfied or capped.
    // Scenario 0 (all-alive) is always active.
    let mut active: Vec<usize> = vec![0];
    let mut alpha_vals = vec![0.0; np];

    for _round in 0..opts.max_active {
        let (alphas, _theta) = solve_ad_design(inst, set, opts.beta, &active);
        alpha_vals = alphas;
        // Oracle: find inactive scenarios that cannot keep every connected
        // flow within α_f.
        let mut violations: Vec<(f64, usize)> = Vec::new();
        for q in 0..nq {
            if active.contains(&q) {
                continue;
            }
            let t = scenario_excess(inst, &set.scenarios[q], &alpha_vals);
            if t > 1e-6 {
                violations.push((set.scenarios[q].prob * t, q));
            }
        }
        if violations.is_empty() {
            break;
        }
        violations.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        for &(_, q) in violations.iter().take(opts.per_round) {
            if active.len() < opts.max_active {
                active.push(q);
            }
        }
        if active.len() >= opts.max_active {
            // One final design solve with the full active set.
            let (alphas, _) = solve_ad_design(inst, set, opts.beta, &active);
            alpha_vals = alphas;
            break;
        }
    }

    // Post-analysis: best-response routing per scenario given α.
    let mut loss = vec![vec![0.0; nq]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let l = best_response_losses(inst, scen, &alpha_vals);
        for (p, &v) in l.iter().enumerate() {
            loss[p][q] = clamp_loss(v);
        }
    }
    SchemeResult::new("Cvar-Flow-Ad", loss)
}

/// Build and solve the Ad design LP over the active scenarios; returns the
/// per-flow VaR estimates α and the objective θ.
fn solve_ad_design(
    inst: &Instance,
    set: &ScenarioSet,
    beta: f64,
    active: &[usize],
) -> (Vec<f64>, f64) {
    let np = inst.num_pairs();
    let mut m = Model::new(Sense::Min);
    let theta_ub = 1.0 / (1.0 - beta) + 1.0;
    let theta = m.add_var("theta", 0.0, theta_ub, 1.0);
    let alpha: Vec<VarId> = (0..np).map(|p| m.add_var(&format!("a_{p}"), 0.0, 1.0, 0.0)).collect();
    // s variables only for active scenarios; inactive contribute zero,
    // which the activation oracle validates.
    let mut s: Vec<Vec<VarId>> = vec![Vec::new(); np];
    for p in 0..np {
        for &q in active {
            s[p].push(m.add_var(&format!("s_{p}_{q}"), 0.0, f64::INFINITY, 0.0));
        }
    }
    // Per-flow CVaR rows.
    for p in 0..np {
        if inst.demands[0][p] <= 0.0 {
            continue;
        }
        let mut coeffs: Vec<(VarId, f64)> = vec![(theta, 1.0), (alpha[p], -1.0)];
        for (ai, &q) in active.iter().enumerate() {
            coeffs.push((s[p][ai], -set.scenarios[q].prob / (1.0 - beta)));
        }
        m.add_row_ge(&coeffs, 0.0);
    }
    // Per-active-scenario routing blocks.
    for (ai, &q) in active.iter().enumerate() {
        let scen = &set.scenarios[q];
        let dead = scen.dead_mask();
        let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
        for p in 0..np {
            let d = inst.demands[0][p];
            if d <= 0.0 {
                continue;
            }
            let mut served: Vec<(VarId, f64)> = Vec::new();
            for path in inst.tunnels[0].tunnels[p].iter() {
                if !path.alive(&dead) {
                    continue;
                }
                let v = m.add_var(&format!("x_{p}_{q}"), 0.0, 1.0, 0.0);
                for a in inst.arc_ids(path) {
                    arc_terms[a].push((v, d));
                }
                served.push((v, 1.0));
            }
            if served.is_empty() {
                // Disconnected: loss 1 ⇒ s ≥ 1 − α.
                m.add_row_ge(&[(s[p][ai], 1.0), (alpha[p], 1.0)], 1.0);
                continue;
            }
            // Σ fractions ≤ 1 and the CVaR excess row.
            m.add_row_le(&served, 1.0);
            let mut coeffs = served;
            coeffs.push((s[p][ai], 1.0));
            coeffs.push((alpha[p], 1.0));
            m.add_row_ge(&coeffs, 1.0);
        }
        for (a, terms) in arc_terms.into_iter().enumerate() {
            if !terms.is_empty() {
                let cap = inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)];
                m.add_row_le(&terms, cap);
            }
        }
    }
    let sol = m.solve().expect("Cvar-Flow-Ad design LP failed");
    (
        alpha.iter().map(|&v| sol.value(v)).collect(),
        sol.value(theta),
    )
}

/// The smallest uniform excess `t` such that every connected flow can be
/// served to `(1 − α_f − t)` of its demand in `scen`.
fn scenario_excess(inst: &Instance, scen: &Scenario, alpha: &[f64]) -> f64 {
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Min);
    let t = alloc.model.add_var("t", 0.0, 1.0, 1.0);
    let mut any = false;
    for p in 0..inst.num_pairs() {
        let d = inst.demands[0][p];
        if d <= 0.0 || !alloc.pair_alive[0][p] {
            continue;
        }
        let target = (1.0 - alpha[p]).max(0.0);
        if target <= 0.0 {
            continue;
        }
        let mut coeffs = alloc.served_coeffs(0, p);
        coeffs.push((t, d));
        alloc.model.add_row_ge(&coeffs, target * d);
        any = true;
    }
    if !any {
        return 0.0;
    }
    alloc.model.solve().map(|s| s.value(t)).unwrap_or(1.0)
}

/// Best-response routing for post-analysis: minimize the worst excess over
/// `α_f`, then maximize total served.
fn best_response_losses(inst: &Instance, scen: &Scenario, alpha: &[f64]) -> Vec<f64> {
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Min);
    let np = inst.num_pairs();
    let t = alloc.model.add_var("t", 0.0, 1.0, 1.0);
    for p in 0..np {
        let d = inst.demands[0][p];
        if d <= 0.0 || !alloc.pair_alive[0][p] {
            continue;
        }
        let mut coeffs = alloc.served_coeffs(0, p);
        alloc.model.add_row_le(&coeffs, d);
        let target = (1.0 - alpha[p]).max(0.0);
        coeffs.push((t, d));
        alloc.model.add_row_ge(&coeffs, target * d);
    }
    let sol = alloc.model.solve().expect("best-response stage 1");
    let tstar = sol.value(t);
    alloc.model.set_obj(t, 0.0);
    alloc.model.set_bounds(t, 0.0, (tstar + 1e-9).min(1.0));
    // Maximize total served == minimize negative served.
    for p in 0..np {
        if !alloc.pair_alive[0][p] {
            continue;
        }
        for (v, _) in alloc.served_coeffs(0, p) {
            alloc.model.set_obj(v, -1.0);
        }
    }
    let sol2 = alloc.model.solve().expect("best-response stage 2");
    (0..np)
        .map(|p| {
            let d = inst.demands[0][p];
            if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[0][p] {
                1.0
            } else {
                alloc.loss_at(&sol2, 0, p)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::tests::{fig1_instance, fig1_scenarios};
    use flexile_metrics::{perc_loss, LossMatrix};

    #[test]
    fn st_percloss_conservative_on_fig1() {
        // Proposition 2: every CVaR strategy sees PercLoss ≥ ~0.48 on the
        // Fig. 1 triangle even though 0 is achievable.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let r = cvar_flow_st(&inst, &set, &CvarOptions::new(0.99));
        let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
        let pl = perc_loss(&m, &[0, 1], 0.99);
        assert!(pl >= 0.40, "Cvar-Flow-St PercLoss {pl} should be large");
    }

    #[test]
    fn ad_no_worse_than_st_on_fig1() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let st = cvar_flow_st(&inst, &set, &CvarOptions::new(0.99));
        let ad = cvar_flow_ad(&inst, &set, &CvarOptions::new(0.99));
        let mst = LossMatrix::new(st.loss.clone(), set.probs(), set.residual);
        let mad = LossMatrix::new(ad.loss.clone(), set.probs(), set.residual);
        let pst = perc_loss(&mst, &[0, 1], 0.99);
        let pad = perc_loss(&mad, &[0, 1], 0.99);
        assert!(pad <= pst + 1e-6, "Ad ({pad}) should not lose to St ({pst})");
    }

    #[test]
    fn scenario_excess_zero_when_alpha_one() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let t = scenario_excess(&inst, &set.scenarios[1], &[1.0, 1.0]);
        assert!(t < 1e-9);
    }

    #[test]
    fn best_response_all_alive_is_lossless() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let l = best_response_losses(&inst, &set.scenarios[0], &[0.0, 0.0]);
        assert!(l.iter().all(|&v| v < 1e-6), "{l:?}");
    }
}
