//! SWAN-Throughput and SWAN-Maxmin (§6).
//!
//! Both SWAN variants allocate per scenario with strict class priority:
//! higher-priority classes are allocated first and their tunnel usage is
//! subtracted from link capacity before lower classes run (unlike Flexile's
//! online phase, which re-optimizes routing jointly — §4.3).
//!
//! * **SWAN-Throughput** maximizes total served demand per class. As the
//!   paper notes (§6.2), this can starve unlucky flows entirely: on a path
//!   A-B-C it prefers one unit each of A-B and B-C over any A-C traffic.
//! * **SWAN-Maxmin** approximates max-min fairness per class by iterative
//!   water-filling: repeatedly maximize the common served fraction `t` of
//!   unfrozen pairs, then freeze the pairs that cannot exceed `t` (detected
//!   by a secondary total-throughput LP), until every pair is frozen or
//!   fully served. This mirrors SWAN's iterative approximation.

use crate::alloc::ScenAlloc;
use crate::types::{clamp_loss, SchemeResult};
use flexile_lp::Sense;
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_traffic::Instance;

/// SWAN-Throughput post-analysis.
pub fn swan_throughput(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    let mut loss = vec![vec![0.0; set.scenarios.len()]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let l = swan_throughput_scenario(inst, scen);
        for (f, &v) in l.iter().enumerate() {
            loss[f][q] = clamp_loss(v);
        }
    }
    SchemeResult::new("SWAN-Throughput", loss)
}

/// SWAN-Maxmin post-analysis.
pub fn swan_maxmin(inst: &Instance, set: &ScenarioSet) -> SchemeResult {
    let mut loss = vec![vec![0.0; set.scenarios.len()]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let l = swan_maxmin_scenario(inst, scen);
        for (f, &v) in l.iter().enumerate() {
            loss[f][q] = clamp_loss(v);
        }
    }
    SchemeResult::new("SWAN-Maxmin", loss)
}

/// Per-scenario SWAN-Throughput: classes in priority order, each maximizing
/// its own total served demand on the capacity left by higher classes.
pub fn swan_throughput_scenario(inst: &Instance, scen: &Scenario) -> Vec<f64> {
    per_class_sequential(inst, scen, |alloc, k| {
        // Maximize the class's total served demand.
        for p in 0..alloc.inst.num_pairs() {
            if !alloc.pair_alive[k][p] {
                continue;
            }
            let coeffs = alloc.served_coeffs(k, p);
            alloc.model.add_row_le(&coeffs, alloc.inst.demands[k][p]);
            for (v, _) in coeffs {
                alloc.model.set_obj(v, 1.0);
            }
        }
        let sol = alloc.model.solve().expect("SWAN-Throughput LP");
        (0..alloc.inst.num_pairs())
            .map(|p| alloc.served_at(&sol, k, p))
            .collect()
    })
}

/// Per-scenario SWAN-Maxmin: classes in priority order; within a class,
/// iterative water-filling on served fraction.
pub fn swan_maxmin_scenario(inst: &Instance, scen: &Scenario) -> Vec<f64> {
    per_class_sequential(inst, scen, maxmin_one_class)
}

/// Run `allocate(class)` for each class in priority order, reducing link
/// capacities by each class's usage before the next class runs. Returns
/// per-flow losses.
fn per_class_sequential<F>(inst: &Instance, scen: &Scenario, mut allocate: F) -> Vec<f64>
where
    F: FnMut(&mut ScenAlloc, usize) -> Vec<f64>,
{
    let mut losses = vec![0.0; inst.num_flows()];
    // Track residual capacity by accumulating a synthetic "used" scenario
    // capacity factor. We rebuild the skeleton per class with shrunken
    // factors.
    let mut scen_k = scen.clone();
    for k in 0..inst.num_classes() {
        let mut alloc = ScenAlloc::new(inst, &scen_k, Sense::Max);
        // Hide other classes' variables (they are rebuilt each round).
        for kk in 0..inst.num_classes() {
            if kk != k {
                for p in 0..inst.num_pairs() {
                    for &v in &alloc.x[kk][p] {
                        alloc.model.set_bounds(v, 0.0, 0.0);
                    }
                }
            }
        }
        let served = allocate(&mut alloc, k);
        for p in 0..inst.num_pairs() {
            let f = inst.flow_index(k, p);
            let d = inst.demands[k][p];
            losses[f] = if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[k][p] {
                1.0
            } else {
                clamp_loss(1.0 - served[p] / d)
            };
        }
        // Subtract the class's arc usage from the capacity factors. We
        // re-solve the final allocation to read tunnel-level usage.
        if k + 1 < inst.num_classes() {
            let usage = final_arc_usage(inst, &alloc, k, &served);
            for l in 0..inst.topo.num_links() {
                let cap = inst.topo.link(flexile_topo::LinkId(l as u32)).capacity;
                // The binding direction is whichever arc is more used.
                let used = usage[2 * l].max(usage[2 * l + 1]);
                let left = (scen_k.cap_factor[l] * cap - used).max(0.0);
                scen_k.cap_factor[l] = if cap > 0.0 { left / cap } else { 0.0 };
            }
        }
    }
    losses
}

/// Extract per-arc usage of class `k` by re-solving the skeleton with the
/// served amounts pinned (minimizing total hop-bandwidth for determinism).
fn final_arc_usage(inst: &Instance, alloc: &ScenAlloc, k: usize, served: &[f64]) -> Vec<f64> {
    let mut model = alloc.model.clone();
    for p in 0..inst.num_pairs() {
        if !alloc.pair_alive[k][p] {
            continue;
        }
        let coeffs = alloc.served_coeffs(k, p);
        // Pin the served amount (within tolerance).
        model.add_row_ge(&coeffs, served[p] - 1e-7);
        for (v, _) in coeffs {
            model.set_obj(v, 0.0);
        }
    }
    // Minimize total bandwidth-hops to get a canonical routing. The model
    // has Max sense, so minimizing hops means maximizing their negative.
    let mut m2 = model.clone();
    for p in 0..inst.num_pairs() {
        for (t, &v) in alloc.x[k][p].iter().enumerate() {
            let hops = (inst.tunnels[k].tunnels[p][t].len() as f64).max(1.0);
            m2.set_obj(v, -hops);
        }
    }
    let sol = match m2.solve() {
        Ok(s) => s,
        Err(_) => model.solve().expect("usage extraction LP"),
    };
    let mut usage = vec![0.0; inst.num_arcs()];
    for p in 0..inst.num_pairs() {
        for (t, &v) in alloc.x[k][p].iter().enumerate() {
            let amt = sol.value(v);
            if amt > 0.0 {
                for a in inst.arc_ids(&inst.tunnels[k].tunnels[p][t]) {
                    usage[a] += amt;
                }
            }
        }
    }
    usage
}

/// Iterative max-min water-filling for one class inside a prepared
/// skeleton. Returns per-pair served amounts.
fn maxmin_one_class(alloc: &mut ScenAlloc, k: usize) -> Vec<f64> {
    let np = alloc.inst.num_pairs();
    let demands = alloc.inst.demands[k].clone();
    // frozen[p] = Some(fraction) once the pair's share is finalized.
    let mut frozen: Vec<Option<f64>> = (0..np)
        .map(|p| {
            if demands[p] <= 0.0 || !alloc.pair_alive[k][p] {
                Some(0.0)
            } else {
                None
            }
        })
        .collect();

    // Demand caps once.
    for p in 0..np {
        if alloc.pair_alive[k][p] && demands[p] > 0.0 {
            let coeffs = alloc.served_coeffs(k, p);
            alloc.model.add_row_le(&coeffs, demands[p]);
        }
    }

    let t_var = alloc.model.add_var("t", 0.0, 1.0, 0.0);
    // Floor rows for every eligible pair: served - t*d >= (frozen? f*d : 0).
    // We add floor rows lazily per round because the floor target changes.
    let mut served_final = vec![0.0; np];
    for _round in 0..24 {
        let unfrozen: Vec<usize> = (0..np).filter(|&p| frozen[p].is_none()).collect();
        if unfrozen.is_empty() {
            break;
        }
        // Build this round's model copy with floors.
        let mut m = alloc.model.clone();
        m.set_obj(t_var, 1.0);
        for p in 0..np {
            match frozen[p] {
                Some(frac) if demands[p] > 0.0 && alloc.pair_alive[k][p] => {
                    let coeffs = alloc.served_coeffs(k, p);
                    m.add_row_ge(&coeffs, frac * demands[p] - 1e-9);
                }
                None => {
                    let mut coeffs = alloc.served_coeffs(k, p);
                    coeffs.push((t_var, -demands[p]));
                    m.add_row_ge(&coeffs, 0.0);
                }
                _ => {}
            }
        }
        let sol = m.solve().expect("maxmin t LP");
        let t = sol.value(t_var);
        if t >= 1.0 - 1e-9 {
            for &p in &unfrozen {
                frozen[p] = Some(1.0);
            }
            for p in 0..np {
                served_final[p] = frozen[p].unwrap_or(1.0) * demands[p];
            }
            break;
        }
        // Freeze detection: maximize total served with the floor at t; pairs
        // stuck at t are frozen there.
        let mut m2 = m.clone();
        m2.set_obj(t_var, 0.0);
        m2.set_bounds(t_var, (t - 1e-9).max(0.0), 1.0);
        for &p in &unfrozen {
            for (v, _) in alloc.served_coeffs(k, p) {
                m2.set_obj(v, 1.0);
            }
        }
        let sol2 = m2.solve().expect("maxmin freeze LP");
        let mut newly = 0;
        for &p in &unfrozen {
            let got = alloc.served_at(&sol2, k, p);
            served_final[p] = got;
            if got <= t * demands[p] + 1e-6 {
                frozen[p] = Some(t);
                newly += 1;
            }
        }
        if newly == 0 {
            // Safety: freeze everything at its current share.
            for &p in &unfrozen {
                frozen[p] = Some(served_final[p] / demands[p]);
            }
            break;
        }
    }
    // Any pair still unfrozen keeps its last observed share; frozen pairs
    // yield exactly their frozen share.
    for p in 0..np {
        if let Some(frac) = frozen[p] {
            served_final[p] = frac * demands[p];
        }
    }
    served_final
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions};
    use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
    use flexile_traffic::{ClassConfig, Instance};

    /// The §6.2 example: path A-B-C, flows AB, BC, AC of unit demand.
    fn abc_line() -> Instance {
        let topo = Topology::new("abc", 3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let pairs = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(2)),
        ];
        let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
        Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::single()],
            tunnels: vec![tunnels],
            demands: vec![vec![1.0, 1.0, 1.0]],
        }
    }

    fn all_alive(inst: &Instance) -> flexile_scenario::Scenario {
        let units = link_units(&inst.topo, &vec![0.01; inst.topo.num_links()]);
        enumerate_scenarios(
            &units,
            inst.topo.num_links(),
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 1, coverage_target: 2.0 },
        )
        .scenarios[0]
            .clone()
    }

    #[test]
    fn throughput_starves_the_long_flow() {
        // The paper's A-B-C example: maximizing throughput serves AB and BC
        // fully and gives AC nothing.
        let inst = abc_line();
        let scen = all_alive(&inst);
        let l = swan_throughput_scenario(&inst, &scen);
        assert!(l[0] < 1e-6 && l[1] < 1e-6, "short flows served: {l:?}");
        assert!((l[2] - 1.0).abs() < 1e-6, "long flow starved: {l:?}");
    }

    #[test]
    fn maxmin_shares_the_line() {
        // Max-min on A-B-C: all three flows get 0.5.
        let inst = abc_line();
        let scen = all_alive(&inst);
        let l = swan_maxmin_scenario(&inst, &scen);
        for (i, &v) in l.iter().enumerate() {
            assert!((v - 0.5).abs() < 1e-5, "flow {i} loss {v} != 0.5 ({l:?})");
        }
    }

    #[test]
    fn maxmin_fills_after_freezing() {
        // Star: hub 0 with leaves 1,2; capacities 1. Flows 1->2 (via hub)
        // and 1->0. Both share link 0-1: maxmin gives each 0.5; then flow
        // 1->0 cannot improve but 1->2... also bounded by 0-1. Use a
        // different asymmetry: flows 0->1 and 0->2 and 1->2.
        let topo = Topology::new("star", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))];
        let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
        let inst = Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::single()],
            tunnels: vec![tunnels],
            demands: vec![vec![2.0, 1.0]],
        };
        let scen = all_alive(&inst);
        let l = swan_maxmin_scenario(&inst, &scen);
        // Flow 1->2 has a private direct link: fully served. Flow 0->1 has
        // capacity 2 across 0-1 and 0-2-1... but 2-1 is used by flow 1->2
        // in the other direction only, so 0->1 can also use 0-2,2-1: served
        // 2.0 of demand 2.0.
        assert!(l[1] < 1e-5, "{l:?}");
        assert!(l[0] < 1e-5, "{l:?}");
    }

    #[test]
    fn two_class_priority_order() {
        // Single link, high demand in both classes: high priority wins.
        let topo = Topology::new("pair", 2, &[(0, 1, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1))];
        let hi = TunnelSet::build(&topo, &pairs, TunnelClass::HighPriority);
        let lo = TunnelSet::build(&topo, &pairs, TunnelClass::LowPriority);
        let inst = Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::interactive(), ClassConfig::elastic()],
            tunnels: vec![hi, lo],
            demands: vec![vec![0.8], vec![0.8]],
        };
        let scen = all_alive(&inst);
        let l = swan_maxmin_scenario(&inst, &scen);
        assert!(l[0] < 1e-5, "high priority fully served: {l:?}");
        // Low priority gets the residual 0.2 of its 0.8 demand: loss 0.75.
        assert!((l[1] - 0.75).abs() < 1e-4, "low priority squeezed: {l:?}");
    }
}
