//! Common result types for TE schemes.

/// Post-analysis output of a TE scheme over a scenario set: the loss of
/// every flow in every scenario, `loss[flow][scenario]`, with flows indexed
/// `class * num_pairs + pair` (see `flexile_traffic::Instance`).
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme name for reporting.
    pub name: String,
    /// `loss[f][q] ∈ [0, 1]`.
    pub loss: Vec<Vec<f64>>,
}

impl SchemeResult {
    /// Build with shape checks.
    pub fn new(name: &str, loss: Vec<Vec<f64>>) -> Self {
        let cols = loss.first().map_or(0, |r| r.len());
        assert!(loss.iter().all(|r| r.len() == cols), "ragged loss matrix");
        for r in &loss {
            for &v in r {
                debug_assert!((-1e-6..=1.0 + 1e-6).contains(&v), "loss {v} out of range");
            }
        }
        SchemeResult { name: name.to_string(), loss }
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.loss.len()
    }

    /// Number of scenarios.
    pub fn num_scenarios(&self) -> usize {
        self.loss.first().map_or(0, |r| r.len())
    }
}

/// Clamp a computed loss into `[0, 1]`, absorbing LP tolerance noise.
pub fn clamp_loss(l: f64) -> f64 {
    l.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_shape() {
        let r = SchemeResult::new("x", vec![vec![0.0, 0.5], vec![1.0, 0.25]]);
        assert_eq!(r.num_flows(), 2);
        assert_eq!(r.num_scenarios(), 2);
    }

    #[test]
    #[should_panic]
    fn ragged_rejected() {
        SchemeResult::new("x", vec![vec![0.0], vec![0.0, 1.0]]);
    }

    #[test]
    fn clamping() {
        assert_eq!(clamp_loss(-1e-9), 0.0);
        assert_eq!(clamp_loss(1.0 + 1e-9), 1.0);
        assert_eq!(clamp_loss(0.4), 0.4);
    }
}
