//! Teavar: CVaR-minimizing TE with static proportional routing (§2, §5).
//!
//! Teavar picks one static split of each pair's demand across its tunnels
//! (fractions `λ_{p,t}`, summing to 1) such that the no-failure state is
//! capacity-feasible. In a failure scenario the traffic on dead tunnels is
//! simply lost (the conservative availability semantics the paper's
//! Proposition-2 analysis of Fig. 3 uses), so pair `i`'s loss is
//! `1 − Σ_t λ_{i,t} y_{tq}`. The design minimizes the *scenario-level*
//! CVaR:
//!
//! ```text
//! min  α + 1/(1−β) Σ_q p_q s_q
//! s.t. s_q ≥ (1 − Σ_t λ_{i,t} y_{tq}) − α   ∀ i, q     (lazy)
//!      Σ_i Σ_{t ∋ arc} d_i λ_{i,t} ≤ c_arc              (intact network)
//!      Σ_t λ_{i,t} = 1,  λ ≥ 0,  s_q ≥ 0,  α ≥ 0
//! ```
//!
//! The `s_q` rows are generated lazily ([`flexile_lp::rowgen`]): only the
//! scenario/pair combinations that actually bind at the optimum are ever
//! materialized, which keeps the basis small even though the full model has
//! `O(|P|·|Q|)` rows — this is why our Teavar still "bundles all the
//! enumerated scenarios in a single problem" (the paper's phrase) without a
//! commercial solver.

use crate::types::{clamp_loss, SchemeResult};
use flexile_lp::{solve_with_rowgen, Model, RowGenOptions, RowSpec, Sense, VarId};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;

/// Teavar's designed routing: `split[p][t]` is the demand fraction of pair
/// `p` on tunnel `t`.
#[derive(Debug, Clone)]
pub struct TeavarDesign {
    /// Demand fractions per pair per tunnel.
    pub split: Vec<Vec<f64>>,
    /// The optimized CVaR value (design-time objective).
    pub cvar: f64,
}

/// Solve the Teavar design LP for a single-class instance at target `beta`.
///
/// Precondition (inherited from Teavar's formulation): the full demand must
/// be routable on the intact network — the per-pair split fractions sum to
/// exactly 1 under the capacity constraints, so an oversubscribed instance
/// (intact MLU > 1) makes the LP infeasible and this function panics.
pub fn teavar_design(inst: &Instance, set: &ScenarioSet, beta: f64) -> TeavarDesign {
    assert_eq!(inst.num_classes(), 1, "Teavar is a single-class scheme");
    let np = inst.num_pairs();
    let mut m = Model::new(Sense::Min);
    let alpha = m.add_var("alpha", 0.0, 1.0, 1.0);
    let s: Vec<VarId> = set
        .scenarios
        .iter()
        .enumerate()
        .map(|(q, scen)| m.add_var(&format!("s_{q}"), 0.0, f64::INFINITY, scen.prob / (1.0 - beta)))
        .collect();
    // Split fractions.
    let mut lambda: Vec<Vec<VarId>> = Vec::with_capacity(np);
    let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
    for p in 0..np {
        let tunnels = &inst.tunnels[0].tunnels[p];
        let d = inst.demands[0][p];
        let vars: Vec<VarId> = tunnels
            .iter()
            .enumerate()
            .map(|(t, path)| {
                let v = m.add_var(&format!("l_{p}_{t}"), 0.0, 1.0, 0.0);
                for a in inst.arc_ids(path) {
                    arc_terms[a].push((v, d));
                }
                v
            })
            .collect();
        if !vars.is_empty() && d > 0.0 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_row_eq(&coeffs, 1.0);
        }
        lambda.push(vars);
    }
    for (a, terms) in arc_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            m.add_row_le(&terms, inst.arc_capacity(a));
        }
    }

    // Tunnel liveness per scenario, reused by the oracle.
    let dead_masks: Vec<Vec<bool>> = set.scenarios.iter().map(|s| s.dead_mask()).collect();

    let opts = RowGenOptions { max_rounds: 300, rows_per_round: 50, ..Default::default() };
    let res = solve_with_rowgen(&mut m, &opts, |sol| {
        let mut rows = Vec::new();
        let a_val = sol.value(alpha);
        for (q, dead) in dead_masks.iter().enumerate() {
            let s_val = sol.value(s[q]);
            for p in 0..np {
                if inst.demands[0][p] <= 0.0 {
                    continue;
                }
                let surviving: f64 = inst.tunnels[0].tunnels[p]
                    .iter()
                    .zip(lambda[p].iter())
                    .filter(|(path, _)| path.alive(dead))
                    .map(|(_, &v)| sol.value(v))
                    .sum();
                let loss = 1.0 - surviving;
                if loss - a_val - s_val > 1e-7 {
                    // s_q + α + Σ_{t alive} λ_{p,t} ≥ 1
                    let mut coeffs: Vec<(VarId, f64)> = vec![(s[q], 1.0), (alpha, 1.0)];
                    for (path, &v) in inst.tunnels[0].tunnels[p].iter().zip(lambda[p].iter()) {
                        if path.alive(dead) {
                            coeffs.push((v, 1.0));
                        }
                    }
                    rows.push(RowSpec::ge(coeffs, 1.0));
                }
            }
        }
        rows
    })
    .expect("Teavar LP solve failed");
    if !res.converged {
        eprintln!(
            "warning: Teavar lazy rows did not converge in {} rounds",
            res.rounds
        );
    }

    let sol = res.solution;
    let split = lambda
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v)).collect())
        .collect();
    TeavarDesign { split, cvar: sol.objective }
}

/// Post-analysis of a Teavar design: the loss of every pair in every
/// scenario under the conservative surviving-allocation semantics.
pub fn teavar_losses(inst: &Instance, set: &ScenarioSet, design: &TeavarDesign) -> SchemeResult {
    let np = inst.num_pairs();
    let mut loss = vec![vec![0.0; set.scenarios.len()]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let dead = scen.dead_mask();
        for p in 0..np {
            if inst.demands[0][p] <= 0.0 {
                continue;
            }
            let surviving: f64 = inst.tunnels[0].tunnels[p]
                .iter()
                .zip(design.split[p].iter())
                .filter(|(path, _)| path.alive(&dead))
                .map(|(_, &f)| f)
                .sum();
            loss[p][q] = clamp_loss(1.0 - surviving);
        }
    }
    SchemeResult::new("Teavar", loss)
}

/// Design + post-analysis in one call.
pub fn teavar(inst: &Instance, set: &ScenarioSet, beta: f64) -> SchemeResult {
    let design = teavar_design(inst, set, beta);
    teavar_losses(inst, set, &design)
}

/// The *bundled* Teavar LP: every `s_q ≥ l_iq − α` row materialized up
/// front, exactly as the original Teavar formulation does ("its solving
/// time can be large since it bundles all the enumerated scenarios in a
/// single problem", §6.4). Functionally identical to [`teavar_design`];
/// used by the Fig. 15 timing comparison, where the lazy-row version would
/// understate the cost of the paper's formulation.
pub fn teavar_design_bundled(inst: &Instance, set: &ScenarioSet, beta: f64) -> TeavarDesign {
    assert_eq!(inst.num_classes(), 1, "Teavar is a single-class scheme");
    let np = inst.num_pairs();
    let mut m = Model::new(Sense::Min);
    let alpha = m.add_var("alpha", 0.0, 1.0, 1.0);
    let s: Vec<VarId> = set
        .scenarios
        .iter()
        .enumerate()
        .map(|(q, scen)| m.add_var(&format!("s_{q}"), 0.0, f64::INFINITY, scen.prob / (1.0 - beta)))
        .collect();
    let mut lambda: Vec<Vec<VarId>> = Vec::with_capacity(np);
    let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
    for p in 0..np {
        let d = inst.demands[0][p];
        let vars: Vec<VarId> = inst.tunnels[0].tunnels[p]
            .iter()
            .enumerate()
            .map(|(t, path)| {
                let v = m.add_var(&format!("l_{p}_{t}"), 0.0, 1.0, 0.0);
                for a in inst.arc_ids(path) {
                    arc_terms[a].push((v, d));
                }
                v
            })
            .collect();
        if !vars.is_empty() && d > 0.0 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_row_eq(&coeffs, 1.0);
        }
        lambda.push(vars);
    }
    for (a, terms) in arc_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            m.add_row_le(&terms, inst.arc_capacity(a));
        }
    }
    // Every (pair, scenario) CVaR row, up front.
    for (q, scen) in set.scenarios.iter().enumerate() {
        let dead = scen.dead_mask();
        for p in 0..np {
            if inst.demands[0][p] <= 0.0 {
                continue;
            }
            let mut coeffs: Vec<(VarId, f64)> = vec![(s[q], 1.0), (alpha, 1.0)];
            for (path, &v) in inst.tunnels[0].tunnels[p].iter().zip(lambda[p].iter()) {
                if path.alive(&dead) {
                    coeffs.push((v, 1.0));
                }
            }
            m.add_row_ge(&coeffs, 1.0);
        }
    }
    let sol = m
        .solve_with(&flexile_lp::SimplexOptions { max_iters: 5_000_000, ..Default::default() }, None)
        .expect("bundled Teavar LP failed");
    let split = lambda
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v)).collect())
        .collect();
    TeavarDesign { split, cvar: sol.objective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::tests::{fig1_instance, fig1_scenarios};
    use flexile_metrics::{perc_loss, LossMatrix};

    #[test]
    fn fig3_teavar_splits_across_two_paths() {
        // On the Fig. 1 triangle at β = 0.99, Teavar splits each flow
        // roughly half/half across its two disjoint paths (Fig. 3) and
        // both flows lose ~0.5 whenever one of their links fails.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let design = teavar_design(&inst, &set, 0.99);
        for p in 0..2 {
            let total: f64 = design.split[p].iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
            // No tunnel should carry everything: the CVaR design hedges.
            let max_frac = design.split[p].iter().cloned().fold(0.0, f64::max);
            assert!(max_frac < 0.95, "pair {p} not hedged: {:?}", design.split[p]);
        }
    }

    #[test]
    fn fig1_teavar_percloss_is_about_half() {
        // Proposition 2: Teavar's PercLoss at 99% on Fig. 1 is ≥ 48%,
        // although the optimum is 0.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let r = teavar(&inst, &set, 0.99);
        let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
        let pl = perc_loss(&m, &[0, 1], 0.99);
        assert!(pl >= 0.45, "Teavar PercLoss {pl} should be ~0.5");
        assert!(pl <= 0.55, "Teavar PercLoss {pl} should be ~0.5");
    }

    #[test]
    fn teavar_capacity_feasible_intact() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let design = teavar_design(&inst, &set, 0.99);
        // Reconstruct per-arc usage in the intact network.
        let mut usage = vec![0.0; inst.num_arcs()];
        for p in 0..2 {
            for (t, path) in inst.tunnels[0].tunnels[p].iter().enumerate() {
                for a in inst.arc_ids(path) {
                    usage[a] += design.split[p][t] * inst.demands[0][p];
                }
            }
        }
        for (a, &u) in usage.iter().enumerate() {
            assert!(u <= inst.arc_capacity(a) + 1e-6, "arc {a} overloaded: {u}");
        }
    }
}
