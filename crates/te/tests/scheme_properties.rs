//! Property-based invariants across TE schemes on randomized topologies.

use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_te::{mcf, swan};
use flexile_topo::{zoo, NodeId, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random single-class instance on a cycle+chords topology.
fn random_instance(nodes: usize, extra: usize, seed: u64) -> (Instance, ScenarioSet) {
    let max_extra = nodes * (nodes - 1) / 2 - nodes;
    let topo = zoo::generate("prop", nodes, nodes + extra.min(max_extra), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    // A handful of random pairs with random demands relative to capacity.
    let mut pairs = Vec::new();
    let mut demands = Vec::new();
    for _ in 0..5 {
        let s = rng.random_range(0..nodes) as u32;
        let mut d = rng.random_range(0..nodes) as u32;
        if s == d {
            d = (d + 1) % nodes as u32;
        }
        pairs.push((NodeId(s), NodeId(d)));
        demands.push(rng.random_range(100.0..900.0));
    }
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let probs: Vec<f64> = (0..topo.num_links()).map(|_| rng.random_range(0.001..0.02)).collect();
    let units = link_units(&topo, &probs);
    let nl = topo.num_links();
    let inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![demands],
    };
    let set = enumerate_scenarios(
        &units,
        nl,
        &EnumOptions { prob_cutoff: 1e-5, max_scenarios: 10, coverage_target: 1.1 },
    );
    (inst, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ScenBest's worst connected-flow loss is a lower bound for every
    /// other scheme in the same scenario (it is the per-scenario optimum).
    #[test]
    fn scen_best_is_per_scenario_optimal(
        nodes in 5usize..9,
        extra in 1usize..5,
        seed in 0u64..200,
    ) {
        let (inst, set) = random_instance(nodes, extra, seed);
        for scen in set.scenarios.iter().take(4) {
            let best = mcf::scen_best_scenario(&inst, scen, true);
            let maxmin = swan::swan_maxmin_scenario(&inst, scen);
            let dead = scen.dead_mask();
            let worst_best = (0..inst.num_pairs())
                .filter(|&p| inst.tunnels[0].pair_alive(p, &dead))
                .map(|p| best[p])
                .fold(0.0f64, f64::max);
            let worst_maxmin = (0..inst.num_pairs())
                .filter(|&p| inst.tunnels[0].pair_alive(p, &dead))
                .map(|p| maxmin[p])
                .fold(0.0f64, f64::max);
            prop_assert!(
                worst_best <= worst_maxmin + 1e-5,
                "ScenBest {worst_best} beaten by SWAN-Maxmin {worst_maxmin}"
            );
        }
    }

    /// SWAN-Throughput serves at least as much total demand as SWAN-Maxmin
    /// (fairness costs throughput, never gains it).
    #[test]
    fn throughput_dominates_maxmin_in_volume(
        nodes in 5usize..9,
        extra in 1usize..5,
        seed in 0u64..200,
    ) {
        let (inst, set) = random_instance(nodes, extra, seed);
        let scen = &set.scenarios[0];
        let thr = swan::swan_throughput_scenario(&inst, scen);
        let mm = swan::swan_maxmin_scenario(&inst, scen);
        let served = |losses: &[f64]| -> f64 {
            (0..inst.num_pairs())
                .map(|p| (1.0 - losses[p]) * inst.demands[0][p])
                .sum()
        };
        prop_assert!(
            served(&thr) + 1e-4 >= served(&mm),
            "throughput {} < maxmin {}",
            served(&thr),
            served(&mm)
        );
    }

    /// All schemes produce losses in [0,1] with 0 for zero-demand flows.
    #[test]
    fn losses_are_well_formed(
        nodes in 5usize..8,
        extra in 1usize..4,
        seed in 0u64..100,
    ) {
        let (inst, set) = random_instance(nodes, extra, seed);
        for r in [
            mcf::smore(&inst, &set),
            swan::swan_maxmin(&inst, &set),
            swan::swan_throughput(&inst, &set),
        ] {
            for row in &r.loss {
                for &l in row {
                    prop_assert!((0.0..=1.0).contains(&l), "{}: loss {l}", r.name);
                }
            }
        }
    }
}
