//! Scenario-solve pool acceptance tests:
//!
//! * **Scheduler determinism** — with the per-scenario pool, each
//!   scenario's warm-start chain depends only on its own solve history, so
//!   the decomposition output (penalty, criticality sets, loss matrix) is
//!   bit-identical across thread counts and across repeated runs.
//! * **Warm-vs-cold equivalence** — on a multi-iteration criticality trace,
//!   every warm-restarted subproblem solve agrees with a cold solve of the
//!   same LP to ≤ 1e-9 in the objective and in the duals feeding the
//!   Benders cut.
//! * **Telemetry** — the pool emits the `flexile.scenario_warm_hit/miss`,
//!   `flexile.dual_restart` counters and the `flexile.subproblem_wait`
//!   histogram, and stays purely observational.
//!
//! The obs sink is process-global; tests that toggle it serialize on a
//! mutex.

use flexile_core::subproblem::SubproblemTemplate;
use flexile_core::{solve_flexile, FlexileDesign, FlexileOptions, PoolPolicy};
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use std::sync::Mutex;

static SINK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// The paper's Fig. 1 triangle with the explicit 99% requirement.
fn fig1_setup() -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    inst.classes[0].beta = 0.99;
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

/// A small-caps Sprint instance (Table 2 topology): real topology, trimmed
/// pair/scenario counts so the test stays in tier-1 time budgets. The
/// explicit β = 0.99 sits meaningfully below the max-feasible target, so
/// the master has slack to shed criticality and the decomposition actually
/// iterates (re-solving scenarios warm) instead of accepting the starting
/// heuristic.
fn sprint_setup() -> (Instance, ScenarioSet) {
    let topo = flexile_topo::topology_by_name("Sprint").expect("Sprint is in the zoo");
    let probs = flexile_scenario::link_failure_probs(
        topo.num_links(),
        flexile_scenario::weibull::DEFAULT_SHAPE,
        flexile_scenario::weibull::DEFAULT_MEDIAN,
        42,
    );
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-6, max_scenarios: 12, coverage_target: 0.9999 },
    );
    let mut inst = Instance::single_class(topo, 7, 0.95, Some(6));
    inst.classes[0].beta = 0.99;
    (inst, set)
}

fn design_bits(d: &FlexileDesign) -> (u64, Vec<Vec<bool>>, Vec<u64>, Vec<u64>) {
    (
        d.penalty.to_bits(),
        d.critical.clone(),
        d.alpha.iter().map(|v| v.to_bits()).collect(),
        d.offline_loss.iter().flatten().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn pool_output_identical_across_thread_counts_fig1() {
    let (inst, set) = fig1_setup();
    let mut reference = None;
    for threads in [1, 2, 8] {
        let opts = FlexileOptions { threads, ..Default::default() };
        let d = design_bits(&solve_flexile(&inst, &set, &opts));
        match &reference {
            None => reference = Some(d),
            Some(r) => assert_eq!(r, &d, "fig1 output diverged at threads={threads}"),
        }
    }
}

#[test]
fn pool_output_identical_across_thread_counts_sprint() {
    let (inst, set) = sprint_setup();
    let mut reference = None;
    for threads in [1, 2, 8] {
        let opts = FlexileOptions { threads, max_iterations: 3, ..Default::default() };
        let d = design_bits(&solve_flexile(&inst, &set, &opts));
        match &reference {
            None => reference = Some(d),
            Some(r) => assert_eq!(r, &d, "Sprint output diverged at threads={threads}"),
        }
    }
}

#[test]
fn pool_output_identical_across_repeated_runs() {
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { threads: 8, max_iterations: 3, ..Default::default() };
    let first = design_bits(&solve_flexile(&inst, &set, &opts));
    let second = design_bits(&solve_flexile(&inst, &set, &opts));
    assert_eq!(first, second, "work-stealing run must be reproducible");
}

#[test]
fn gamma_variant_deterministic_across_threads() {
    // The per-scenario pool also caches the γ-variant templates; determinism
    // must hold there too.
    let (inst, set) = fig1_setup();
    let mut reference = None;
    for threads in [1, 2, 8] {
        let opts = FlexileOptions { threads, gamma: Some(0.2), ..Default::default() };
        let d = design_bits(&solve_flexile(&inst, &set, &opts));
        match &reference {
            None => reference = Some(d),
            Some(r) => assert_eq!(r, &d, "γ output diverged at threads={threads}"),
        }
    }
}

/// Multi-iteration criticality trace for one instance: start from
/// all-critical, then flip alternating flows off, restore, then drop the
/// first half — exercising exactly the RHS churn the decomposition
/// produces across iterations.
fn z_trace(nf: usize) -> Vec<Vec<bool>> {
    vec![
        vec![true; nf],
        (0..nf).map(|f| f % 2 == 0).collect(),
        vec![true; nf],
        (0..nf).map(|f| f >= nf / 2).collect(),
    ]
}

#[test]
fn warm_restart_matches_cold_solves() {
    let (inst, set) = sprint_setup();
    let nf = inst.num_flows();
    let trace = z_trace(nf);
    let mut warm_used = 0usize;
    let mut dual_restarts = 0usize;
    for scen in set.scenarios.iter() {
        let cap_arc: Vec<f64> = (0..inst.num_arcs())
            .map(|a| inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)])
            .collect();
        let zf: Vec<Vec<f64>> = trace
            .iter()
            .map(|z| z.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect())
            .collect();
        // One persistent template carries its basis through the whole trace;
        // the cold reference rebuilds from scratch every step.
        let mut warm_tmpl = SubproblemTemplate::for_demand_factor(&inst, None, scen.demand_factor);
        let mut warm_sols = Vec::new();
        let mut cold_sols = Vec::new();
        for z in &trace {
            let (warm_sol, stats) = warm_tmpl
                .solve_with_stats(&inst, scen, z)
                .expect("warm solve");
            let mut cold_tmpl =
                SubproblemTemplate::for_demand_factor(&inst, None, scen.demand_factor);
            let cold_sol = cold_tmpl.solve(&inst, scen, z).expect("cold solve");
            if stats.warm_hit {
                warm_used += 1;
            }
            if stats.dual_restart {
                dual_restarts += 1;
            }
            assert!(
                (warm_sol.value - cold_sol.value).abs() <= 1e-9,
                "objective diverged: warm {} vs cold {}",
                warm_sol.value,
                cold_sol.value
            );
            warm_sols.push(warm_sol);
            cold_sols.push(cold_sol);
        }
        // The duals feeding the Benders cut: under degeneracy the optimal
        // dual vector is not unique, so equivalence is asserted on the cut
        // *function* — each cut (warm or cold) must lower-bound the true
        // subproblem value at every point of the trace to ≤ 1e-9, and be
        // exact at its own generation point (strong duality).
        for (t, (ws, cs)) in warm_sols.iter().zip(cold_sols.iter()).enumerate() {
            assert!(
                (ws.cut.eval(&zf[t], &cap_arc) - ws.value).abs() <= 1e-9,
                "warm cut not tight at its generation point"
            );
            for (s, cs2) in cold_sols.iter().enumerate() {
                let wb = ws.cut.eval(&zf[s], &cap_arc);
                assert!(
                    wb <= cs2.value + 1e-9,
                    "warm cut from step {t} overestimates step {s}: {wb} > {}",
                    cs2.value
                );
                let cb = cs.cut.eval(&zf[s], &cap_arc);
                assert!(
                    cb <= warm_sols[s].value + 1e-9,
                    "cold cut from step {t} overestimates step {s}: {cb} > {}",
                    warm_sols[s].value
                );
            }
        }
    }
    assert!(warm_used > 0, "the trace must actually exercise warm restarts");
    assert!(dual_restarts > 0, "re-tightened criticality must go through the dual simplex");
}

#[test]
fn pool_emits_warm_restart_counters() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { threads: 4, max_iterations: 3, ..Default::default() };

    let plain = solve_flexile(&inst, &set, &opts);

    flexile_obs::enable();
    let traced = solve_flexile(&inst, &set, &opts);
    flexile_obs::disable();
    let t = flexile_obs::drain();

    // Counters are observational: instrumented output is bit-identical.
    assert_eq!(design_bits(&plain), design_bits(&traced));

    let counter = |name: &str| t.counters.get(name).copied().unwrap_or(0);
    let from_stats =
        |f: fn(&flexile_core::IterationStat) -> usize| -> u64 {
            traced.iterations.iter().map(|s| f(s) as u64).sum()
        };
    // Iteration 1 solves everything cold; iterations 2+ must reuse bases.
    assert!(traced.iterations.len() >= 2, "setup must produce a multi-iteration run");
    assert!(counter("flexile.scenario_warm_miss") > 0, "first iteration is cold");
    assert!(counter("flexile.scenario_warm_hit") > 0, "later iterations must warm-restart");
    assert!(counter("flexile.dual_restart") > 0, "criticality churn must dual-restart");
    assert_eq!(counter("flexile.scenario_warm_hit"), from_stats(|s| s.warm_hits));
    assert_eq!(counter("flexile.dual_restart"), from_stats(|s| s.dual_restarts));
    assert!(
        from_stats(|s| s.lp_iterations) > 0,
        "iteration stats must account simplex work"
    );
    let wait = t.hists.get("flexile.subproblem_wait").expect("wait histogram");
    // One observation per worker per dispatched iteration.
    assert!(wait.count() as usize >= traced.iterations.len());
}

#[test]
fn batched_pool_bit_identical_to_scalar() {
    // The tentpole invariant of the batched dispatch: any batch width —
    // including 0/1, i.e. the scalar pool — and any thread count produce
    // the same design, bit for bit. Widths beyond the scenario count are
    // clamped by grouping, so 16 also covers the "one unit per epoch" case.
    let _g = exclusive();
    for (name, (inst, set)) in [("fig1", fig1_setup()), ("sprint", sprint_setup())] {
        let mut reference = None;
        for threads in [1usize, 8] {
            for batch_width in [0usize, 1, 4, 16] {
                let opts =
                    FlexileOptions { threads, batch_width, max_iterations: 3, ..Default::default() };
                let d = design_bits(&solve_flexile(&inst, &set, &opts));
                match &reference {
                    None => reference = Some(d),
                    Some(r) => assert_eq!(
                        r, &d,
                        "{name}: diverged at threads={threads} batch_width={batch_width}"
                    ),
                }
            }
        }
        // The batched runs must actually exercise the batch kernel, and the
        // batch counters must be thread-count independent (they are gated by
        // the deterministic perf harness).
        let mut counters = None;
        for threads in [1usize, 8] {
            flexile_obs::enable();
            let opts =
                FlexileOptions { threads, batch_width: 16, max_iterations: 3, ..Default::default() };
            let _ = solve_flexile(&inst, &set, &opts);
            flexile_obs::disable();
            let t = flexile_obs::drain();
            let counter = |n: &str| t.counters.get(n).copied().unwrap_or(0);
            let c = (
                counter("flexile.batch_dispatch"),
                counter("lp.batch_solves"),
                counter("lp.batch_divergences"),
            );
            assert!(c.0 > 0, "{name}: batch dispatch never fired at threads={threads}");
            assert!(c.1 > 0, "{name}: lp batch kernel never invoked at threads={threads}");
            match &counters {
                None => counters = Some(c),
                Some(r) => assert_eq!(
                    r, &c,
                    "{name}: batch counters diverged across thread counts"
                ),
            }
        }
    }
}

#[test]
fn legacy_and_cold_policies_still_solve() {
    let (inst, set) = fig1_setup();
    for pool in [PoolPolicy::LegacyStriped, PoolPolicy::Cold] {
        let opts = FlexileOptions { pool, ..Default::default() };
        let design = solve_flexile(&inst, &set, &opts);
        assert!(
            design.penalty < 1e-6,
            "{pool:?} should still reach PercLoss 0, got {}",
            design.penalty
        );
    }
}
