//! Wire-frame codec robustness, mirroring the checkpoint corruption
//! matrix (tests/checkpoint.rs) for the distributed protocol:
//!
//! * **Round-trip** — `encode_frame ∘ decode_frame` is the identity on
//!   arbitrary frames of every tag. Several payload types (`Instance`,
//!   `ScenarioSet`) deliberately do not implement `PartialEq`, so identity
//!   is asserted as re-encoded byte equality — strictly stronger than
//!   structural equality for an injective encoder.
//! * **Corruption rejection** — any single bit flip (header *or* payload),
//!   any truncation, a version bump, bad magic, and trailing garbage all
//!   yield a typed [`CheckpointError`], never a panic or silent garbage.
//!   (FNV-1a's per-byte update is bijective in the running state, so a
//!   same-length payload differing in any byte always changes the
//!   checksum.)
//! * **Hostile lengths** — a huge outer length prefix, and a huge *inner*
//!   vector length with a recomputed (valid) checksum, are rejected by
//!   remaining-bytes validation before any allocation.
//! * **Streams** — duplicated and interleaved frames in one byte stream
//!   each parse independently; a frame boundary never leaks state into the
//!   next frame.

use flexile_core::dist::frame::{
    decode_frame, encode_frame, Frame, Hello, Outcome, WireKnobs, WireProblem, FRAME_HEADER_LEN,
    FRAME_VERSION, MAX_FRAME_LEN,
};
use flexile_core::subproblem::Cut;
use flexile_core::CheckpointError;
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions};
use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use proptest::prelude::*;

/// Splitmix64 filler, same scheme as tests/checkpoint.rs.
struct Mix(u64);

impl Mix {
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        match self.u64() % 8 {
            0 => f64::INFINITY,
            1 => 0.0,
            2 => -(self.u64() as f64) / 1e6,
            _ => (self.u64() >> 11) as f64 / (1u64 << 53) as f64,
        }
    }
    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }
    fn f64s(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.f64()).collect()
    }
    fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.bool()).collect()
    }
    fn cut(&mut self, nf: usize, na: usize) -> Cut {
        Cut { w: self.f64s(nf), u: self.f64s(na), d_const: self.f64() }
    }
}

/// A small but structurally complete problem (the Fig. 1 triangle) with
/// Mix-perturbed demands, satisfying every shape check in the decoder.
fn arb_problem(m: &mut Mix) -> WireProblem {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0 + (m.u64() % 7) as f64 * 0.25, 1.0]],
    };
    inst.classes[0].beta = 0.99;
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    let nq = set.scenarios.len();
    let nf = inst.num_flows();
    let loss_ub =
        if m.bool() { Some((0..nq).map(|_| m.f64s(nf)).collect()) } else { None };
    WireProblem { inst, set, loss_ub }
}

fn arb_outcome(m: &mut Mix, nf: usize, na: usize) -> Outcome {
    match m.u64() % 3 {
        0 => Outcome::Solved {
            value: m.f64(),
            alpha: m.f64s(2),
            loss: m.f64s(nf),
            cut: m.cut(nf, na),
            warm_hit: m.bool(),
            dual_restart: m.bool(),
            lp_iterations: m.u64() % 10_000,
            watchdog_restart: m.bool(),
            chain_reset: m.bool(),
        },
        1 => Outcome::Poisoned { attempts: (m.u64() % 4) as u32 + 1, message: "boom".into() },
        _ => Outcome::Failed { message: "LP blew up".into() },
    }
}

/// One arbitrary frame of the given tag (0..=9), shaped like real traffic.
fn arb_frame(seed: u64, tag: u64) -> Frame {
    let mut m = Mix(seed);
    let nf = 1 + (m.u64() % 6) as usize;
    let na = 1 + (m.u64() % 5) as usize;
    match tag {
        0 => Frame::Join { slot: m.u64() % 64 },
        1 => {
            let problem = arb_problem(&mut m);
            Frame::Hello(Box::new(Hello {
                problem_parts: std::array::from_fn(|_| m.u64()),
                options_parts: std::array::from_fn(|_| m.u64()),
                problem,
                knobs: WireKnobs {
                    max_iterations: m.u64() % 100,
                    prune: m.bool(),
                    gamma: if m.bool() { Some(m.f64()) } else { None },
                    hamming_limit: m.u64() % 1000,
                    exact_threshold: m.u64() % 1000,
                    pool: m.u64() % 3,
                    basis_residency: m.u64() % 4096,
                    batch_width: 1 + m.u64() % 64,
                    watchdog_millis: if m.bool() { Some(m.u64() % 10_000) } else { None },
                    heartbeat_millis: 1 + m.u64() % 1000,
                },
            }))
        }
        2 => Frame::HelloAck,
        3 => Frame::HelloReject { component: "batch_width".into() },
        4 => Frame::Assign {
            epoch: m.u64(),
            iteration: m.u64() % 100,
            scenario: m.u64() % 64,
            col: m.bits(nf),
            chain: (0..m.u64() % 4).map(|_| m.bits(nf)).collect(),
        },
        5 => {
            let outcome = arb_outcome(&mut m, nf, na);
            Frame::Result {
                epoch: m.u64(),
                iteration: m.u64() % 100,
                scenario: m.u64() % 64,
                outcome,
            }
        }
        6 => Frame::Retire { scenario: m.u64() % 64 },
        7 => Frame::IterSync {
            iteration: m.u64() % 100,
            cuts: (0..m.u64() % 3).map(|q| (q, m.cut(nf, na))).collect(),
            penalty: m.f64(),
            z: (0..nf).map(|_| m.bits(4)).collect(),
        },
        8 => Frame::Heartbeat { seq: m.u64() },
        _ => Frame::Shutdown,
    }
}

/// Reference FNV-1a-64 (matches the codec's checksum), for re-validating
/// deliberately crafted payloads.
fn fnv64_ref(bs: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bs {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_is_identity(seed in 0u64..u64::MAX, tag in 0u64..10) {
        let frame = arb_frame(seed, tag);
        let blob = encode_frame(&frame);
        let back = decode_frame(&blob).expect("round-trip decode");
        // Hello carries types without PartialEq; byte equality of the
        // re-encoding is the identity check.
        prop_assert_eq!(encode_frame(&back), blob, "re-encode diverged for tag {}", tag);
    }

    #[test]
    fn any_bit_flip_is_rejected(seed in 0u64..u64::MAX, tag in 0u64..10, flip in 0u64..u64::MAX) {
        let frame = arb_frame(seed, tag);
        let mut blob = encode_frame(&frame);
        let bit = (flip % (blob.len() as u64 * 8)) as usize;
        blob[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            decode_frame(&blob).is_err(),
            "bit {} flip in a tag-{} frame decoded", bit, tag
        );
    }

    #[test]
    fn any_truncation_is_rejected(seed in 0u64..u64::MAX, tag in 0u64..10, cut_at in 0u64..u64::MAX) {
        let frame = arb_frame(seed, tag);
        let blob = encode_frame(&frame);
        let keep = (cut_at % blob.len() as u64) as usize;
        prop_assert!(decode_frame(&blob[..keep]).is_err(), "prefix of {} bytes decoded", keep);
    }

    #[test]
    fn trailing_garbage_is_rejected(seed in 0u64..u64::MAX, tag in 0u64..10) {
        let frame = arb_frame(seed, tag);
        let mut blob = encode_frame(&frame);
        blob.push(0);
        prop_assert_eq!(
            decode_frame(&blob).err(),
            Some(CheckpointError::Malformed("trailing bytes after payload"))
        );
    }

    #[test]
    fn duplicated_and_interleaved_streams_parse_independently(
        sa in 0u64..u64::MAX,
        sb in 0u64..u64::MAX,
        ta in 0u64..10,
        tb in 0u64..10,
    ) {
        // Two logical senders' frames interleaved (and the first
        // duplicated) in one byte stream: each frame must parse on its own
        // boundaries, unaffected by what came before.
        let a = encode_frame(&arb_frame(sa, ta));
        let b = encode_frame(&arb_frame(sb, tb));
        let mut stream = Vec::new();
        for part in [&a, &b, &a, &b, &a] {
            stream.extend_from_slice(part);
        }
        let mut off = 0usize;
        let mut images: Vec<&[u8]> = Vec::new();
        while off < stream.len() {
            let plen = u64::from_le_bytes(stream[off + 12..off + 20].try_into().unwrap()) as usize;
            let end = off + FRAME_HEADER_LEN + plen;
            images.push(&stream[off..end]);
            off = end;
        }
        prop_assert_eq!(images.len(), 5);
        for (i, img) in images.iter().enumerate() {
            let expect = if i % 2 == 0 { &a } else { &b };
            let back = decode_frame(img).expect("stream frame decodes");
            prop_assert_eq!(&encode_frame(&back), expect, "frame {} diverged", i);
        }
    }
}

#[test]
fn version_bump_is_refused() {
    let mut blob = encode_frame(&arb_frame(11, 4));
    let v = FRAME_VERSION + 1;
    blob[8..12].copy_from_slice(&v.to_le_bytes());
    assert_eq!(
        decode_frame(&blob).err(),
        Some(CheckpointError::VersionMismatch { found: v, expected: FRAME_VERSION })
    );
}

#[test]
fn bad_magic_is_refused() {
    let mut blob = encode_frame(&arb_frame(12, 5));
    blob[0] = b'X';
    assert_eq!(decode_frame(&blob).err(), Some(CheckpointError::BadMagic));
    assert!(decode_frame(b"").is_err());
    assert!(decode_frame(b"FLX").is_err());
}

#[test]
fn hostile_outer_length_does_not_allocate() {
    // A header claiming a 2^60-byte payload must be refused by the
    // MAX_FRAME_LEN guard before any buffer is sized from it.
    let mut blob = encode_frame(&arb_frame(13, 4));
    blob[12..20].copy_from_slice(&(1u64 << 60).to_le_bytes());
    assert_eq!(decode_frame(&blob).err(), Some(CheckpointError::Malformed("frame length exceeds limit")));
    // Just past the limit is refused the same way.
    blob[12..20].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    assert_eq!(decode_frame(&blob).err(), Some(CheckpointError::Malformed("frame length exceeds limit")));
}

#[test]
fn hostile_inner_length_does_not_allocate() {
    // An Assign whose *chain count* field claims 2^60 entries, with the
    // outer header and checksum recomputed to be valid — only the
    // remaining-bytes validation inside the payload decoder can object.
    let frame = Frame::Assign {
        epoch: 1,
        iteration: 2,
        scenario: 3,
        col: vec![true, false, true],
        chain: Vec::new(),
    };
    let blob = encode_frame(&frame);
    // Payload layout: tag, epoch, iteration, scenario (4 u64s), then the
    // col bits vector (u64 count + 1 bit-packed byte for 3 bools), then
    // the chain count u64.
    let mut payload = blob[FRAME_HEADER_LEN..].to_vec();
    let chain_count_off = 4 * 8 + 8 + 1;
    assert_eq!(payload.len(), chain_count_off + 8, "layout drifted; fix the offset");
    payload[chain_count_off..chain_count_off + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    let mut hostile = blob[..12].to_vec();
    hostile.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    hostile.extend_from_slice(&fnv64_ref(&payload).to_le_bytes());
    hostile.extend_from_slice(&payload);
    assert!(decode_frame(&hostile).is_err(), "hostile inner length accepted");
}
