//! End-to-end telemetry for the decomposition and the online controller,
//! on the Sprint topology (the acceptance scenario of the observability
//! milestone):
//!
//! * a decomposition run with the sink enabled produces a Chrome-trace
//!   file and a JSONL stream whose per-iteration `flexile.bound_gap`
//!   events are monotone non-increasing in the upper bound;
//! * with the sink disabled, the design is bit-identical to the
//!   instrumented run (instrumentation is purely observational);
//! * online degradation paths emit `online.degradation` events.
//!
//! The sink is process-global; tests in this binary serialize on a mutex.

use flexile_core::{solve_flexile, FlexileOptions};
use flexile_lp::fault::{self, FaultInjector, FaultKind};
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_traffic::Instance;
use std::sync::Mutex;

static SINK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// A small-caps Sprint instance: real topology, trimmed pair/scenario
/// counts so the test stays in tier-1 time budgets.
fn sprint_setup() -> (Instance, ScenarioSet) {
    let topo = flexile_topo::topology_by_name("Sprint").expect("Sprint is in the zoo");
    let probs = flexile_scenario::link_failure_probs(
        topo.num_links(),
        flexile_scenario::weibull::DEFAULT_SHAPE,
        flexile_scenario::weibull::DEFAULT_MEDIAN,
        42,
    );
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-6, max_scenarios: 12, coverage_target: 0.9999 },
    );
    // High target MLU keeps failure scenarios lossy, so the decomposition
    // actually emits cuts instead of terminating on all-perfect scenarios.
    let inst = Instance::single_class(topo, 7, 0.95, Some(6));
    (inst, set)
}

fn design_bits(d: &flexile_core::FlexileDesign) -> (Vec<u64>, u64, Vec<Vec<bool>>, Vec<u64>) {
    (
        d.alpha.iter().map(|v| v.to_bits()).collect(),
        d.penalty.to_bits(),
        d.critical.clone(),
        d.offline_loss.iter().flatten().map(|v| v.to_bits()).collect(),
    )
}

/// Pull `"key":<number>` out of a JSONL line (no full parser needed here;
/// well-formedness is covered by the obs crate's own tests).
fn num_in_line(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn sprint_decomposition_trace_and_bit_identity() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 2, threads: 4, ..Default::default() };

    // Disabled run IS the uninstrumented baseline.
    let plain = solve_flexile(&inst, &set, &opts);
    assert!(flexile_obs::drain().is_empty(), "disabled mode must not buffer");

    flexile_obs::enable();
    let traced = solve_flexile(&inst, &set, &opts);
    flexile_obs::disable();
    let t = flexile_obs::drain();

    // Bit-identity: the sink never perturbs solver arithmetic.
    assert_eq!(design_bits(&plain), design_bits(&traced));

    // Per-iteration bound-gap events, monotone non-increasing upper bound.
    let uppers: Vec<f64> = t
        .events_named("flexile.bound_gap")
        .map(|e| e.num_field("upper").expect("bound_gap has upper"))
        .collect();
    assert_eq!(uppers.len(), traced.iterations.len(), "one bound_gap per iteration");
    for (e, stat) in t.events_named("flexile.bound_gap").zip(traced.iterations.iter()) {
        assert_eq!(e.num_field("iteration"), Some(stat.iteration as f64));
        assert_eq!(e.num_field("upper"), Some(stat.penalty));
    }
    assert!(
        uppers.windows(2).all(|w| w[1] <= w[0] + 1e-12),
        "upper bound must be monotone non-increasing: {uppers:?}"
    );

    // Same check against the exported JSONL stream (what CI validates).
    let jsonl = t.to_jsonl();
    let stream_uppers: Vec<f64> = jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"flexile.bound_gap\""))
        .map(|l| num_in_line(l, "upper").expect("upper field in JSONL"))
        .collect();
    assert_eq!(stream_uppers.len(), uppers.len());
    assert!(stream_uppers.windows(2).all(|w| w[1] <= w[0] + 1e-12));

    // Structure: solver spans from worker threads merged into the drain.
    assert!(t.events_named("flexile.solve").next().is_some());
    assert!(t.events_named("flexile.subproblems").count() >= 1);
    assert!(t.events_named("flexile.subproblem").count() >= set.scenarios.len());
    assert!(t.events_named("lp.solve").count() > 0, "lp spans from workers");
    assert!(t.counters.get("flexile.cuts_added").copied().unwrap_or(0) > 0);

    // Artifacts: a loadable Chrome trace and the JSONL stream on disk.
    let dir = std::env::temp_dir();
    let trace_path = dir.join("flexile_sprint_trace.json");
    let jsonl_path = dir.join("flexile_sprint_events.jsonl");
    std::fs::write(&trace_path, t.to_chrome_trace()).expect("write trace");
    std::fs::write(&jsonl_path, &jsonl).expect("write jsonl");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"flexile.bound_gap\""));
    assert!(trace.ends_with('}'));
}

#[test]
fn online_degradation_emits_event() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let scen = &set.scenarios[set.scenarios.len() - 1];
    let critical = vec![false; inst.num_flows()];
    let promised = vec![1.0; inst.num_flows()];

    flexile_obs::enable();
    let (out, _) = fault::with_injector(FaultInjector::always(FaultKind::Numerical), || {
        flexile_core::online_allocate_robust(&inst, scen, &critical, &promised, None)
    });
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(out.level, flexile_core::DegradationLevel::ProportionalShare);
    let ev = t
        .events_named("online.degradation")
        .next()
        .expect("degradation event recorded");
    assert_eq!(
        ev.field("level"),
        Some(&flexile_obs::Value::Str("proportional_share".to_string()))
    );
    assert!(ev.field("error").is_some(), "terminal error is attached");
}

#[test]
fn streaming_subscriber_preserves_bit_identity() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 2, threads: 4, ..Default::default() };

    // Uninstrumented baseline.
    let plain = solve_flexile(&inst, &set, &opts);

    // A live subscriber at default capacity: the publish path must not
    // perturb solver arithmetic, and nothing may be dropped.
    let sub = flexile_obs::stream::subscribe();
    flexile_obs::enable();
    let streamed = solve_flexile(&inst, &set, &opts);
    flexile_obs::disable();
    let mut live = sub.recv_all();
    let t = flexile_obs::drain();
    drop(sub);

    assert_eq!(design_bits(&plain), design_bits(&streamed), "streaming changed the solve");
    assert_eq!(t.counters.get("obs.dropped_events"), None, "default capacity must not drop");
    live.sort_by_key(|e| (e.ts_us, e.tid));
    assert_eq!(live, t.events, "fully-consumed stream reassembles drain()");

    // Forced overflow: a tiny ring drops (and counts) events, while the
    // solver output and the drained sink stay exactly intact.
    let tiny = flexile_obs::stream::subscribe_with_capacity(4);
    flexile_obs::enable();
    let overflowed = solve_flexile(&inst, &set, &opts);
    flexile_obs::disable();
    let kept = tiny.recv_all();
    let t2 = flexile_obs::drain();

    assert_eq!(design_bits(&plain), design_bits(&overflowed), "overflow changed the solve");
    assert_eq!(kept.len(), 4);
    assert!(tiny.dropped() > 0, "the decomposition emits far more than 4 events");
    assert_eq!(t2.counters["obs.dropped_events"], tiny.dropped());
    assert_eq!(t2.events.len(), t.events.len(), "sink contents unaffected by stream overflow");
}
