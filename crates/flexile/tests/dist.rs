//! Distributed-substrate acceptance tests: the coordinator/worker fleet
//! must produce designs **bit-identical** to the in-process pool at any
//! worker count, and keep doing so while workers die (SIGKILL-equivalent
//! aborts), hang (heartbeat stalls), or corrupt frames mid-iteration.
//!
//! * **Parity** — `solve_flexile_dist` at 1/2/3 workers equals
//!   `solve_flexile` bit for bit (penalty, criticality, α, losses).
//! * **Chaos** — process death, a whole-process stall, and result-frame
//!   corruption at iteration 2 (warm templates in play, so the chain
//!   replay is exercised) all converge to the same bits, with the
//!   expected robustness counters fired.
//! * **Degradation** — zero workers, or every worker quarantined
//!   mid-wave, falls back to in-process solving and still converges to
//!   the same bits (`flexile.dist_fallback`).
//! * **Resume + handshake hygiene** — `decompose_resume_dist` continues a
//!   checkpoint bit-identically; a changed `batch_width` / pool policy is
//!   refused by both resume engines and by the worker handshake with a
//!   typed error naming the component, in both directions.
//!
//! Workers are this test binary re-exec'd with `--exact dist_worker_main`
//! (the hook below), so the suite needs no auxiliary binary. The obs sink
//! is process-global; every test serializes on one mutex.

use flexile_core::checkpoint::{options_fingerprint_parts, problem_fingerprint_parts};
use flexile_core::dist::frame::{Hello, WireKnobs, WireProblem};
use flexile_core::dist::verify_hello;
use flexile_core::killpoints::{arm, to_env};
use flexile_core::{
    decompose_resume, decompose_resume_dist, solve_flexile, solve_flexile_dist, CheckpointError,
    DecompositionAborted, DistError, DistOptions, FlexileDesign, FlexileOptions, KillPoint,
    PoolPolicy, WorkerSpec, ANY_SCENARIO,
};
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// Worker-process hook: the coordinator re-execs this test binary with
/// `--exact dist_worker_main`, so in a spawned worker the dist environment
/// is set and this "test" becomes the worker's main. In a normal suite run
/// the environment is absent and it is a no-op pass.
#[test]
fn dist_worker_main() {
    if std::env::var(flexile_core::dist::CONNECT_ENV).is_err() {
        return;
    }
    if let Err(e) = flexile_core::worker_entry() {
        eprintln!("dist worker exited with error: {e}");
    }
}

fn worker_spec() -> WorkerSpec {
    WorkerSpec::CurrentExe {
        args: vec!["--exact".into(), "dist_worker_main".into(), "--nocapture".into()],
    }
}

/// The paper's Fig. 1 triangle with the explicit 99% requirement (same
/// shape as tests/crash.rs, so iteration structure is known to iterate).
fn fig1_setup() -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    inst.classes[0].beta = 0.99;
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

/// Trimmed Sprint instance: β below max-feasible so the decomposition
/// iterates and iteration 2 carries warm templates (chain replay on
/// reassignment is actually exercised).
fn sprint_setup() -> (Instance, ScenarioSet) {
    let topo = flexile_topo::topology_by_name("Sprint").expect("Sprint is in the zoo");
    let probs = flexile_scenario::link_failure_probs(
        topo.num_links(),
        flexile_scenario::weibull::DEFAULT_SHAPE,
        flexile_scenario::weibull::DEFAULT_MEDIAN,
        42,
    );
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-6, max_scenarios: 12, coverage_target: 0.9999 },
    );
    let mut inst = Instance::single_class(topo, 7, 0.95, Some(6));
    inst.classes[0].beta = 0.99;
    (inst, set)
}

fn design_bits(d: &FlexileDesign) -> (u64, Vec<Vec<bool>>, Vec<u64>, Vec<u64>) {
    (
        d.penalty.to_bits(),
        d.critical.clone(),
        d.alpha.iter().map(|v| v.to_bits()).collect(),
        d.offline_loss.iter().flatten().map(|v| v.to_bits()).collect(),
    )
}

fn counter(t: &flexile_obs::Telemetry, name: &str) -> u64 {
    t.counters.get(name).copied().unwrap_or(0)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("flexile-dist-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&d);
    d
}

// ---------------------------------------------------------------------------
// Parity
// ---------------------------------------------------------------------------

#[test]
fn parity_matches_in_process_at_any_worker_count() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let opts = FlexileOptions::default();
    let reference = solve_flexile(&inst, &set, &opts);
    let ref_bits = design_bits(&reference);
    for workers in 1..=3usize {
        let dopts = DistOptions::new(workers, worker_spec());
        let d = solve_flexile_dist(&inst, &set, &opts, &dopts)
            .unwrap_or_else(|e| panic!("dist solve with {workers} workers: {e}"));
        assert_eq!(design_bits(&d), ref_bits, "{workers}-worker fleet diverged from in-process");
        assert_eq!(
            format!("{:.17e}", d.penalty),
            format!("{:.17e}", reference.penalty),
            "penalty string mismatch at {workers} workers"
        );
    }
}

// ---------------------------------------------------------------------------
// Chaos: death, hang, corruption
// ---------------------------------------------------------------------------

#[test]
fn worker_death_mid_iteration_is_bit_identical() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 3, ..Default::default() };
    let reference = solve_flexile(&inst, &set, &opts);
    assert!(reference.iterations.len() >= 2, "setup must iterate");

    let mut dopts = DistOptions::new(3, worker_spec());
    // Slot 0 aborts its process on the first assignment it handles in
    // iteration 2 — the dist equivalent of SIGKILL mid-solve.
    dopts.chaos =
        vec![(0, to_env(&[KillPoint::ProcExit { iteration: 2, scenario: ANY_SCENARIO }]))];
    flexile_obs::enable();
    let d = solve_flexile_dist(&inst, &set, &opts, &dopts).expect("dist solve under kill");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(design_bits(&d), design_bits(&reference), "worker death changed the design");
    assert_eq!(counter(&t, "flexile.dist_worker_dead"), 1, "exactly one death: {:?}", t.counters);
    assert_eq!(counter(&t, "flexile.dist_worker_restart"), 1, "the dead slot respawns once");
    assert!(counter(&t, "flexile.dist_reassigned") >= 1, "its pending share must move");
    assert_eq!(counter(&t, "flexile.dist_workers_spawned"), 4, "3 initial + 1 respawn");
    assert_eq!(counter(&t, "flexile.dist_fallback"), 0);
}

#[test]
fn heartbeat_stall_is_detected_and_bit_identical() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 3, ..Default::default() };
    let reference = solve_flexile(&inst, &set, &opts);

    let mut dopts = DistOptions::new(3, worker_spec());
    dopts.heartbeat = std::time::Duration::from_millis(25);
    dopts.deadline = std::time::Duration::from_millis(600);
    // Slot 0 hangs (heartbeats stop, main loop sleeps forever) at its
    // first iteration-2 assignment; only the deadline can catch this.
    dopts.chaos = vec![(0, to_env(&[KillPoint::HeartbeatStall { iteration: 2 }]))];
    flexile_obs::enable();
    let d = solve_flexile_dist(&inst, &set, &opts, &dopts).expect("dist solve under stall");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(design_bits(&d), design_bits(&reference), "stall changed the design");
    assert_eq!(counter(&t, "flexile.dist_heartbeat_stall"), 1, "{:?}", t.counters);
    assert_eq!(counter(&t, "flexile.dist_worker_dead"), 1, "the hung worker is killed");
    assert!(counter(&t, "flexile.dist_reassigned") >= 1);
    assert_eq!(counter(&t, "flexile.dist_fallback"), 0);
}

#[test]
fn corrupted_result_frame_is_contained_and_bit_identical() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 3, ..Default::default() };
    let reference = solve_flexile(&inst, &set, &opts);

    let mut dopts = DistOptions::new(3, worker_spec());
    // Slot 0 flips a checksum byte in its first iteration-2 result frame;
    // the coordinator's frame validation must catch it, condemn the
    // connection, and re-derive the scenario elsewhere.
    dopts.chaos =
        vec![(0, to_env(&[KillPoint::FrameCorrupt { iteration: 2, scenario: ANY_SCENARIO }]))];
    flexile_obs::enable();
    let d = solve_flexile_dist(&inst, &set, &opts, &dopts).expect("dist solve under corruption");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(design_bits(&d), design_bits(&reference), "corruption changed the design");
    assert_eq!(counter(&t, "flexile.dist_frame_corrupt"), 1, "{:?}", t.counters);
    assert_eq!(counter(&t, "flexile.dist_worker_dead"), 1, "corrupt stream is condemned");
    assert!(counter(&t, "flexile.dist_reassigned") >= 1, "the corrupted result is re-derived");
    assert_eq!(counter(&t, "flexile.dist_fallback"), 0);
}

// ---------------------------------------------------------------------------
// Degradation
// ---------------------------------------------------------------------------

#[test]
fn zero_workers_degrades_and_converges() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let opts = FlexileOptions::default();
    let reference = solve_flexile(&inst, &set, &opts);

    let dopts = DistOptions::new(0, worker_spec());
    flexile_obs::enable();
    let d = solve_flexile_dist(&inst, &set, &opts, &dopts).expect("degraded solve");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(design_bits(&d), design_bits(&reference), "degraded path diverged");
    assert_eq!(counter(&t, "flexile.dist_fallback"), 1, "{:?}", t.counters);
    assert_eq!(counter(&t, "flexile.dist_workers_spawned"), 0);
}

#[test]
fn losing_every_worker_mid_run_degrades_and_converges() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 3, ..Default::default() };
    let reference = solve_flexile(&inst, &set, &opts);

    let mut dopts = DistOptions::new(2, worker_spec());
    dopts.max_restarts = 0;
    let spec = to_env(&[KillPoint::ProcExit { iteration: 2, scenario: ANY_SCENARIO }]);
    dopts.chaos = vec![(0, spec.clone()), (1, spec)];
    flexile_obs::enable();
    let d = solve_flexile_dist(&inst, &set, &opts, &dopts).expect("solve surviving total loss");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(design_bits(&d), design_bits(&reference), "total worker loss changed the design");
    assert_eq!(counter(&t, "flexile.dist_worker_dead"), 2, "{:?}", t.counters);
    assert_eq!(counter(&t, "flexile.dist_worker_quarantined"), 2, "max_restarts=0 quarantines");
    assert_eq!(counter(&t, "flexile.dist_worker_restart"), 0);
    assert_eq!(counter(&t, "flexile.dist_fallback"), 1, "coordinator re-warms in-process");
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

/// Leave a mid-run checkpoint behind by aborting the in-process run.
fn abort_at(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions, it: usize) {
    let _k = arm(&[KillPoint::Abort { iteration: it }]);
    let err = panic::catch_unwind(AssertUnwindSafe(|| solve_flexile(inst, set, opts)))
        .expect_err("armed abort must unwind");
    assert_eq!(
        err.downcast_ref::<DecompositionAborted>().expect("typed abort payload").iteration,
        it
    );
}

#[test]
fn resume_dist_continues_bit_identically() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let dir = temp_dir("resume");
    let mk = |d: Option<PathBuf>| FlexileOptions {
        checkpoint_dir: d,
        checkpoint_every: 1,
        ..Default::default()
    };
    let reference = solve_flexile(&inst, &set, &mk(None));
    assert!(reference.iterations.len() >= 2, "fig1 must iterate");

    abort_at(&inst, &set, &mk(Some(dir.clone())), 2);
    let dopts = DistOptions::new(2, worker_spec());
    let resumed = decompose_resume_dist(&inst, &set, &mk(Some(dir.clone())), &dopts)
        .expect("dist resume from checkpoint");
    assert_eq!(
        design_bits(&resumed),
        design_bits(&reference),
        "dist resume diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn both_resume_engines_refuse_pool_config_drift() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let dir = temp_dir("drift");
    let base = FlexileOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..Default::default()
    };
    abort_at(&inst, &set, &base, 2);

    let wider = FlexileOptions { batch_width: base.batch_width + 1, ..base.clone() };
    let colder = FlexileOptions { pool: PoolPolicy::Cold, ..base.clone() };

    // In-process resume names the diverging pool-config component...
    assert!(matches!(
        decompose_resume(&inst, &set, &wider),
        Err(CheckpointError::PoolConfigMismatch { component: "batch_width" })
    ));
    assert!(matches!(
        decompose_resume(&inst, &set, &colder),
        Err(CheckpointError::PoolConfigMismatch { component: "pool_policy" })
    ));
    // ...and the distributed engine surfaces the identical typed error.
    let dopts = DistOptions::new(1, worker_spec());
    assert!(matches!(
        decompose_resume_dist(&inst, &set, &wider, &dopts),
        Err(DistError::Checkpoint(CheckpointError::PoolConfigMismatch {
            component: "batch_width"
        }))
    ));
    assert!(matches!(
        decompose_resume_dist(&inst, &set, &colder, &dopts),
        Err(DistError::Checkpoint(CheckpointError::PoolConfigMismatch {
            component: "pool_policy"
        }))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// A coordinator-faithful hello for the fig1 problem and given options.
fn hello_for(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> Hello {
    Hello {
        problem_parts: problem_fingerprint_parts(inst, set),
        options_parts: options_fingerprint_parts(opts),
        problem: WireProblem { inst: inst.clone(), set: set.clone(), loss_ub: None },
        knobs: WireKnobs {
            max_iterations: opts.max_iterations as u64,
            prune: opts.prune,
            gamma: opts.gamma,
            hamming_limit: opts.master.hamming_limit as u64,
            exact_threshold: opts.master.exact_threshold as u64,
            pool: match opts.pool {
                PoolPolicy::PerScenario => 0,
                PoolPolicy::LegacyStriped => 1,
                PoolPolicy::Cold => 2,
            },
            basis_residency: opts.basis_residency as u64,
            batch_width: opts.batch_width as u64,
            watchdog_millis: None,
            heartbeat_millis: 100,
        },
    }
}

#[test]
fn handshake_rejects_knob_drift_in_both_directions() {
    let (inst, set) = fig1_setup();
    let opts = FlexileOptions::default();
    let good = hello_for(&inst, &set, &opts);
    assert!(verify_hello(&good).is_ok(), "faithful hello must verify");

    // Direction 1: the shipped knobs drift from the declared fingerprint
    // (a worker built against different pool configuration).
    let mut h = good.clone();
    h.knobs.batch_width += 1;
    assert!(matches!(
        verify_hello(&h),
        Err(CheckpointError::PoolConfigMismatch { component: "batch_width" })
    ));
    let mut h = good.clone();
    h.knobs.pool = 2; // Cold, while the fingerprint says PerScenario
    assert!(matches!(
        verify_hello(&h),
        Err(CheckpointError::PoolConfigMismatch { component: "pool_policy" })
    ));

    // Direction 2: the declared fingerprint is stale while the knobs are
    // honest (a coordinator advertising options it is not running).
    let mut h = good.clone();
    h.options_parts[3] ^= 1; // batch_width component
    assert!(matches!(
        verify_hello(&h),
        Err(CheckpointError::PoolConfigMismatch { component: "batch_width" })
    ));
    let mut h = good.clone();
    h.options_parts[2] ^= 1; // pool_policy component
    assert!(matches!(
        verify_hello(&h),
        Err(CheckpointError::PoolConfigMismatch { component: "pool_policy" })
    ));
    let mut h = good.clone();
    h.problem_parts[0] ^= 1; // structural shape
    assert!(matches!(
        verify_hello(&h),
        Err(CheckpointError::ProblemMismatch { component: "shape" })
    ));

    // An unknown pool tag is malformed, not silently defaulted.
    let mut h = good.clone();
    h.knobs.pool = 7;
    assert!(matches!(verify_hello(&h), Err(CheckpointError::Malformed("pool policy tag"))));
}
