//! Crash-safety acceptance tests: kill-point chaos, panic containment,
//! quarantine exhaustion, checkpoint/resume bit-identity, and the watchdog.
//!
//! * **Worker kill sweep** — a worker panic at any (iteration, scenario) is
//!   contained, quarantined, retried from a cold template, and the
//!   decomposition still converges; a panic in iteration 1 (where every
//!   solve is cold anyway) leaves the output bit-identical.
//! * **Abort + resume** — an abort that unwinds the whole decomposition
//!   mid-iteration (simulated process death) leaves a valid checkpoint from
//!   the previous boundary, and [`decompose_resume`] continues to a final
//!   design bit-identical to an uninterrupted run — including across a
//!   different thread count — because each scenario's warm basis is
//!   reconstructed by replaying its checkpointed solve chain.
//! * **Zero-fault identity** — checkpointing on (any cadence) vs. off does
//!   not perturb the trajectory by a single bit.
//! * **Watchdog** — a zero deadline deterministically fails every warm
//!   restart, so the run degrades to exactly the cold-every-iteration
//!   policy, bit for bit.
//!
//! Kill-points and the obs sink are process-global, so every test here
//! serializes on one mutex.

use flexile_core::checkpoint::{checkpoint_path, read_checkpoint};
use flexile_core::{
    decompose_resume, solve_flexile, CheckpointError, DecompositionAborted, FlexileDesign,
    FlexileOptions, KillPoint, PoolPolicy, MAX_PANIC_RETRIES,
};
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, Once};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize the test and silence the default panic printer for *chaos*
/// panics only (armed kill-points fire dozens of times per sweep; real
/// assertion failures still print).
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<DecompositionAborted>().is_some() {
                return;
            }
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.starts_with("chaos kill-point")) {
                return;
            }
            prev(info);
        }));
    });
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// The paper's Fig. 1 triangle with the explicit 99% requirement.
fn fig1_setup() -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    inst.classes[0].beta = 0.99;
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

/// Trimmed Sprint instance (same shape as tests/pool.rs): real topology,
/// β below max-feasible so the decomposition actually iterates.
fn sprint_setup() -> (Instance, ScenarioSet) {
    let topo = flexile_topo::topology_by_name("Sprint").expect("Sprint is in the zoo");
    let probs = flexile_scenario::link_failure_probs(
        topo.num_links(),
        flexile_scenario::weibull::DEFAULT_SHAPE,
        flexile_scenario::weibull::DEFAULT_MEDIAN,
        42,
    );
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-6, max_scenarios: 12, coverage_target: 0.9999 },
    );
    let mut inst = Instance::single_class(topo, 7, 0.95, Some(6));
    inst.classes[0].beta = 0.99;
    (inst, set)
}

fn design_bits(d: &FlexileDesign) -> (u64, Vec<Vec<bool>>, Vec<u64>, Vec<u64>) {
    (
        d.penalty.to_bits(),
        d.critical.clone(),
        d.alpha.iter().map(|v| v.to_bits()).collect(),
        d.offline_loss.iter().flatten().map(|v| v.to_bits()).collect(),
    )
}

fn assert_monotone(d: &FlexileDesign, what: &str) {
    for w in d.iterations.windows(2) {
        assert!(w[1].penalty <= w[0].penalty + 1e-12, "{what}: incumbent worsened");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("flexile-crash-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Run the decomposition expecting an armed Abort to unwind it; returns the
/// fired iteration from the typed panic payload.
fn run_until_abort(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> usize {
    let err = panic::catch_unwind(AssertUnwindSafe(|| solve_flexile(inst, set, opts)))
        .expect_err("armed abort must unwind the decomposition");
    err.downcast_ref::<DecompositionAborted>()
        .expect("abort payload must be DecompositionAborted")
        .iteration
}

// ---------------------------------------------------------------------------
// Worker kill sweep
// ---------------------------------------------------------------------------

#[test]
fn worker_kill_sweep_fig1() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let opts = FlexileOptions::default();
    let reference = solve_flexile(&inst, &set, &opts);
    let ref_bits = design_bits(&reference);
    assert!(reference.penalty < 1e-6);
    let iters = reference.iterations.len();
    let nq = set.scenarios.len();

    let mut fired = 0usize;
    for it in 1..=iters {
        for q in 0..nq {
            let guard = flexile_core::killpoints::arm(&[KillPoint::Worker {
                iteration: it,
                scenario: q,
            }]);
            let d = solve_flexile(&inst, &set, &opts);
            // A kill aimed at a pruned scenario never fires; count the ones
            // that did so the sweep provably exercised containment.
            if flexile_core::killpoints::disarm().is_empty() {
                fired += 1;
            }
            drop(guard);
            assert!(
                d.penalty < 1e-6,
                "kill (it {it}, scen {q}): penalty {} after containment",
                d.penalty
            );
            assert_monotone(&d, "worker kill");
            if it == 1 {
                // Iteration 1 is cold for everyone: the quarantined retry
                // performs the identical cold solve, so the whole run is
                // bit-identical.
                assert_eq!(
                    design_bits(&d),
                    ref_bits,
                    "iteration-1 kill (scen {q}) must not perturb the output"
                );
            }
        }
    }
    assert!(fired >= nq, "sweep must actually fire kill-points (fired {fired})");
}

#[test]
fn worker_kill_sprint_emits_containment_telemetry() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let opts = FlexileOptions { max_iterations: 3, ..Default::default() };
    let reference = solve_flexile(&inst, &set, &opts);
    assert!(reference.iterations.len() >= 2, "setup must iterate");

    for (it, q) in [(1usize, 0usize), (2, 0), (2, 5), (2, 11)] {
        let _k = flexile_core::killpoints::arm(&[KillPoint::Worker { iteration: it, scenario: q }]);
        flexile_obs::enable();
        let d = solve_flexile(&inst, &set, &opts);
        flexile_obs::disable();
        let t = flexile_obs::drain();
        let fired = flexile_core::killpoints::disarm().is_empty();
        assert!(d.penalty.is_finite() && d.penalty >= 0.0);
        assert_monotone(&d, "sprint kill");
        if it == 1 {
            assert_eq!(design_bits(&d), design_bits(&reference), "cold-iteration kill");
        }
        if fired {
            let counter = |n: &str| t.counters.get(n).copied().unwrap_or(0);
            assert_eq!(counter("flexile.worker_panic"), 1, "kill (it {it}, scen {q})");
            assert_eq!(counter("flexile.scenario_quarantined"), 1);
            assert_eq!(counter("flexile.scenario_poisoned"), 0, "one panic must not poison");
            assert_eq!(counter("obs.flight_dump"), 2, "panic + quarantine each dump");
            let dump = flexile_obs::flight::last().expect("flight dump retained");
            assert!(dump.starts_with("{\"type\":\"flight\",\"reason\":\"scenario_quarantined\""));
            if it == 2 {
                // By iteration 2 the rings hold real pre-crash history:
                // completed subproblem spans from iteration 1.
                assert!(
                    dump.contains("\"flexile.subproblem\""),
                    "iteration-2 black box holds pre-crash spans (it {it}, scen {q})"
                );
            }
            flexile_obs::flight::clear_last();
        }
    }
}

#[test]
fn retry_exhaustion_poisons_scenario_but_run_survives() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let p = KillPoint::Worker { iteration: 1, scenario: 0 };
    // One more armed panic than the pool retries: every attempt dies.
    let kills = vec![p; MAX_PANIC_RETRIES as usize + 1];
    let _k = flexile_core::killpoints::arm(&kills);
    flexile_obs::flight::clear_last();
    flexile_obs::enable();
    let d = solve_flexile(&inst, &set, &FlexileOptions::default());
    flexile_obs::disable();
    let t = flexile_obs::drain();
    assert!(
        flexile_core::killpoints::disarm().is_empty(),
        "all armed kills must have fired"
    );
    let counter = |n: &str| t.counters.get(n).copied().unwrap_or(0);
    assert_eq!(counter("flexile.worker_panic"), MAX_PANIC_RETRIES as u64 + 1);
    assert_eq!(counter("flexile.scenario_quarantined"), MAX_PANIC_RETRIES as u64 + 1);
    assert_eq!(counter("flexile.scenario_poisoned"), 1);
    // Every contained failure ships its black box: a flight-recorder dump
    // per worker_panic and per quarantine, holding the pre-crash events.
    assert_eq!(counter("obs.flight_dump"), 2 * (MAX_PANIC_RETRIES as u64 + 1));
    let dump = flexile_obs::flight::last().expect("crash produced a flight dump");
    // The kill fires on the very first solve, before any span completed:
    // the black box honestly reports its (empty) pre-crash history. The
    // iteration-2 Sprint kills below exercise a populated ring.
    assert!(dump.starts_with("{\"type\":\"flight\",\"reason\":\"scenario_quarantined\""));
    flexile_obs::flight::clear_last();
    // Degraded, not dead: the run completed, losses for the poisoned
    // scenario were pessimistic for that iteration, stats stay monotone.
    assert!(d.penalty.is_finite() && (0.0..=1.0 + 1e-9).contains(&d.penalty));
    assert_monotone(&d, "poisoned run");
    assert!(!d.iterations.is_empty());
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

#[test]
fn checkpointing_does_not_perturb_trajectory() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let plain = design_bits(&solve_flexile(&inst, &set, &FlexileOptions::default()));
    for every in [1usize, 5] {
        let dir = temp_dir(&format!("zerofault-{every}"));
        let opts = FlexileOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: every,
            ..Default::default()
        };
        let d = solve_flexile(&inst, &set, &opts);
        assert_eq!(design_bits(&d), plain, "checkpoint_every={every} perturbed the run");
        // The final (done) checkpoint is always written; resuming from it
        // reconstructs the same design without solving anything.
        let resumed = decompose_resume(&inst, &set, &opts).expect("resume done state");
        assert_eq!(design_bits(&resumed), plain, "done-state resume");
        assert_eq!(resumed.iterations, d.iterations);
        let ck = read_checkpoint(&checkpoint_path(&dir)).expect("final checkpoint");
        assert!(ck.done);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn abort_and_resume_is_bit_identical_fig1() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let dir = temp_dir("fig1-ref");
    let mk = |d: &PathBuf| FlexileOptions {
        checkpoint_dir: Some(d.clone()),
        checkpoint_every: 1,
        ..Default::default()
    };
    let reference = solve_flexile(&inst, &set, &mk(&dir));
    let ref_bits = design_bits(&reference);
    let _ = std::fs::remove_dir_all(&dir);
    let iters = reference.iterations.len();
    assert!(iters >= 2, "fig1 must iterate for the abort sweep");

    for ab in 2..=iters {
        let dir = temp_dir(&format!("fig1-ab{ab}"));
        let opts = mk(&dir);
        let _k = flexile_core::killpoints::arm(&[KillPoint::Abort { iteration: ab }]);
        let fired_at = run_until_abort(&inst, &set, &opts);
        assert_eq!(fired_at, ab);
        // The checkpoint on disk is from the *previous* boundary.
        let ck = read_checkpoint(&checkpoint_path(&dir)).expect("boundary checkpoint");
        assert_eq!(ck.it, ab - 1);
        assert!(!ck.done);

        flexile_obs::enable();
        let resumed = decompose_resume(&inst, &set, &opts).expect("resume");
        flexile_obs::disable();
        let t = flexile_obs::drain();
        assert_eq!(design_bits(&resumed), ref_bits, "resume after abort at it {ab}");
        assert_eq!(resumed.iterations, reference.iterations, "stat trajectory spliced");
        assert_monotone(&resumed, "resumed run");
        assert!(t.counters.get("flexile.checkpoint_restore").copied().unwrap_or(0) >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn abort_and_resume_is_bit_identical_sprint_across_threads() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let dir = temp_dir("sprint-ref");
    let mk = |d: &PathBuf, threads: usize| FlexileOptions {
        max_iterations: 3,
        threads,
        checkpoint_dir: Some(d.clone()),
        checkpoint_every: 1,
        ..Default::default()
    };
    let reference = solve_flexile(&inst, &set, &mk(&dir, 8));
    let ref_bits = design_bits(&reference);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(reference.iterations.len() >= 2, "setup must iterate");

    for ab in 2..=reference.iterations.len() {
        let dir = temp_dir(&format!("sprint-ab{ab}"));
        let _k = flexile_core::killpoints::arm(&[KillPoint::Abort { iteration: ab }]);
        assert_eq!(run_until_abort(&inst, &set, &mk(&dir, 8)), ab);
        // Resume under a *different* thread count: scenario state is
        // per-scenario, not per-worker, so the replayed warm bases — and
        // the continuation — are identical anyway. (Thread count is
        // excluded from the options fingerprint for exactly this reason.)
        let resumed = decompose_resume(&inst, &set, &mk(&dir, 1)).expect("resume");
        assert_eq!(design_bits(&resumed), ref_bits, "abort at it {ab}, resumed 1-threaded");
        assert_eq!(resumed.iterations, reference.iterations);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn abort_before_first_checkpoint_leaves_nothing_to_resume() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let dir = temp_dir("ab1");
    let opts = FlexileOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..Default::default()
    };
    let _k = flexile_core::killpoints::arm(&[KillPoint::Abort { iteration: 1 }]);
    assert_eq!(run_until_abort(&inst, &set, &opts), 1);
    match decompose_resume(&inst, &set, &opts) {
        Err(CheckpointError::Io(_)) => {}
        other => panic!("expected Io (no checkpoint yet), got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_mismatched_problem_or_options() {
    let _g = exclusive();
    let (inst, set) = fig1_setup();
    let dir = temp_dir("mismatch");
    let opts = FlexileOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..Default::default()
    };
    // Leave a mid-run checkpoint behind.
    let _k = flexile_core::killpoints::arm(&[KillPoint::Abort { iteration: 2 }]);
    assert_eq!(run_until_abort(&inst, &set, &opts), 2);

    // Different problem: harden the SLO → different β → different design.
    let mut other_inst = inst.clone();
    other_inst.classes[0].beta = 0.95;
    assert!(matches!(
        decompose_resume(&other_inst, &set, &opts),
        Err(CheckpointError::ProblemMismatch { .. })
    ));

    // Different trajectory-relevant options.
    let other_opts = FlexileOptions { prune: false, ..opts.clone() };
    assert!(matches!(
        decompose_resume(&inst, &set, &other_opts),
        Err(CheckpointError::OptionsMismatch { .. })
    ));

    // No directory configured at all.
    let bare = FlexileOptions::default();
    assert!(matches!(
        decompose_resume(&inst, &set, &bare),
        Err(CheckpointError::NoCheckpointConfigured)
    ));

    // The matching configuration still resumes fine.
    let resumed = decompose_resume(&inst, &set, &opts).expect("matching resume");
    assert!(resumed.penalty < 1e-6);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

#[test]
fn zero_watchdog_degrades_to_cold_policy_bitwise() {
    let _g = exclusive();
    let (inst, set) = sprint_setup();
    let cold = solve_flexile(
        &inst,
        &set,
        &FlexileOptions { max_iterations: 3, pool: PoolPolicy::Cold, ..Default::default() },
    );
    let watchdog_opts = FlexileOptions {
        max_iterations: 3,
        watchdog: Some(Duration::ZERO),
        ..Default::default()
    };
    flexile_obs::enable();
    let d = solve_flexile(&inst, &set, &watchdog_opts);
    flexile_obs::disable();
    let t = flexile_obs::drain();
    // An already-expired deadline fails every warm restart up front, so
    // each solve cold-restarts through the ladder — exactly what the Cold
    // policy does — and the deadline never interferes with the cold path.
    assert_eq!(design_bits(&d), design_bits(&cold), "watchdog-always vs Cold policy");
    let restarts = t.counters.get("flexile.watchdog_restart").copied().unwrap_or(0);
    assert!(restarts > 0, "warm attempts must have tripped the watchdog");
}
