//! Decomposition-level acceptance tests for LP presolve:
//!
//! * **Bit-identity** — the offline design (penalty, criticality sets,
//!   alpha, loss matrix) is bit-identical with master presolve on vs off,
//!   and across thread counts in both configurations. Presolve is a
//!   *solver*-side reduction with exact postsolve; it must never leak into
//!   the decomposition trajectory. (Subproblems always solve with presolve
//!   off — Benders cuts are built from their duals, and the cut-function
//!   equivalence tests in `pool.rs` pin those bit-exactly.)
//! * **Work reduction** — on the Sprint fixture the presolved master does
//!   measurably fewer simplex pivots, witnessed through the
//!   `lp.presolve_removed_cols` counter actually firing.

use flexile_core::{solve_flexile, FlexileDesign, FlexileOptions};
use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
use flexile_traffic::{ClassConfig, Instance};
use std::sync::Mutex;

static SINK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// The paper's Fig. 1 triangle with the explicit 99% requirement.
fn fig1_setup() -> (Instance, ScenarioSet) {
    let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
    let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
    let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
    let mut inst = Instance {
        topo,
        pairs,
        classes: vec![ClassConfig::single()],
        tunnels: vec![tunnels],
        demands: vec![vec![1.0, 1.0]],
    };
    inst.classes[0].beta = 0.99;
    let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
    let set = enumerate_scenarios(
        &units,
        3,
        &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
    );
    (inst, set)
}

/// Small-caps Sprint instance (Table 2 topology), trimmed to tier-1 time
/// budgets; β = 0.99 below max-feasible so the decomposition iterates.
fn sprint_setup() -> (Instance, ScenarioSet) {
    let topo = flexile_topo::topology_by_name("Sprint").expect("Sprint is in the zoo");
    let probs = flexile_scenario::link_failure_probs(
        topo.num_links(),
        flexile_scenario::weibull::DEFAULT_SHAPE,
        flexile_scenario::weibull::DEFAULT_MEDIAN,
        42,
    );
    let units = link_units(&topo, &probs);
    let set = enumerate_scenarios(
        &units,
        topo.num_links(),
        &EnumOptions { prob_cutoff: 1e-6, max_scenarios: 12, coverage_target: 0.9999 },
    );
    let mut inst = Instance::single_class(topo, 7, 0.95, Some(6));
    inst.classes[0].beta = 0.99;
    (inst, set)
}

fn design_bits(d: &FlexileDesign) -> (u64, Vec<Vec<bool>>, Vec<u64>, Vec<u64>) {
    (
        d.penalty.to_bits(),
        d.critical.clone(),
        d.alpha.iter().map(|v| v.to_bits()).collect(),
        d.offline_loss.iter().flatten().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn design_identical_presolve_on_off_fig1() {
    let (inst, set) = fig1_setup();
    let mut reference = None;
    for presolve in [true, false] {
        for threads in [1, 8] {
            let mut opts = FlexileOptions { threads, ..Default::default() };
            opts.master.presolve = presolve;
            let d = design_bits(&solve_flexile(&inst, &set, &opts));
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    r, &d,
                    "fig1 output diverged at presolve={presolve} threads={threads}"
                ),
            }
        }
    }
}

#[test]
fn design_identical_presolve_on_off_sprint() {
    let (inst, set) = sprint_setup();
    let mut reference = None;
    for presolve in [true, false] {
        for threads in [1, 8] {
            let mut opts =
                FlexileOptions { threads, max_iterations: 3, ..Default::default() };
            opts.master.presolve = presolve;
            let d = design_bits(&solve_flexile(&inst, &set, &opts));
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    r, &d,
                    "Sprint output diverged at presolve={presolve} threads={threads}"
                ),
            }
        }
    }
}

#[test]
fn presolve_counters_fire_on_sprint_master() {
    let _guard = exclusive();
    let (inst, set) = sprint_setup();
    flexile_obs::enable();
    let opts = FlexileOptions { threads: 2, max_iterations: 2, ..Default::default() };
    let _ = solve_flexile(&inst, &set, &opts);
    let report = flexile_obs::drain();
    flexile_obs::disable();
    let removed = report.counters.get("lp.presolve_removed_cols").copied().unwrap_or(0);
    assert!(removed > 0, "master presolve removed no columns on Sprint: {report:?}");
}
