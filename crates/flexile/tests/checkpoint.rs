//! Checkpoint codec robustness:
//!
//! * **Round-trip** — `encode ∘ decode` is the identity on arbitrary
//!   checkpoint states (bit-exact for every `f64`, including infinities).
//! * **Corruption rejection** — any single bit flip, any truncation, a
//!   version bump, bad magic, or trailing garbage yields a typed
//!   [`CheckpointError`], never a panic, an OOM, or silent garbage.
//! * **Atomicity** — `write_checkpoint` leaves no temp file behind and
//!   `read_checkpoint` round-trips through the filesystem.

use flexile_core::checkpoint::{
    decode, encode, read_checkpoint, write_checkpoint, BestIncumbent, CheckpointState,
    CHECKPOINT_VERSION,
};
use flexile_core::subproblem::Cut;
use flexile_core::{CheckpointError, IterationStat};
use proptest::prelude::*;
use std::path::PathBuf;

/// Splitmix64: cheap deterministic stream for filling in state fields from
/// a proptest-drawn seed (the shim's strategies draw scalars; nesting a
/// whole struct generator is more machinery than the codec needs).
struct Mix(u64);

impl Mix {
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        // Finite, mixed-sign, mixed-magnitude; occasionally +∞ (the
        // `cached_value` sentinel). Never NaN: the round-trip asserts
        // `PartialEq` on the decoded struct.
        match self.u64() % 8 {
            0 => f64::INFINITY,
            1 => 0.0,
            2 => -(self.u64() as f64) / 1e6,
            _ => (self.u64() >> 11) as f64 / (1u64 << 53) as f64,
        }
    }
    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }
}

/// Build a structurally consistent checkpoint state of the given shape.
fn arb_state(seed: u64, nf: usize, nq: usize, na: usize, iters: usize) -> CheckpointState {
    let mut m = Mix(seed);
    let bits = |m: &mut Mix, n: usize| -> Vec<bool> { (0..n).map(|_| m.bool()).collect() };
    let f64s = |m: &mut Mix, n: usize| -> Vec<f64> { (0..n).map(|_| m.f64()).collect() };
    let cut = |m: &mut Mix| Cut { w: f64s(m, nf), u: f64s(m, na), d_const: m.f64() };
    CheckpointState {
        problem_parts: std::array::from_fn(|_| m.u64()),
        options_parts: std::array::from_fn(|_| m.u64()),
        nf,
        nq,
        na,
        it: iters.max(1),
        done: m.bool(),
        z: (0..nf).map(|_| bits(&mut m, nq)).collect(),
        cuts: (0..nq)
            .map(|q| (0..(q % 3)).map(|_| cut(&mut m)).collect())
            .collect(),
        cached_loss: (0..nq)
            .map(|q| if q % 4 == 3 { None } else { Some(f64s(&mut m, nf)) })
            .collect(),
        cached_value: f64s(&mut m, nq),
        last_z_col: (0..nq)
            .map(|q| if q % 5 == 4 { None } else { Some(bits(&mut m, nf)) })
            .collect(),
        perfect: bits(&mut m, nq),
        stamps: (0..nq).map(|_| m.u64() % 64).collect(),
        chains: (0..nq)
            .map(|q| (0..(q % 4)).map(|_| bits(&mut m, nf)).collect())
            .collect(),
        best: if seed.is_multiple_of(7) {
            None
        } else {
            Some(BestIncumbent {
                penalty: m.f64(),
                critical: (0..nf).map(|_| bits(&mut m, nq)).collect(),
                loss: (0..nf).map(|_| f64s(&mut m, nq)).collect(),
                alpha: f64s(&mut m, 2),
            })
        },
        iterations: (1..=iters)
            .map(|i| IterationStat {
                iteration: i,
                penalty: m.f64(),
                solved: (m.u64() % 100) as usize,
                pruned: (m.u64() % 100) as usize,
                lp_iterations: (m.u64() % 10_000) as usize,
                warm_hits: (m.u64() % 100) as usize,
                dual_restarts: (m.u64() % 100) as usize,
            })
            .collect(),
        last_bound: if m.bool() { Some(m.f64()) } else { None },
        betas: f64s(&mut m, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_is_identity(
        seed in 0u64..u64::MAX,
        nf in 1usize..10,
        nq in 1usize..12,
        na in 1usize..8,
        iters in 1usize..6,
    ) {
        let state = arb_state(seed, nf, nq, na, iters);
        let blob = encode(&state);
        let back = decode(&blob).expect("round-trip decode");
        prop_assert_eq!(back, state);
    }

    #[test]
    fn any_bit_flip_is_rejected(
        seed in 0u64..u64::MAX,
        flip in 0u64..u64::MAX,
    ) {
        let state = arb_state(seed, 3, 5, 4, 2);
        let mut blob = encode(&state);
        let bit = (flip % (blob.len() as u64 * 8)) as usize;
        blob[bit / 8] ^= 1 << (bit % 8);
        // A flipped header field trips magic/version/length validation; a
        // flipped payload bit trips the checksum. Either way: typed error,
        // no panic — or, for a flip that cancels out nowhere, at minimum
        // not the original state parsed silently wrong.
        match decode(&blob) {
            Err(_) => {}
            Ok(back) => prop_assert!(false, "corrupted blob decoded: {:?} bit {}", back.it, bit),
        }
    }

    #[test]
    fn any_truncation_is_rejected(
        seed in 0u64..u64::MAX,
        cut_at in 0u64..u64::MAX,
    ) {
        let state = arb_state(seed, 2, 4, 3, 1);
        let blob = encode(&state);
        let keep = (cut_at % blob.len() as u64) as usize;
        prop_assert!(decode(&blob[..keep]).is_err(), "prefix of {} bytes decoded", keep);
    }
}

#[test]
fn version_bump_is_refused() {
    let state = arb_state(11, 2, 3, 2, 1);
    let mut blob = encode(&state);
    // Version is the u32 right after the 8-byte magic.
    let v = CHECKPOINT_VERSION + 1;
    blob[8..12].copy_from_slice(&v.to_le_bytes());
    assert_eq!(
        decode(&blob),
        Err(CheckpointError::VersionMismatch { found: v, expected: CHECKPOINT_VERSION })
    );
}

#[test]
fn bad_magic_is_refused() {
    let state = arb_state(12, 2, 3, 2, 1);
    let mut blob = encode(&state);
    blob[0] = b'X';
    assert_eq!(decode(&blob), Err(CheckpointError::BadMagic));
    assert!(decode(b"").is_err());
    assert!(decode(b"FLX").is_err());
}

#[test]
fn trailing_bytes_are_refused() {
    let state = arb_state(13, 2, 3, 2, 1);
    let mut blob = encode(&state);
    blob.push(0);
    assert!(decode(&blob).is_err(), "trailing garbage accepted");
}

#[test]
fn hostile_length_fields_do_not_allocate() {
    // A payload whose first length field claims 2^60 elements must be
    // rejected by the remaining-bytes validation, not attempted.
    let state = arb_state(14, 2, 3, 2, 1);
    let mut blob = encode(&state);
    // Payload starts at byte 28 (8 magic + 4 version + 8 len + 8 checksum);
    // the first fields are the 5 problem + 4 options fingerprint parts
    // (9 u64s), then nf as a length-ish u64 — overwrite nf with a huge
    // value and fix the checksum so only the shape validation can object.
    let payload_start = 28;
    let nf_off = payload_start + 8 * 9;
    blob[nf_off..nf_off + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    let payload = blob[payload_start..].to_vec();
    let sum = fnv64_ref(&payload);
    blob[20..28].copy_from_slice(&sum.to_le_bytes());
    assert!(decode(&blob).is_err(), "hostile length accepted");
}

/// Reference FNV-1a-64 (matches the codec's checksum).
fn fnv64_ref(bs: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bs {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "flexile-ckpt-test-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn filesystem_round_trip_is_atomic() {
    let dir = temp_dir("fsrt");
    let path = flexile_core::checkpoint::checkpoint_path(&dir);
    let state = arb_state(99, 4, 6, 5, 3);
    let bytes = write_checkpoint(&path, &state).expect("write");
    assert!(bytes > 0);
    // No temp file left behind; exactly the checkpoint itself.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").file_name())
        .collect();
    assert_eq!(entries, vec![std::ffi::OsString::from("flexile.ckpt")]);
    assert_eq!(read_checkpoint(&path).expect("read"), state);

    // Overwrite with a different state: the rename replaces atomically.
    let state2 = arb_state(100, 4, 6, 5, 3);
    write_checkpoint(&path, &state2).expect("rewrite");
    assert_eq!(read_checkpoint(&path).expect("reread"), state2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_is_io_error() {
    let dir = temp_dir("missing");
    let path = flexile_core::checkpoint::checkpoint_path(&dir);
    match read_checkpoint(&path) {
        Err(CheckpointError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}
