//! # flexile-core — percentile-loss traffic engineering
//!
//! The paper's primary contribution: minimize, for each traffic class `k`,
//! the maximum across flows of the β_k-th percentile of flow loss
//! (**PercLoss**), by choosing per-flow *critical scenarios* — the failure
//! states in which the flow's bandwidth objective must hold — and
//! prioritizing critical flows when allocating bandwidth online.
//!
//! Components (paper section in parentheses):
//!
//! * [`subproblem`] (§4.2) — the per-scenario LP `S_q` in the reformulated
//!   form (17)/(18) whose left-hand side is scenario-independent, so one
//!   template model is re-solved per scenario with only RHS changes and a
//!   warm-started basis; its duals yield the Benders cuts (21)/(22).
//! * [`master`] (§4.2) — the cut-collecting master problem (M) with the
//!   per-flow coverage constraint (3) and the Hamming-distance stabilizer
//!   (23); solved exactly by branch-and-bound on small instances and by
//!   LP-relaxation + per-flow greedy rounding on large ones.
//! * [`decomposition`] (§4.2, Algorithm 1) — the iteration loop with the
//!   connected-flow starting heuristic (Proposition 1), perfect-scenario and
//!   unchanged-critical-set pruning, and parallel subproblem solving.
//! * [`model`] (§4.1) — the monolithic MIP formulation (I), the paper's `IP`
//!   baseline for optimality-gap experiments (Fig. 14).
//! * [`online`] (§4.3) — the critical-flow-aware online allocation: reserve
//!   the offline-promised bandwidth of critical flows, then loss max-min for
//!   everything else with strict class priority and *joint* re-routing of
//!   higher classes.
//! * [`capacity`] (§4.4/appendix D) — minimum-cost capacity augmentation to
//!   meet PercLoss targets.
//! * [`checkpoint`] / [`killpoints`] — crash safety: versioned, checksummed
//!   snapshots of the decomposition state written at iteration boundaries
//!   (resumed by [`decompose_resume`]), and deterministic kill-points for
//!   chaos-testing the panic-contained scenario pool.
//! * [`dist`] — the elastic multi-process substrate: a coordinator that
//!   shards scenarios across worker processes over checksummed wire frames
//!   and survives worker death, hangs, and corruption while producing the
//!   same bits as the in-process pool ([`solve_flexile_dist`]).

#![warn(missing_docs)]

pub mod capacity;
pub mod checkpoint;
pub mod decomposition;
pub mod dist;
pub mod killpoints;
pub mod lexicographic;
pub mod master;
pub mod model;
pub mod online;
pub(crate) mod pool;
pub mod subproblem;

pub use checkpoint::{CheckpointError, CHECKPOINT_VERSION};
pub use decomposition::{
    decompose_resume, solve_flexile, DecompositionOptions, FlexileDesign, FlexileOptions,
    IterationStat, PoolPolicy,
};
pub use dist::{
    decompose_resume_dist, solve_flexile_dist, worker_entry, DistError, DistOptions, WorkerSpec,
};
pub use killpoints::{arm_from_env, to_env, DecompositionAborted, KillGuard, KillPoint, ANY_SCENARIO};
pub use pool::{PoolError, MAX_PANIC_RETRIES};
pub use lexicographic::{solve_flexile_lexicographic, LexicographicDesign};
pub use model::{solve_ip, IpOptions, IpResult};
pub use online::{
    carry_forward_losses, flexile_losses, flexile_losses_with_report, online_allocate,
    online_allocate_robust, proportional_share_losses, DegradationLevel, OnlineOutcome,
    OnlineRunReport,
};

/// Compensate for imperfect failure-probability prediction (§4.4): design
/// for a slightly higher target so that even if the predicted scenario
/// probabilities overestimate reality by a relative `error_margin`, the
/// scenarios selected still cover the true SLO target.
///
/// If predictions can overstate each scenario's probability by a factor of
/// up to `1 + error_margin`, covering `β'` of predicted mass guarantees at
/// least `β' / (1 + error_margin)` of true mass, so we design for
/// `β' = min(β · (1 + error_margin), 1)`.
pub fn inflate_beta(beta: f64, error_margin: f64) -> f64 {
    assert!((0.0..=1.0).contains(&beta));
    assert!(error_margin >= 0.0);
    (beta * (1.0 + error_margin)).min(1.0)
}

/// Resolve each class's design target β: explicit positive values pass
/// through; zero placeholders are filled with the largest feasible target
/// (`ScenarioSet::max_feasible_beta` over the class's tunnels), matching §6.
pub fn effective_betas(
    inst: &flexile_traffic::Instance,
    set: &flexile_scenario::ScenarioSet,
) -> Vec<f64> {
    inst.classes
        .iter()
        .enumerate()
        .map(|(k, c)| {
            if c.beta > 0.0 {
                c.beta
            } else {
                set.max_feasible_beta(&inst.tunnels[k])
            }
        })
        .collect()
}
