//! Persistent scenario-solve pool for the decomposition (§4.2).
//!
//! The reformulated subproblem `S_q` makes re-solving a scenario across
//! Benders iterations an **RHS-only** change: the criticality rows flip
//! between 0 and −1 and the capacity rows scale, while the LHS never moves.
//! That is exactly the memoization the bounded dual simplex was built for —
//! but it only pays off if each scenario's warm basis *survives* between
//! iterations and is never clobbered by a different scenario's RHS pattern.
//!
//! This module provides that state management:
//!
//! * **Per-scenario templates** — one long-lived [`SubproblemTemplate`] per
//!   scenario (γ-variant loss bounds included), so iteration `k+1` restarts
//!   scenario `q` from scenario `q`'s own optimal basis via the explicit
//!   dual-simplex RHS path ([`flexile_lp::solve_rhs_restart`]).
//! * **Persistent workers** — one `thread::scope` spans the *whole*
//!   decomposition; workers park on a condvar between iterations instead of
//!   being respawned, and iterations are dispatched as epochs.
//! * **Work stealing** — workers claim scenarios off a shared atomic cursor
//!   rather than static `skip/step_by` stripes, so one slow scenario no
//!   longer idles the other workers. Claims that deviate from the old static
//!   striping are counted as `flexile.steal`.
//! * **Bounded basis residency** — an LRU budget over the per-scenario
//!   templates (evicted only at iteration boundaries, oldest last-use first,
//!   ties broken by lower scenario index, so eviction — and therefore every
//!   solve's warm-start history — is deterministic regardless of thread
//!   count or timing). A residency of 0 is the cold-every-iteration policy.
//!
//! Determinism: scenario `q`'s solve sequence depends only on its own solve
//! history (its template is locked per solve and touched by no other
//! scenario), so the decomposition output is bit-identical across thread
//! counts and runs — unlike the legacy striping, where a chunk's template
//! was warm-started across *different* scenarios in thread-dependent order.

use crate::subproblem::{SolveStats, SubproblemSolution, SubproblemTemplate};
use flexile_lp::LpError;
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How the decomposition schedules and reuses subproblem solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Persistent pool, one warm template per scenario, work-stealing
    /// scheduler (the default).
    #[default]
    PerScenario,
    /// The pre-pool behavior: per-iteration threads with static striping and
    /// per-thread templates shared across that stripe's scenarios. Kept as
    /// an A/B escape hatch.
    LegacyStriped,
    /// No cross-iteration reuse at all: every iteration rebuilds and solves
    /// cold. Baseline for the `warm_restart` benchmark.
    Cold,
}

/// One scenario's outcome in an iteration.
pub(crate) type ScenResult = (usize, Result<(SubproblemSolution, SolveStats), LpError>);

/// Everything a worker needs to build and solve a scenario's subproblem.
pub(crate) struct PoolCtx<'a> {
    pub inst: &'a Instance,
    pub set: &'a ScenarioSet,
    /// γ-variant per-scenario loss bounds (§4.4); `None` for the plain form.
    pub loss_ub: Option<&'a [Vec<f64>]>,
}

impl PoolCtx<'_> {
    fn build_template(&self, q: usize) -> SubproblemTemplate {
        SubproblemTemplate::for_demand_factor(
            self.inst,
            self.loss_ub.map(|ub| ub[q].clone()),
            self.set.scenarios[q].demand_factor,
        )
    }
}

/// One decomposition iteration's worth of subproblem solving, abstracted so
/// the iteration loop is policy-independent.
pub(crate) trait IterationSolver {
    /// Solve every scenario in `todo` (ascending) with the matching
    /// criticality columns `cols[i]` for `todo[i]`. Returns one result per
    /// scenario, sorted by scenario index.
    fn solve_iteration(&mut self, todo: &[usize], cols: Vec<Vec<bool>>) -> Vec<ScenResult>;

    /// The decomposition will never solve `q` again (perfect-scenario
    /// pruning); release whatever is retained for it.
    fn retire(&mut self, q: usize);
}

/// An epoch's work order: scenarios plus their criticality columns, claimed
/// off a shared cursor.
struct Job {
    todo: Vec<usize>,
    cols: Vec<Vec<bool>>,
    cursor: AtomicUsize,
}

struct Ctl {
    /// Bumped once per dispatched iteration; workers wake on a change.
    epoch: u64,
    shutdown: bool,
    job: Option<Arc<Job>>,
    /// Scenarios of the current epoch not yet completed.
    remaining: usize,
    results: Vec<ScenResult>,
    /// Per-worker solve time (µs) within the current epoch, for the
    /// `flexile.subproblem_wait` idle-time histogram.
    worker_busy: Vec<u64>,
}

struct Shared {
    ctl: Mutex<Ctl>,
    work_cv: Condvar,
    done_cv: Condvar,
}

fn worker_loop(
    shared: &Shared,
    slots: &[Mutex<Option<SubproblemTemplate>>],
    ctx: &PoolCtx<'_>,
    id: usize,
    nworkers: usize,
) {
    let mut my_epoch = 0u64;
    loop {
        let job = {
            let mut g = shared.ctl.lock().expect("pool lock");
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch > my_epoch {
                    my_epoch = g.epoch;
                    // The job is installed before the epoch bump under the
                    // same lock, so it is always present here.
                    break g.job.clone().expect("job set with epoch");
                }
                g = shared.work_cv.wait(g).expect("pool lock");
            }
        };
        loop {
            let i = job.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.todo.len() {
                break;
            }
            if i % nworkers != id {
                flexile_obs::add("flexile.steal", 1);
            }
            let q = job.todo[i];
            let t0 = Instant::now();
            let res = {
                let mut slot = slots[q].lock().expect("scenario slot lock");
                let tmpl = slot.get_or_insert_with(|| ctx.build_template(q));
                let _sq = flexile_obs::span("flexile.subproblem", "flexile").field("scenario", q);
                tmpl.solve_with_stats(ctx.inst, &ctx.set.scenarios[q], &job.cols[i])
            };
            let busy = t0.elapsed().as_micros() as u64;
            let mut g = shared.ctl.lock().expect("pool lock");
            g.worker_busy[id] += busy;
            g.results.push((q, res));
            g.remaining -= 1;
            if g.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// The main thread's handle to the persistent pool.
struct PoolHandle<'a> {
    shared: &'a Shared,
    slots: &'a [Mutex<Option<SubproblemTemplate>>],
    residency: usize,
    /// Last iteration each scenario's template was used (0 = never/evicted).
    stamp: Vec<u64>,
    it: u64,
}

impl PoolHandle<'_> {
    /// Enforce the residency budget. Runs only at iteration boundaries (the
    /// workers are parked), so eviction order — oldest last-use first, ties
    /// by lower scenario index — never depends on scheduling.
    fn evict(&mut self) {
        let mut live: Vec<(u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.lock().expect("scenario slot lock").is_some())
            .map(|(q, _)| (self.stamp[q], q))
            .collect();
        if live.len() <= self.residency {
            return;
        }
        live.sort_unstable();
        let excess = live.len() - self.residency;
        for &(_, q) in live.iter().take(excess) {
            *self.slots[q].lock().expect("scenario slot lock") = None;
            self.stamp[q] = 0;
        }
    }
}

impl IterationSolver for PoolHandle<'_> {
    fn solve_iteration(&mut self, todo: &[usize], cols: Vec<Vec<bool>>) -> Vec<ScenResult> {
        self.it += 1;
        if todo.is_empty() {
            return Vec::new();
        }
        let wall0 = Instant::now();
        {
            let mut g = self.shared.ctl.lock().expect("pool lock");
            g.job = Some(Arc::new(Job {
                todo: todo.to_vec(),
                cols,
                cursor: AtomicUsize::new(0),
            }));
            g.epoch += 1;
            g.remaining = todo.len();
            g.results = Vec::with_capacity(todo.len());
            g.worker_busy.iter_mut().for_each(|b| *b = 0);
            self.shared.work_cv.notify_all();
        }
        let mut results = {
            let mut g = self.shared.ctl.lock().expect("pool lock");
            while g.remaining > 0 {
                g = self.shared.done_cv.wait(g).expect("pool lock");
            }
            std::mem::take(&mut g.results)
        };
        if flexile_obs::enabled() {
            let wall = wall0.elapsed().as_micros() as u64;
            let g = self.shared.ctl.lock().expect("pool lock");
            for &busy in &g.worker_busy {
                flexile_obs::observe("flexile.subproblem_wait", wall.saturating_sub(busy) as f64);
            }
        }
        results.sort_by_key(|&(q, _)| q);
        for &q in todo {
            self.stamp[q] = self.it;
        }
        self.evict();
        results
    }

    fn retire(&mut self, q: usize) {
        *self.slots[q].lock().expect("scenario slot lock") = None;
        self.stamp[q] = 0;
    }
}

/// Run `f` with a persistent scenario pool of `nworkers` threads and the
/// given basis-residency budget. Workers live exactly as long as `f`.
pub(crate) fn with_pool<R>(
    ctx: PoolCtx<'_>,
    nworkers: usize,
    residency: usize,
    f: impl FnOnce(&mut dyn IterationSolver) -> R,
) -> R {
    let nq = ctx.set.scenarios.len();
    let slots: Vec<Mutex<Option<SubproblemTemplate>>> = (0..nq).map(|_| Mutex::new(None)).collect();
    let shared = Shared {
        ctl: Mutex::new(Ctl {
            epoch: 0,
            shutdown: false,
            job: None,
            remaining: 0,
            results: Vec::new(),
            worker_busy: vec![0; nworkers],
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    std::thread::scope(|s| {
        for id in 0..nworkers {
            let shared = &shared;
            let slots = &slots;
            let ctx = &ctx;
            s.spawn(move || worker_loop(shared, slots, ctx, id, nworkers));
        }
        let mut handle = PoolHandle {
            shared: &shared,
            slots: &slots,
            residency,
            stamp: vec![0; nq],
            it: 0,
        };
        let r = f(&mut handle);
        shared.ctl.lock().expect("pool lock").shutdown = true;
        shared.work_cv.notify_all();
        r
    })
}

/// The pre-pool scheduling: per-iteration scoped threads, static striping,
/// one template per stripe warm-started across that stripe's (different!)
/// scenarios, everything dropped when the iteration ends. γ-variant solves
/// rebuild a template every time, as before.
pub(crate) struct LegacyStriped<'a> {
    pub ctx: PoolCtx<'a>,
    pub threads: usize,
}

impl IterationSolver for LegacyStriped<'_> {
    fn solve_iteration(&mut self, todo: &[usize], cols: Vec<Vec<bool>>) -> Vec<ScenResult> {
        if todo.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.max(1).min(todo.len());
        let ctx = &self.ctx;
        let cols = &cols;
        let mut results: Vec<ScenResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut tmpl: Option<SubproblemTemplate> = None;
                        let mut i = t;
                        while i < todo.len() {
                            let q = todo[i];
                            let scen = &ctx.set.scenarios[q];
                            let _sq = flexile_obs::span("flexile.subproblem", "flexile")
                                .field("scenario", q);
                            let res = match ctx.loss_ub {
                                Some(ub) => {
                                    let mut fresh = SubproblemTemplate::for_demand_factor(
                                        ctx.inst,
                                        Some(ub[q].clone()),
                                        scen.demand_factor,
                                    );
                                    fresh.solve_with_stats(ctx.inst, scen, &cols[i])
                                }
                                None => {
                                    let rebuild = tmpl
                                        .as_ref()
                                        .is_none_or(|t| !t.matches_factor(scen.demand_factor));
                                    if rebuild {
                                        tmpl = Some(SubproblemTemplate::for_demand_factor(
                                            ctx.inst,
                                            None,
                                            scen.demand_factor,
                                        ));
                                    }
                                    tmpl.as_mut()
                                        .expect("template built")
                                        .solve_with_stats(ctx.inst, scen, &cols[i])
                                }
                            };
                            out.push((q, res));
                            i += threads;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        results.sort_by_key(|&(q, _)| q);
        results
    }

    fn retire(&mut self, _q: usize) {}
}
