//! Persistent scenario-solve pool for the decomposition (§4.2).
//!
//! The reformulated subproblem `S_q` makes re-solving a scenario across
//! Benders iterations an **RHS-only** change: the criticality rows flip
//! between 0 and −1 and the capacity rows scale, while the LHS never moves.
//! That is exactly the memoization the bounded dual simplex was built for —
//! but it only pays off if each scenario's warm basis *survives* between
//! iterations and is never clobbered by a different scenario's RHS pattern.
//!
//! This module provides that state management:
//!
//! * **Per-scenario templates** — one long-lived [`SubproblemTemplate`] per
//!   scenario (γ-variant loss bounds included), so iteration `k+1` restarts
//!   scenario `q` from scenario `q`'s own optimal basis via the explicit
//!   dual-simplex RHS path ([`flexile_lp::solve_rhs_restart`]).
//! * **Persistent workers** — one `thread::scope` spans the *whole*
//!   decomposition; workers park on a condvar between iterations instead of
//!   being respawned, and iterations are dispatched as epochs.
//! * **Work stealing** — workers claim scenarios off a shared atomic cursor
//!   rather than static `skip/step_by` stripes, so one slow scenario no
//!   longer idles the other workers. Claims that deviate from the old static
//!   striping are counted as `flexile.steal`.
//! * **Bounded basis residency** — an LRU budget over the per-scenario
//!   templates (evicted only at iteration boundaries, oldest last-use first,
//!   ties broken by lower scenario index, so eviction — and therefore every
//!   solve's warm-start history — is deterministic regardless of thread
//!   count or timing). A residency of 0 is the cold-every-iteration policy.
//!
//! ## Crash safety
//!
//! A panic inside a subproblem solve is **contained**: the solve runs under
//! `catch_unwind`, the panicking scenario's template is *quarantined*
//! (dropped, so the next attempt rebuilds it cold), and the solve is
//! retried in place up to [`MAX_PANIC_RETRIES`] times. A scenario that
//! keeps panicking surfaces a typed [`PoolError::ScenarioPoisoned`] —
//! which the decomposition treats like any other failed solve (pessimistic
//! losses, retried next iteration) — instead of aborting the run. Every
//! lock acquisition recovers from mutex poisoning (a panicked worker leaves
//! each structure in a consistent state: templates are quarantined, queues
//! only ever append), so one contained panic cannot cascade into
//! process-wide `PoisonError` unwinding. Counted as
//! `flexile.worker_panic` / `flexile.scenario_quarantined`.
//!
//! For checkpointing, each slot additionally records the scenario's
//! **solve-column history** — the criticality columns successfully solved
//! since the template's last cold start. Replaying that chain through a
//! fresh template reconstructs the warm basis bit-for-bit (scenario solve
//! sequences are independent of each other by construction), which is how
//! [`crate::decompose_resume`] re-warms the pool without ever persisting a
//! basis.
//!
//! Determinism: scenario `q`'s solve sequence depends only on its own solve
//! history (its template is locked per solve and touched by no other
//! scenario), so the decomposition output is bit-identical across thread
//! counts and runs — unlike the legacy striping, where a chunk's template
//! was warm-started across *different* scenarios in thread-dependent order.

use crate::subproblem::{SolveStats, SubproblemSolution, SubproblemTemplate};
use flexile_lp::{LpError, RhsBatchMember, SolveScratch};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Contained panics tolerated per scenario *per dispatch* before the
/// scenario is reported as poisoned for the iteration.
pub const MAX_PANIC_RETRIES: u32 = 2;

/// How the decomposition schedules and reuses subproblem solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Persistent pool, one warm template per scenario, work-stealing
    /// scheduler (the default).
    #[default]
    PerScenario,
    /// The pre-pool behavior: per-iteration threads with static striping and
    /// per-thread templates shared across that stripe's scenarios. Kept as
    /// an A/B escape hatch.
    LegacyStriped,
    /// No cross-iteration reuse at all: every iteration rebuilds and solves
    /// cold. Baseline for the `warm_restart` benchmark.
    Cold,
}

/// Why a scenario's solve failed this iteration. Solver verdicts pass
/// through; the panic-containment variants carry which worker/scenario
/// failed and how, so nothing is lost when a worker dies.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// The LP itself failed (see [`LpError`] for the retry taxonomy).
    Solver(LpError),
    /// The scenario's solve panicked more than [`MAX_PANIC_RETRIES`] times
    /// in a row, each retry from a cold-rebuilt template. The scenario is
    /// skipped this iteration (pessimistic losses) and retried next round.
    ScenarioPoisoned {
        /// Scenario whose solves kept panicking.
        scenario: usize,
        /// Worker that performed the final attempt.
        worker: usize,
        /// Attempts made (initial + retries).
        attempts: u32,
        /// Panic payload of the final attempt, stringified.
        message: String,
    },
    /// A worker died outside the contained solve region (legacy scheduler
    /// only); the scenario's result was lost.
    WorkerPanicked {
        /// Scenario whose result was lost.
        scenario: usize,
        /// Worker (stripe index) that panicked.
        worker: usize,
        /// Panic payload, stringified.
        message: String,
    },
    /// A distributed worker process reported a solver failure over the
    /// wire; the original [`LpError`] is carried as text (wire frames do
    /// not round-trip the full error taxonomy). The decomposition treats
    /// it like any other failed solve.
    Remote {
        /// Scenario whose remote solve failed.
        scenario: usize,
        /// Worker-process slot that reported the failure.
        worker: usize,
        /// The remote error, stringified.
        message: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Solver(e) => write!(f, "subproblem solver error: {e}"),
            PoolError::ScenarioPoisoned { scenario, worker, attempts, message } => write!(
                f,
                "scenario {scenario} poisoned after {attempts} panicking attempts \
                 (last on worker {worker}): {message}"
            ),
            PoolError::WorkerPanicked { scenario, worker, message } => {
                write!(f, "worker {worker} panicked; scenario {scenario} lost: {message}")
            }
            PoolError::Remote { scenario, worker, message } => {
                write!(f, "remote worker {worker} failed scenario {scenario}: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl From<LpError> for PoolError {
    fn from(e: LpError) -> Self {
        PoolError::Solver(e)
    }
}

/// One scenario's outcome in an iteration.
pub(crate) type ScenResult = (usize, Result<(SubproblemSolution, SolveStats), PoolError>);

/// Acquire a mutex, recovering the inner value if a previous holder
/// panicked. Every structure guarded here stays consistent across a panic
/// (templates are quarantined by the containment path; control queues only
/// append), so propagating the poison would turn one contained fault into a
/// process-wide cascade.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything a worker needs to build and solve a scenario's subproblem.
pub(crate) struct PoolCtx<'a> {
    pub inst: &'a Instance,
    pub set: &'a ScenarioSet,
    /// γ-variant per-scenario loss bounds (§4.4); `None` for the plain form.
    pub loss_ub: Option<&'a [Vec<f64>]>,
    /// Watchdog deadline for the warm fast path (see
    /// [`SubproblemTemplate::solve_with_stats_watchdog`]).
    pub watchdog: Option<Duration>,
    /// Maximum scenarios dispatched as one shared-factorization batch unit
    /// (see [`crate::FlexileOptions::batch_width`]); `0`/`1` disables
    /// batching.
    pub batch_width: usize,
}

impl PoolCtx<'_> {
    fn build_template(&self, q: usize) -> SubproblemTemplate {
        SubproblemTemplate::for_demand_factor(
            self.inst,
            self.loss_ub.map(|ub| ub[q].clone()),
            self.set.scenarios[q].demand_factor,
        )
    }
}

/// Stamps + per-scenario solve chains, captured at an iteration boundary
/// for checkpointing and replayed on resume.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct PoolSnapshot {
    /// Last iteration each scenario's template was used (0 = never/evicted).
    pub stamps: Vec<u64>,
    /// Criticality columns successfully solved since each template's last
    /// cold start. Non-empty exactly for the templates resident at the
    /// boundary.
    pub chains: Vec<Vec<Vec<bool>>>,
}

/// One decomposition iteration's worth of subproblem solving, abstracted so
/// the iteration loop is policy-independent.
pub(crate) trait IterationSolver {
    /// Solve every scenario in `todo` (ascending) with the matching
    /// criticality columns `cols[i]` for `todo[i]`, as iteration `it`
    /// (1-based). Returns one result per scenario, sorted by scenario index.
    fn solve_iteration(&mut self, it: usize, todo: &[usize], cols: Vec<Vec<bool>>)
        -> Vec<ScenResult>;

    /// The decomposition will never solve `q` again (perfect-scenario
    /// pruning); release whatever is retained for it.
    fn retire(&mut self, q: usize);

    /// Capture the warm-state snapshot for checkpointing. Policies without
    /// replayable per-scenario state return an empty snapshot (resume then
    /// continues cold — still correct, just slower and, for the
    /// thread-timing-dependent legacy striping, not bit-reproducible).
    fn snapshot(&self) -> PoolSnapshot;

    /// Restore a snapshot taken at the end of iteration `it`: replay each
    /// scenario's solve chain to rebuild warm bases, and restore the LRU
    /// stamps. Default: nothing to restore.
    fn restore(&mut self, it: usize, snap: &PoolSnapshot);

    /// Iteration-boundary hook: the decomposition finished iteration `it`
    /// with incumbent penalty `penalty` and criticality proposal `z`. The
    /// in-process schedulers have nothing to do; the distributed
    /// coordinator broadcasts the cut-pool delta and incumbent to its
    /// workers here.
    fn iteration_complete(&mut self, _it: usize, _penalty: f64, _z: &[Vec<bool>]) {}
}

/// A scenario's pooled state: its long-lived template plus the solve-column
/// history that makes the template's warm basis reconstructible. Shared
/// with the distributed worker ([`crate::dist`]), which holds one slot per
/// scenario it hosts so its chain/quarantine semantics are bit-identical
/// to the in-process pool's.
#[derive(Default)]
pub(crate) struct Slot {
    pub(crate) tmpl: Option<SubproblemTemplate>,
    /// Columns successfully solved since `tmpl` was last built cold.
    pub(crate) history: Vec<Vec<bool>>,
}

/// An epoch's work order, claimed off a shared cursor.
enum JobWork {
    /// `cols[i]` is the criticality column for `todo[i]`.
    Solve(Vec<Vec<bool>>),
    /// `chains[i]` is a full solve-column chain for `todo[i]`, replayed
    /// sequentially to reconstruct the template's warm basis (results
    /// discarded by the caller).
    Replay(Vec<Vec<Vec<bool>>>),
}

struct Job {
    todo: Vec<usize>,
    work: JobWork,
    /// Dispatch units: each entry lists indices into `todo` claimed and
    /// solved together. Singletons go through the scalar path; longer
    /// units through the shared-factorization batch kernel. Planned by
    /// [`PoolHandle::plan_units`] before the epoch starts, so unit shapes
    /// never depend on worker timing.
    units: Vec<Vec<usize>>,
    cursor: AtomicUsize,
    /// Decomposition iteration (1-based) for kill-point checks; 0 for
    /// replay epochs, which never fire kill-points.
    it: usize,
}

struct Ctl {
    /// Bumped once per dispatched iteration; workers wake on a change.
    epoch: u64,
    shutdown: bool,
    job: Option<Arc<Job>>,
    /// Scenarios of the current epoch not yet completed.
    remaining: usize,
    results: Vec<ScenResult>,
    /// Per-worker solve time (µs) within the current epoch, for the
    /// `flexile.subproblem_wait` idle-time histogram.
    worker_busy: Vec<u64>,
}

struct Shared {
    ctl: Mutex<Ctl>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// One contained solve of scenario `q`: panics inside the
/// claim-template-and-solve region quarantine the template and retry from
/// cold, bounded by [`MAX_PANIC_RETRIES`].
pub(crate) fn solve_contained(
    slots: &[Mutex<Slot>],
    ctx: &PoolCtx<'_>,
    it: usize,
    q: usize,
    col: &[bool],
    worker: usize,
    scratch: &mut SolveScratch,
) -> Result<(SubproblemSolution, SolveStats), PoolError> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let scratch = &mut *scratch;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut slot = lock_recover(&slots[q]);
            let slot = &mut *slot;
            let rebuilt = slot.tmpl.is_none();
            let tmpl = slot.tmpl.get_or_insert_with(|| ctx.build_template(q));
            if it > 0 {
                crate::killpoints::maybe_fire_worker(it, q);
            }
            let _sq = flexile_obs::span("flexile.subproblem", "flexile").field("scenario", q);
            let res = tmpl.solve_with_stats_scratch(
                ctx.inst,
                &ctx.set.scenarios[q],
                col,
                ctx.watchdog,
                scratch,
            );
            if let Ok((_, stats)) = &res {
                // Maintain the replayable chain: a cold (re)build or a
                // watchdog cold-restart starts a fresh chain; every
                // successful solve extends it.
                if rebuilt || stats.watchdog_restart {
                    slot.history.clear();
                }
                slot.history.push(col.to_vec());
            }
            res
        }));
        match outcome {
            Ok(res) => return res.map_err(PoolError::Solver),
            Err(payload) => {
                flexile_obs::add("flexile.worker_panic", 1);
                flexile_obs::flight::dump("worker_panic");
                // Quarantine: whatever state the panic left the template
                // in, it is never used again. The next attempt (this retry
                // or a later iteration) rebuilds cold.
                {
                    let mut slot = lock_recover(&slots[q]);
                    slot.tmpl = None;
                    slot.history.clear();
                }
                flexile_obs::add("flexile.scenario_quarantined", 1);
                flexile_obs::flight::dump("scenario_quarantined");
                if attempts > MAX_PANIC_RETRIES {
                    return Err(PoolError::ScenarioPoisoned {
                        scenario: q,
                        worker,
                        attempts,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
}

/// Solve one multi-member batch unit through the shared-factorization
/// kernel ([`flexile_lp::solve_rhs_batch`]), committing each member on its
/// own template so the resulting state — warm bases, histories, cuts,
/// stats, counters — is bit-identical to running the members through the
/// scalar path in the same order.
///
/// The whole unit runs under one `catch_unwind`. A panic cannot be
/// attributed to a member (and may have left any locked template
/// half-updated), so containment quarantines *every* member and re-runs
/// each through [`solve_contained`], which rebuilds them cold with the
/// usual bounded retries. Kill-point-armed scenarios never reach this path
/// (planning routes them as singletons), so chaos runs exercise the exact
/// scalar containment they always did.
#[allow(clippy::too_many_arguments)]
fn solve_batch_contained(
    slots: &[Mutex<Slot>],
    ctx: &PoolCtx<'_>,
    it: usize,
    unit: &[usize],
    todo: &[usize],
    cols: &[Vec<bool>],
    worker: usize,
    scratch: &mut SolveScratch,
    out: &mut Vec<ScenResult>,
) {
    let qs: Vec<usize> = unit.iter().map(|&i| todo[i]).collect();
    let scratch_ref = &mut *scratch;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // Members are ascending (planning preserves `todo` order), so
        // locking in unit order cannot deadlock; each scenario belongs to
        // exactly one unit per epoch, so there is no contention either.
        let mut guards: Vec<MutexGuard<'_, Slot>> =
            qs.iter().map(|&q| lock_recover(&slots[q])).collect();
        // Planning checked residency + warm basis at epoch start and no
        // other unit touches these slots; a miss here means the plan went
        // stale (should not happen) — downgrade the unit to scalar solves.
        if guards
            .iter()
            .any(|g| g.tmpl.as_ref().is_none_or(|t| t.warm_basis_fingerprint().is_none()))
        {
            return None;
        }
        if it > 0 {
            for &q in &qs {
                crate::killpoints::maybe_fire_worker(it, q);
            }
        }
        flexile_obs::add("flexile.batch_dispatch", 1);
        let _sq =
            flexile_obs::span("flexile.subproblem_batch", "flexile").field("members", qs.len());
        // Install each member's RHS on its *own* template (so fallbacks see
        // exactly the scalar state) and snapshot RHS vectors + warm bases
        // for the shared solve.
        let k = qs.len();
        let (mut rhss, mut caps, mut warms) =
            (Vec::with_capacity(k), Vec::with_capacity(k), Vec::with_capacity(k));
        for (j, &i) in unit.iter().enumerate() {
            let tmpl = guards[j].tmpl.as_mut().expect("checked above");
            let (rhs, cap) = tmpl.batch_rhs(ctx.inst, &ctx.set.scenarios[qs[j]], &cols[i]);
            warms.push(tmpl.warm_basis().expect("checked above"));
            rhss.push(rhs);
            caps.push(cap);
        }
        let opts = SubproblemTemplate::warm_simplex_options();
        let members: Vec<RhsBatchMember<'_>> = rhss
            .iter()
            .zip(warms.iter())
            .map(|(rhs, warm)| RhsBatchMember { rhs, warm })
            .collect();
        // Any member's model is bit-equal (identical construction), so the
        // first member's serves as the execution engine for the unit.
        let lp_results = {
            let lead = guards[0].tmpl.as_mut().expect("checked above");
            lead.model_mut().solve_rhs_batch(&opts, &members, scratch_ref)
        };
        let mut res: Vec<ScenResult> = Vec::with_capacity(k);
        for (j, lp_res) in lp_results.into_iter().enumerate() {
            let i = unit[j];
            let slot = &mut *guards[j];
            let tmpl = slot.tmpl.as_mut().expect("checked above");
            let r = tmpl.commit_batch_outcome(lp_res, &cols[i], &caps[j]);
            if r.is_ok() {
                // Extend the replayable chain exactly as the scalar path
                // would: the template existed (not rebuilt) and no watchdog
                // runs here, so this is always a plain append.
                slot.history.push(cols[i].clone());
            }
            res.push((qs[j], r.map_err(PoolError::Solver)));
        }
        Some(res)
    }));
    match outcome {
        Ok(Some(res)) => out.extend(res),
        Ok(None) => {
            for &i in unit {
                let q = todo[i];
                out.push((q, solve_contained(slots, ctx, it, q, &cols[i], worker, scratch)));
            }
        }
        Err(payload) => {
            flexile_obs::add("flexile.worker_panic", 1);
            flexile_obs::flight::dump("worker_panic");
            drop(payload);
            for &q in &qs {
                let mut slot = lock_recover(&slots[q]);
                slot.tmpl = None;
                slot.history.clear();
            }
            flexile_obs::add("flexile.scenario_quarantined", qs.len() as u64);
            flexile_obs::flight::dump("scenario_quarantined");
            for &i in unit {
                let q = todo[i];
                out.push((q, solve_contained(slots, ctx, it, q, &cols[i], worker, scratch)));
            }
        }
    }
}

fn worker_loop(
    shared: &Shared,
    slots: &[Mutex<Slot>],
    ctx: &PoolCtx<'_>,
    id: usize,
    nworkers: usize,
) {
    let mut my_epoch = 0u64;
    // One scratch pool per worker: every solve this worker performs —
    // scalar, batch, replay, or containment retry — reuses the same simplex
    // work vectors (cleared and re-zeroed per solve, so bit-transparent).
    let mut scratch = SolveScratch::new();
    loop {
        let job = {
            let mut g = lock_recover(&shared.ctl);
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch > my_epoch {
                    my_epoch = g.epoch;
                    // The job is installed before the epoch bump under the
                    // same lock, so it is always present here.
                    match g.job.clone() {
                        Some(j) => break j,
                        None => return,
                    }
                }
                g = shared.work_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        };
        loop {
            let u = job.cursor.fetch_add(1, Ordering::Relaxed);
            if u >= job.units.len() {
                break;
            }
            if u % nworkers != id {
                flexile_obs::add("flexile.steal", 1);
            }
            let unit = &job.units[u];
            let t0 = Instant::now();
            let mut unit_results: Vec<ScenResult> = Vec::with_capacity(unit.len());
            match &job.work {
                JobWork::Solve(cols) => {
                    if unit.len() >= 2 {
                        solve_batch_contained(
                            slots,
                            ctx,
                            job.it,
                            unit,
                            &job.todo,
                            cols,
                            id,
                            &mut scratch,
                            &mut unit_results,
                        );
                    } else {
                        let i = unit[0];
                        let q = job.todo[i];
                        unit_results.push((
                            q,
                            solve_contained(slots, ctx, job.it, q, &cols[i], id, &mut scratch),
                        ));
                    }
                }
                JobWork::Replay(chains) => {
                    // Replay the whole chain; only the last result matters
                    // (and even it is discarded by restore). A failure
                    // mid-chain quarantines the slot: the continuation
                    // simply solves that scenario cold.
                    let i = unit[0];
                    let q = job.todo[i];
                    let mut last = Err(PoolError::Solver(LpError::IterationLimit));
                    for col in &chains[i] {
                        last = solve_contained(slots, ctx, 0, q, col, id, &mut scratch);
                        if last.is_err() {
                            let mut slot = lock_recover(&slots[q]);
                            slot.tmpl = None;
                            slot.history.clear();
                            break;
                        }
                    }
                    unit_results.push((q, last));
                }
            }
            let busy = t0.elapsed().as_micros() as u64;
            let mut g = lock_recover(&shared.ctl);
            g.worker_busy[id] += busy;
            let done = unit_results.len();
            g.results.append(&mut unit_results);
            g.remaining -= done;
            if g.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// The main thread's handle to the persistent pool.
struct PoolHandle<'a> {
    shared: &'a Shared,
    slots: &'a [Mutex<Slot>],
    ctx: &'a PoolCtx<'a>,
    residency: usize,
    /// Last iteration each scenario's template was used (0 = never/evicted).
    stamp: Vec<u64>,
    it: u64,
}

impl PoolHandle<'_> {
    /// Partition an epoch's scenarios into dispatch units: runs of
    /// consecutive batch-eligible scenarios sharing a demand factor,
    /// chunked to the batch width, everything else as singletons. Planned
    /// on the main thread while the workers are parked, from slot state
    /// that is itself deterministic, so unit shapes — and therefore every
    /// solve and counter the batches produce — are identical across thread
    /// counts and runs.
    ///
    /// A scenario is batch-eligible when its template is resident with a
    /// warm basis (a cold member gains nothing from a shared factorization
    /// — the escalation ladder builds it one rung at a time), no γ bounds
    /// or watchdog are in play (per-scenario variable bounds break the
    /// shared-LHS invariant; wall-clock deadlines are inherently scalar),
    /// and no kill-point is armed for it (a chaos fault must quarantine
    /// exactly the scenario it targets, not an arbitrary batch).
    fn plan_units(&self, it: usize, todo: &[usize]) -> Vec<Vec<usize>> {
        let width = self.ctx.batch_width;
        if width < 2 || self.ctx.watchdog.is_some() || self.ctx.loss_ub.is_some() {
            return (0..todo.len()).map(|i| vec![i]).collect();
        }
        let mut units: Vec<Vec<usize>> = Vec::new();
        let mut group: Vec<usize> = Vec::new();
        let mut group_factor = 0.0f64;
        for (i, &q) in todo.iter().enumerate() {
            let eligible = {
                let slot = lock_recover(&self.slots[q]);
                slot.tmpl.as_ref().is_some_and(|t| t.warm_basis_fingerprint().is_some())
            } && !crate::killpoints::armed_worker(it, q);
            if !eligible {
                if !group.is_empty() {
                    units.push(std::mem::take(&mut group));
                }
                units.push(vec![i]);
                continue;
            }
            let factor = self.ctx.set.scenarios[q].demand_factor;
            if !group.is_empty() && (factor - group_factor).abs() >= 1e-12 {
                units.push(std::mem::take(&mut group));
            }
            group_factor = factor;
            group.push(i);
            if group.len() == width {
                units.push(std::mem::take(&mut group));
            }
        }
        if !group.is_empty() {
            units.push(group);
        }
        units
    }

    /// Dispatch one epoch to the workers and wait for every result.
    fn run_epoch(
        &mut self,
        todo: Vec<usize>,
        work: JobWork,
        units: Vec<Vec<usize>>,
        it: usize,
    ) -> Vec<ScenResult> {
        let n = todo.len();
        let observe_wait = matches!(work, JobWork::Solve(_));
        let wall0 = Instant::now();
        {
            let mut g = lock_recover(&self.shared.ctl);
            g.job = Some(Arc::new(Job { todo, work, units, cursor: AtomicUsize::new(0), it }));
            g.epoch += 1;
            g.remaining = n;
            g.results = Vec::with_capacity(n);
            g.worker_busy.iter_mut().for_each(|b| *b = 0);
            self.shared.work_cv.notify_all();
        }
        let mut results = {
            let mut g = lock_recover(&self.shared.ctl);
            while g.remaining > 0 {
                g = self.shared.done_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            std::mem::take(&mut g.results)
        };
        if observe_wait && flexile_obs::enabled() {
            let wall = wall0.elapsed().as_micros() as u64;
            let g = lock_recover(&self.shared.ctl);
            for &busy in &g.worker_busy {
                flexile_obs::observe("flexile.subproblem_wait", wall.saturating_sub(busy) as f64);
            }
        }
        results.sort_by_key(|&(q, _)| q);
        results
    }

    /// Enforce the residency budget. Runs only at iteration boundaries (the
    /// workers are parked), so eviction order — oldest last-use first, ties
    /// by lower scenario index — never depends on scheduling.
    fn evict(&mut self) {
        let mut live: Vec<(u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| lock_recover(s).tmpl.is_some())
            .map(|(q, _)| (self.stamp[q], q))
            .collect();
        if live.len() <= self.residency {
            return;
        }
        live.sort_unstable();
        let excess = live.len() - self.residency;
        for &(_, q) in live.iter().take(excess) {
            let mut slot = lock_recover(&self.slots[q]);
            slot.tmpl = None;
            slot.history.clear();
            self.stamp[q] = 0;
        }
    }
}

impl IterationSolver for PoolHandle<'_> {
    fn solve_iteration(
        &mut self,
        it: usize,
        todo: &[usize],
        cols: Vec<Vec<bool>>,
    ) -> Vec<ScenResult> {
        self.it = it as u64;
        if todo.is_empty() {
            return Vec::new();
        }
        let units = self.plan_units(it, todo);
        if flexile_obs::enabled() {
            for unit in units.iter().filter(|u| u.len() >= 2) {
                flexile_obs::observe("flexile.batch_unit_width", unit.len() as f64);
            }
        }
        let results = self.run_epoch(todo.to_vec(), JobWork::Solve(cols), units, it);
        for &q in todo {
            self.stamp[q] = self.it;
        }
        self.evict();
        results
    }

    fn retire(&mut self, q: usize) {
        let mut slot = lock_recover(&self.slots[q]);
        slot.tmpl = None;
        slot.history.clear();
        self.stamp[q] = 0;
    }

    fn snapshot(&self) -> PoolSnapshot {
        // Only called at iteration boundaries (workers parked), so slot
        // contents are quiescent and consistent with `stamp`.
        PoolSnapshot {
            stamps: self.stamp.clone(),
            chains: self.slots.iter().map(|s| lock_recover(s).history.clone()).collect(),
        }
    }

    fn restore(&mut self, it: usize, snap: &PoolSnapshot) {
        self.it = it as u64;
        self.stamp = snap.stamps.clone();
        let todo: Vec<usize> =
            (0..self.slots.len()).filter(|&q| !snap.chains[q].is_empty()).collect();
        if todo.is_empty() {
            return;
        }
        let _sp = flexile_obs::span("flexile.rewarm", "flexile").field("scenarios", todo.len());
        let chains: Vec<Vec<Vec<bool>>> = todo.iter().map(|&q| snap.chains[q].clone()).collect();
        // Replay chains are strictly sequential per scenario: always
        // singleton units.
        let units: Vec<Vec<usize>> = (0..todo.len()).map(|i| vec![i]).collect();
        let results = self.run_epoch(todo, JobWork::Replay(chains), units, 0);
        let ok = results.iter().filter(|(_, r)| r.is_ok()).count();
        flexile_obs::add("flexile.rewarm", ok as u64);
        // Replay results are discarded: the checkpointed caches remain the
        // authoritative losses/cuts. Only the warm bases matter here.
    }
}

/// Run `f` with a persistent scenario pool of `nworkers` threads and the
/// given basis-residency budget. Workers live exactly as long as `f` —
/// including when `f` unwinds (e.g. an armed [`crate::killpoints`] abort
/// simulating process death): a drop guard flips the shutdown flag so the
/// scope join cannot deadlock on parked workers.
pub(crate) fn with_pool<R>(
    ctx: PoolCtx<'_>,
    nworkers: usize,
    residency: usize,
    f: impl FnOnce(&mut dyn IterationSolver) -> R,
) -> R {
    let nq = ctx.set.scenarios.len();
    let slots: Vec<Mutex<Slot>> = (0..nq).map(|_| Mutex::new(Slot::default())).collect();
    let shared = Shared {
        ctl: Mutex::new(Ctl {
            epoch: 0,
            shutdown: false,
            job: None,
            remaining: 0,
            results: Vec::new(),
            worker_busy: vec![0; nworkers],
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    struct ShutdownGuard<'a>(&'a Shared);
    impl Drop for ShutdownGuard<'_> {
        fn drop(&mut self) {
            lock_recover(&self.0.ctl).shutdown = true;
            self.0.work_cv.notify_all();
        }
    }
    std::thread::scope(|s| {
        for id in 0..nworkers {
            let shared = &shared;
            let slots = &slots;
            let ctx = &ctx;
            s.spawn(move || worker_loop(shared, slots, ctx, id, nworkers));
        }
        let mut handle = PoolHandle {
            shared: &shared,
            slots: &slots,
            ctx: &ctx,
            residency,
            stamp: vec![0; nq],
            it: 0,
        };
        let _shutdown = ShutdownGuard(&shared);
        f(&mut handle)
    })
}

/// The pre-pool scheduling: per-iteration scoped threads, static striping,
/// one template per stripe warm-started across that stripe's (different!)
/// scenarios, everything dropped when the iteration ends. γ-variant solves
/// rebuild a template every time, as before.
///
/// Panic containment here is quarantine-only (no in-place retry — the
/// stripe template's warm history is thread-timing-dependent anyway): a
/// panicking solve drops the stripe's template, reports
/// [`PoolError::WorkerPanicked`] for that scenario, and the stripe
/// continues. Should a worker die outside the contained region, its
/// completed results survive (they are pushed to a shared vector as they
/// finish) and each of its unfinished scenarios gets a typed error naming
/// the worker — the old `h.join().expect("worker panicked")` lost all of
/// that and aborted the process.
pub(crate) struct LegacyStriped<'a> {
    pub ctx: PoolCtx<'a>,
    pub threads: usize,
}

impl IterationSolver for LegacyStriped<'_> {
    fn solve_iteration(
        &mut self,
        it: usize,
        todo: &[usize],
        cols: Vec<Vec<bool>>,
    ) -> Vec<ScenResult> {
        if todo.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.max(1).min(todo.len());
        let ctx = &self.ctx;
        let cols = &cols;
        let results: Mutex<Vec<ScenResult>> = Mutex::new(Vec::with_capacity(todo.len()));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let results = &results;
                    s.spawn(move || {
                        let mut tmpl: Option<SubproblemTemplate> = None;
                        let mut scratch = SolveScratch::new();
                        let mut i = t;
                        while i < todo.len() {
                            let q = todo[i];
                            let scen = &ctx.set.scenarios[q];
                            let scratch = &mut scratch;
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                crate::killpoints::maybe_fire_worker(it, q);
                                let _sq = flexile_obs::span("flexile.subproblem", "flexile")
                                    .field("scenario", q);
                                match ctx.loss_ub {
                                    Some(ub) => {
                                        let mut fresh = SubproblemTemplate::for_demand_factor(
                                            ctx.inst,
                                            Some(ub[q].clone()),
                                            scen.demand_factor,
                                        );
                                        fresh.solve_with_stats_scratch(
                                            ctx.inst,
                                            scen,
                                            &cols[i],
                                            ctx.watchdog,
                                            scratch,
                                        )
                                    }
                                    None => {
                                        let rebuild = tmpl
                                            .as_ref()
                                            .is_none_or(|t| !t.matches_factor(scen.demand_factor));
                                        if rebuild {
                                            tmpl = Some(SubproblemTemplate::for_demand_factor(
                                                ctx.inst,
                                                None,
                                                scen.demand_factor,
                                            ));
                                        }
                                        tmpl.as_mut()
                                            .expect("template built")
                                            .solve_with_stats_scratch(
                                                ctx.inst,
                                                scen,
                                                &cols[i],
                                                ctx.watchdog,
                                                scratch,
                                            )
                                    }
                                }
                            }));
                            let res = match outcome {
                                Ok(r) => r.map_err(PoolError::Solver),
                                Err(payload) => {
                                    flexile_obs::add("flexile.worker_panic", 1);
                                    flexile_obs::flight::dump("worker_panic");
                                    // Quarantine the stripe template; later
                                    // scenarios of this stripe rebuild cold.
                                    tmpl = None;
                                    flexile_obs::add("flexile.scenario_quarantined", 1);
                                    flexile_obs::flight::dump("scenario_quarantined");
                                    Err(PoolError::WorkerPanicked {
                                        scenario: q,
                                        worker: t,
                                        message: panic_message(payload.as_ref()),
                                    })
                                }
                            };
                            lock_recover(results).push((q, res));
                            i += threads;
                        }
                    })
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    // The worker died outside the contained solve (should
                    // not happen; belt and braces). Synthesize a typed
                    // error for each of its unfinished scenarios.
                    let message = panic_message(payload.as_ref());
                    let mut g = lock_recover(&results);
                    let done: Vec<bool> = {
                        let mut mask = vec![false; todo.len()];
                        for (q, _) in g.iter() {
                            if let Some(j) = todo.iter().position(|&tq| tq == *q) {
                                mask[j] = true;
                            }
                        }
                        mask
                    };
                    let mut i = t;
                    while i < todo.len() {
                        if !done[i] {
                            g.push((
                                todo[i],
                                Err(PoolError::WorkerPanicked {
                                    scenario: todo[i],
                                    worker: t,
                                    message: message.clone(),
                                }),
                            ));
                        }
                        i += threads;
                    }
                }
            }
        });
        let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
        results.sort_by_key(|&(q, _)| q);
        results
    }

    fn retire(&mut self, _q: usize) {}

    fn snapshot(&self) -> PoolSnapshot {
        // No cross-iteration state: checkpoints carry empty chains and a
        // resume continues with cold templates.
        PoolSnapshot {
            stamps: vec![0; self.ctx.set.scenarios.len()],
            chains: vec![Vec::new(); self.ctx.set.scenarios.len()],
        }
    }

    fn restore(&mut self, _it: usize, _snap: &PoolSnapshot) {}
}
