//! The per-scenario subproblem `S_q` (§4.2) and its Benders cuts.
//!
//! `S_q` minimizes `Σ_k w_k α_k` subject to
//!
//! ```text
//! α_k ≥ l_f − 1 + z_fq                       (10)   [dual w_f]
//! Σ_t x_kt + d_f l_f ≥ d_f                   (17)
//! Σ_{t ∋ arc} x_kt ≤ c_arc · m_arc,q         (18)   [dual u_arc]
//! 0 ≤ l_f ≤ 1,  x ≥ 0,  0 ≤ α_k ≤ 1
//! ```
//!
//! The reformulation (17)/(18) keeps the **left-hand side identical for
//! every scenario** — failures only scale the capacity RHS and criticality
//! only shifts the (10) RHS. We exploit that exactly as the paper does:
//! one [`SubproblemTemplate`] is built per instance; solving scenario `q`
//! is two `set_rhs` sweeps plus a warm-started simplex run from the
//! previous scenario's optimal basis.
//!
//! LP duality gives the cut (21): with `w_f = ∂val/∂rhs₍₁₀₎` and
//! `u_a = ∂val/∂rhs₍₁₈₎`,
//!
//! ```text
//! val(S_{q'})(z) ≥ D + Σ_f w_f (z_{f,q'} − 1) + Σ_a u_a c_a m_{a,q'}
//! ```
//!
//! where `D` collects the z-independent dual terms. Evaluated at `q' = q`
//! this is tight (strong duality); evaluated at another scenario it is the
//! shared-dual-space cross cut (22).

use flexile_lp::{
    solve_robust, Basis, LpError, Model, RestartKind, RobustOptions, RowId, Sense, Solution,
    SolveBudget, SolveScratch, VarId,
};
use flexile_scenario::Scenario;
use flexile_traffic::Instance;

/// A Benders cut produced by one subproblem solve (eq. 21/22).
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    /// Duals of the criticality rows (10), one per flow; `≥ 0`.
    pub w: Vec<f64>,
    /// Duals of the capacity rows (18), one per arc; `≤ 0`.
    pub u: Vec<f64>,
    /// The z- and capacity-independent constant `D`.
    pub d_const: f64,
}

impl Cut {
    /// Evaluate the cut's lower bound on `val(S_q)` for a scenario with the
    /// given criticality column `z[f]` and per-arc capacity `cap_arc[a]`
    /// (already scaled by the scenario's capacity factors).
    pub fn eval(&self, z: &[f64], cap_arc: &[f64]) -> f64 {
        let mut v = self.d_const;
        for (f, &w) in self.w.iter().enumerate() {
            v += w * (z[f] - 1.0);
        }
        for (a, &u) in self.u.iter().enumerate() {
            if u != 0.0 {
                v += u * cap_arc[a];
            }
        }
        v
    }
}

/// Per-solve accounting from [`SubproblemTemplate::solve_with_stats`]: how
/// the warm basis was (or wasn't) reused and what the solve cost. The
/// decomposition's scenario pool aggregates these into the
/// `flexile.scenario_warm_hit/miss` and `flexile.dual_restart` counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// A saved basis existed and produced the solution (either still primal
    /// feasible, or repaired by the dual simplex).
    pub warm_hit: bool,
    /// The warm reuse specifically went through dual-simplex RHS repair.
    pub dual_restart: bool,
    /// Simplex iterations across every attempt of this solve (restart plus
    /// any ladder fallback).
    pub iterations: usize,
    /// The warm fast path blew its watchdog deadline and the solve was
    /// cold-restarted through the ladder. The pool uses this to reset the
    /// scenario's replayable solve chain: after a watchdog restart the
    /// template's basis descends from a cold solve of *this* column only.
    pub watchdog_restart: bool,
}

/// Result of solving one subproblem.
#[derive(Debug, Clone)]
pub struct SubproblemSolution {
    /// Optimal `Σ_k w_k α_k` for the scenario.
    pub value: f64,
    /// Per-class `α_k` (max critical-flow loss of the class).
    pub alpha: Vec<f64>,
    /// Per-flow losses chosen by the LP (meaningful for critical flows;
    /// non-critical flows are unconstrained here — the online phase
    /// allocates their real bandwidth).
    pub loss: Vec<f64>,
    /// The Benders cut.
    pub cut: Cut,
}

/// Reusable template for `S_q`: built once, re-solved per scenario with RHS
/// updates and basis warm starts.
pub struct SubproblemTemplate {
    model: Model,
    /// The demand factor the template was built for (§4.4 TM scenarios).
    demand_factor: f64,
    /// Criticality rows (10), one per flow.
    crit_rows: Vec<RowId>,
    /// Capacity rows (18) and the arcs they bound.
    cap_rows: Vec<(usize, RowId)>,
    alpha_vars: Vec<VarId>,
    l_vars: Vec<VarId>,
    num_flows: usize,
    num_arcs: usize,
    warm: Option<Basis>,
    /// Per-flow loss upper bound override (γ-variant, §4.4); 1.0 default.
    loss_ub: Vec<f64>,
}

impl SubproblemTemplate {
    /// Build the scenario-independent template for an instance.
    ///
    /// `class_weights` are the `w_k`; `loss_ub[f]` optionally tightens the
    /// loss bound of flow `f` (the §4.4 γ knob); pass `None` for the plain
    /// formulation.
    pub fn new(inst: &Instance, loss_ub: Option<Vec<f64>>) -> Self {
        Self::for_demand_factor(inst, loss_ub, 1.0)
    }

    /// Build the template for a specific demand factor (the §4.4
    /// traffic-matrix generalization scales every `d_f` by the scenario's
    /// factor, which enters the (17) coefficients, so each factor needs its
    /// own template).
    pub fn for_demand_factor(inst: &Instance, loss_ub: Option<Vec<f64>>, factor: f64) -> Self {
        assert!(factor > 0.0);
        let nf = inst.num_flows();
        let na = inst.num_arcs();
        let loss_ub = loss_ub.unwrap_or_else(|| vec![1.0; nf]);
        assert_eq!(loss_ub.len(), nf);
        let mut m = Model::new(Sense::Min);
        let alpha_vars: Vec<VarId> = inst
            .classes
            .iter()
            .enumerate()
            .map(|(k, c)| m.add_var(&format!("alpha_{k}"), 0.0, 1.0, c.weight))
            .collect();
        let l_vars: Vec<VarId> = (0..nf)
            .map(|f| m.add_var(&format!("l_{f}"), 0.0, loss_ub[f], 0.0))
            .collect();
        // Criticality rows (10): alpha_k - l_f >= z - 1 (RHS set per scenario).
        let mut crit_rows = Vec::with_capacity(nf);
        for f in 0..nf {
            let k = inst.flow_class(f);
            crit_rows.push(m.add_row_ge(&[(alpha_vars[k], 1.0), (l_vars[f], -1.0)], 0.0));
        }
        // Tunnel variables + demand rows (17) + arc terms.
        let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); na];
        for k in 0..inst.num_classes() {
            for p in 0..inst.num_pairs() {
                let f = inst.flow_index(k, p);
                let d = inst.demands[k][p] * factor;
                let mut coeffs: Vec<(VarId, f64)> = Vec::new();
                for (t, path) in inst.tunnels[k].tunnels[p].iter().enumerate() {
                    let v = m.add_var(&format!("x_{k}_{p}_{t}"), 0.0, f64::INFINITY, 0.0);
                    for a in inst.arc_ids(path) {
                        arc_terms[a].push((v, 1.0));
                    }
                    coeffs.push((v, 1.0));
                }
                if d > 0.0 {
                    coeffs.push((l_vars[f], d));
                    m.add_row_ge(&coeffs, d);
                }
            }
        }
        // Capacity rows (18); RHS set per scenario.
        let mut cap_rows = Vec::new();
        for (a, terms) in arc_terms.into_iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let r = m.add_row_le(&terms, inst.arc_capacity(a));
            cap_rows.push((a, r));
        }
        SubproblemTemplate {
            model: m,
            demand_factor: factor,
            crit_rows,
            cap_rows,
            alpha_vars,
            l_vars,
            num_flows: nf,
            num_arcs: na,
            warm: None,
            loss_ub,
        }
    }

    /// Solve `S_q` for `scen` with criticality column `z[f] ∈ {0,1}`.
    pub fn solve(
        &mut self,
        inst: &Instance,
        scen: &Scenario,
        z: &[bool],
    ) -> Result<SubproblemSolution, LpError> {
        self.solve_with_stats(inst, scen, z).map(|(sol, _)| sol)
    }

    /// [`Self::solve`], additionally reporting how the solve restarted.
    ///
    /// When a warm basis is saved from a previous solve of this template, the
    /// only thing that changed since is the RHS (criticality flips and
    /// capacity scaling — the §4.2 reformulation guarantees the LHS is
    /// scenario-independent), so the solve first goes through the explicit
    /// [`flexile_lp::solve_rhs_restart`] dual path. A retryable failure there
    /// falls back to the full [`solve_robust`] escalation ladder.
    pub fn solve_with_stats(
        &mut self,
        inst: &Instance,
        scen: &Scenario,
        z: &[bool],
    ) -> Result<(SubproblemSolution, SolveStats), LpError> {
        self.solve_with_stats_watchdog(inst, scen, z, None)
    }

    /// [`Self::solve_with_stats`] with an optional **watchdog deadline** on
    /// the warm fast path.
    ///
    /// The only rung that can stall unboundedly in wall-clock terms is the
    /// warm dual-restart (a pathological basis chain can cycle through
    /// near-degenerate pivots); the cold ladder ends in a Bland-rule rung
    /// with a termination guarantee. So the watchdog arms a deadline on the
    /// warm path only: if it expires, the saved basis is quarantined
    /// (dropped), `flexile.watchdog_restart` is counted, and the solve
    /// cold-restarts through the full [`solve_robust`] ladder with no
    /// deadline. `None` preserves the exact historical behavior.
    ///
    /// Note the watchdog makes solve outcomes wall-clock dependent, so
    /// bit-identity guarantees (across runs, and for checkpoint resume)
    /// hold unconditionally only with the watchdog disabled.
    pub fn solve_with_stats_watchdog(
        &mut self,
        inst: &Instance,
        scen: &Scenario,
        z: &[bool],
        watchdog: Option<std::time::Duration>,
    ) -> Result<(SubproblemSolution, SolveStats), LpError> {
        let mut scratch = SolveScratch::new();
        self.solve_with_stats_scratch(inst, scen, z, watchdog, &mut scratch)
    }

    /// [`Self::solve_with_stats_watchdog`] with caller-owned solver scratch.
    ///
    /// The pool threads one [`SolveScratch`] through every solve a worker
    /// performs, so the per-iteration simplex work vectors are allocated
    /// once per worker instead of once per scenario solve. Scratch reuse is
    /// bit-transparent: a recycled buffer is cleared and re-zeroed to the
    /// exact length a fresh allocation would have.
    pub fn solve_with_stats_scratch(
        &mut self,
        inst: &Instance,
        scen: &Scenario,
        z: &[bool],
        watchdog: Option<std::time::Duration>,
        scratch: &mut SolveScratch,
    ) -> Result<(SubproblemSolution, SolveStats), LpError> {
        self.check_scenario(scen, z);
        let cap_arc = self.install_rhs(inst, scen, z);
        let rb = Self::robust_opts();
        // Warm fast path: the explicit dual RHS-restart, optionally under
        // the watchdog deadline (the cold ladder below runs deadline-free —
        // its Bland rung terminates provably).
        let first = self.warm.as_ref().map(|warm| {
            let warm_budget = match watchdog {
                Some(w) => rb.budget.and_timeout(w),
                None => rb.budget,
            };
            self.model.solve_rhs_restart_with(&warm_budget.simplex_options(), warm, scratch)
        });
        let (sol, stats) = self.resolve_outcome(first, watchdog, &rb)?;
        Ok(self.commit(sol, stats, z, &cap_arc))
    }

    fn check_scenario(&self, scen: &Scenario, z: &[bool]) {
        assert_eq!(z.len(), self.num_flows);
        assert!(
            (scen.demand_factor - self.demand_factor).abs() < 1e-12,
            "scenario demand factor {} does not match template factor {};              build a template with `for_demand_factor`",
            scen.demand_factor,
            self.demand_factor
        );
    }

    /// Install `scen`/`z` into the template's RHS (criticality flips and
    /// capacity scaling — the only things that change per scenario) and
    /// return the scaled per-arc capacities for cut extraction.
    fn install_rhs(&mut self, inst: &Instance, scen: &Scenario, z: &[bool]) -> Vec<f64> {
        for (f, &r) in self.crit_rows.iter().enumerate() {
            self.model.set_rhs(r, if z[f] { 0.0 } else { -1.0 });
        }
        let mut cap_arc = vec![0.0; self.num_arcs];
        for &(a, r) in &self.cap_rows {
            let cap = inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)];
            cap_arc[a] = cap;
            self.model.set_rhs(r, cap);
        }
        cap_arc
    }

    /// Robust ladder with a generous iteration budget: warm fast path
    /// first, then the cold / safe-mode / perturbation rungs. Presolve
    /// stays off: the Benders cuts are built from this solve's dual
    /// vector, and the cut stream must be bit-identical regardless of
    /// which presolve reductions would have fired (warm-started solves
    /// skip presolve anyway, so this only pins down the cold rungs).
    fn robust_opts() -> RobustOptions {
        RobustOptions {
            budget: SolveBudget::with_max_iters(2_000_000),
            presolve: false,
            ..Default::default()
        }
    }

    /// Continue a warm fast-path outcome (`Some`) or a cold start (`None`)
    /// through the escalation ladder. This is the single authority on the
    /// retry taxonomy — the scalar path and every batch member's
    /// commit/fallback go through it, which is what keeps the batched pool
    /// bit- and counter-identical to the scalar one.
    fn resolve_outcome(
        &mut self,
        first: Option<Result<(Solution, RestartKind), LpError>>,
        watchdog: Option<std::time::Duration>,
        rb: &RobustOptions,
    ) -> Result<(Solution, SolveStats), LpError> {
        match first {
            Some(Ok((sol, kind))) => {
                let stats = SolveStats {
                    warm_hit: kind != RestartKind::Cold,
                    dual_restart: kind == RestartKind::DualRestart,
                    iterations: sol.iterations,
                    watchdog_restart: false,
                };
                Ok((sol, stats))
            }
            // Retryable failures escalate through the full ladder
            // (which retries the warm basis first, then colder modes).
            Some(Err(LpError::Numerical(_) | LpError::IterationLimit)) => {
                let out = solve_robust(&self.model, rb, self.warm.as_ref());
                let iterations = out.report.total_iterations();
                Ok((out.result?, SolveStats { iterations, ..Default::default() }))
            }
            // The armed watchdog fired: the warm basis is presumed
            // pathological. Quarantine it and cold-restart through
            // the ladder.
            Some(Err(LpError::DeadlineExceeded)) if watchdog.is_some() => {
                self.warm = None;
                flexile_obs::add("flexile.watchdog_restart", 1);
                flexile_obs::flight::dump("watchdog_restart");
                let out = solve_robust(&self.model, rb, None);
                let iterations = out.report.total_iterations();
                Ok((
                    out.result?,
                    SolveStats { iterations, watchdog_restart: true, ..Default::default() },
                ))
            }
            // Verdicts about the model (infeasible, unbounded) and
            // deadline exhaustion are terminal.
            Some(Err(e)) => Err(e),
            None => {
                let out = solve_robust(&self.model, rb, None);
                let iterations = out.report.total_iterations();
                Ok((out.result?, SolveStats { iterations, ..Default::default() }))
            }
        }
    }

    /// Save the warm basis and extract the cut — the tail every successful
    /// solve (scalar or batch member) runs.
    fn commit(
        &mut self,
        sol: Solution,
        stats: SolveStats,
        z: &[bool],
        cap_arc: &[f64],
    ) -> (SubproblemSolution, SolveStats) {
        self.warm = Some(sol.basis.clone());
        (self.extract(&sol, z, cap_arc), stats)
    }

    fn extract(&self, sol: &Solution, z: &[bool], cap_arc: &[f64]) -> SubproblemSolution {
        let alpha: Vec<f64> = self.alpha_vars.iter().map(|&v| sol.value(v)).collect();
        let loss: Vec<f64> = self.l_vars.iter().map(|&v| sol.value(v)).collect();
        // Cut extraction.
        let w: Vec<f64> = self
            .crit_rows
            .iter()
            .map(|&r| sol.dual(r).max(0.0))
            .collect();
        let mut u = vec![0.0; self.num_arcs];
        for &(a, r) in &self.cap_rows {
            u[a] = sol.dual(r).min(0.0);
        }
        // D = value - Σ_f w_f (z_f - 1) - Σ_a u_a cap_a(q).
        let mut d_const = sol.objective;
        for (f, &wf) in w.iter().enumerate() {
            d_const -= wf * (if z[f] { 0.0 } else { -1.0 });
        }
        for (a, &ua) in u.iter().enumerate() {
            d_const -= ua * cap_arc[a];
        }
        SubproblemSolution {
            value: sol.objective,
            alpha,
            loss,
            cut: Cut { w, u, d_const },
        }
    }

    /// Prepare this template as a batch member: install the scenario's RHS
    /// into the template's **own** model — so a divergence fallback or
    /// ladder rung sees exactly the state the scalar path would — and
    /// return the full RHS vector (handed to
    /// [`flexile_lp::solve_rhs_batch`]) plus the scaled per-arc capacities
    /// for cut extraction at commit time.
    pub(crate) fn batch_rhs(
        &mut self,
        inst: &Instance,
        scen: &Scenario,
        z: &[bool],
    ) -> (Vec<f64>, Vec<f64>) {
        self.check_scenario(scen, z);
        let cap_arc = self.install_rhs(inst, scen, z);
        (self.model.rhs_values().to_vec(), cap_arc)
    }

    /// The saved warm basis, cloned. Batch dispatch snapshots member warms
    /// up front so the shared solve borrows no template.
    pub(crate) fn warm_basis(&self) -> Option<Basis> {
        self.warm.clone()
    }

    /// The simplex options of the (watchdog-free) warm fast path. The
    /// batch kernel must run under exactly the options the scalar restart
    /// would, or the solves stop being comparable bit-for-bit.
    pub(crate) fn warm_simplex_options() -> flexile_lp::SimplexOptions {
        Self::robust_opts().budget.simplex_options()
    }

    /// The template's model, used as the shared execution engine when this
    /// template leads a batch. Templates of a batch are built by identical
    /// code on identical inputs, so any member's model produces bit-equal
    /// factorizations; the batch entry restores the model's RHS on return.
    pub(crate) fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Commit one member's outcome from a shared batch solve, reproducing
    /// the scalar path bit-for-bit: an `Ok` lands exactly like a scalar
    /// warm hit, an error continues through the same escalation ladder on
    /// this member's own model (whose RHS [`Self::batch_rhs`] installed).
    /// Batch dispatch requires the watchdog disabled, so no watchdog arm
    /// applies here.
    pub(crate) fn commit_batch_outcome(
        &mut self,
        outcome: Result<(Solution, RestartKind), LpError>,
        z: &[bool],
        cap_arc: &[f64],
    ) -> Result<(SubproblemSolution, SolveStats), LpError> {
        let rb = Self::robust_opts();
        let (sol, stats) = self.resolve_outcome(Some(outcome), None, &rb)?;
        Ok(self.commit(sol, stats, z, cap_arc))
    }

    /// The per-flow loss upper bounds in effect (γ variant).
    pub fn loss_bounds(&self) -> &[f64] {
        &self.loss_ub
    }

    /// Fingerprint of the saved warm basis, if any (see
    /// [`flexile_lp::Basis::fingerprint`]). The crash tests use this to
    /// prove that replaying a checkpointed solve chain reconstructs the
    /// *exact* basis state of an uninterrupted run.
    pub fn warm_basis_fingerprint(&self) -> Option<u64> {
        self.warm.as_ref().map(|b| b.fingerprint())
    }

    /// Drop the saved warm basis: the next solve starts cold. Used by the
    /// pool when quarantining a template after a contained panic.
    pub fn clear_warm_basis(&mut self) {
        self.warm = None;
    }

    /// Whether this template was built for the given demand factor.
    pub fn matches_factor(&self, factor: f64) -> bool {
        (self.demand_factor - factor).abs() < 1e-12
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions, ScenarioSet};
    use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};
    use flexile_traffic::{ClassConfig, Instance};

    pub(crate) fn fig1_instance() -> Instance {
        let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
        let tunnels = TunnelSet::build(&topo, &pairs, TunnelClass::SingleClass);
        Instance {
            topo,
            pairs,
            classes: vec![ClassConfig::single()],
            tunnels: vec![tunnels],
            demands: vec![vec![1.0, 1.0]],
        }
    }

    pub(crate) fn fig1_scenarios() -> ScenarioSet {
        let inst = fig1_instance();
        let units = link_units(&inst.topo, &[0.01, 0.01, 0.01]);
        enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        )
    }

    #[test]
    fn all_alive_all_critical_is_lossless() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let mut t = SubproblemTemplate::new(&inst, None);
        let s = t.solve(&inst, &set.scenarios[0], &[true, true]).unwrap();
        assert!(s.value < 1e-7, "value {}", s.value);
        assert!(s.loss.iter().all(|&l| l < 1e-6));
    }

    #[test]
    fn critical_flow_prioritized_on_failure() {
        // Link A-B fails. With only f1 (A->B) critical, it gets the whole
        // A-C-B detour: zero loss. f2 is non-critical and unconstrained.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, None);
        let s = t.solve(&inst, scen, &[true, false]).unwrap();
        assert!(s.value < 1e-7, "critical f1 should be lossless, value {}", s.value);
        assert!(s.loss[0] < 1e-6);
    }

    #[test]
    fn both_critical_on_failure_forces_half_loss() {
        // Link A-B fails; both critical: the Fig. 2 bottleneck gives 0.5.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, None);
        let s = t.solve(&inst, scen, &[true, true]).unwrap();
        assert!((s.value - 0.5).abs() < 1e-6, "value {}", s.value);
    }

    #[test]
    fn cut_is_tight_at_generation_point() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, None);
        let s = t.solve(&inst, scen, &[true, true]).unwrap();
        let cap_arc: Vec<f64> = (0..inst.num_arcs())
            .map(|a| inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)])
            .collect();
        let g = s.cut.eval(&[1.0, 1.0], &cap_arc);
        assert!((g - s.value).abs() < 1e-6, "cut {g} vs value {}", s.value);
    }

    #[test]
    fn cut_underestimates_other_z() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, None);
        let s_full = t.solve(&inst, scen, &[true, true]).unwrap();
        let cap_arc: Vec<f64> = (0..inst.num_arcs())
            .map(|a| inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)])
            .collect();
        // Evaluate the (z=11) cut at z=(1,0): must lower-bound the true value.
        let bound = s_full.cut.eval(&[1.0, 0.0], &cap_arc);
        let mut t2 = SubproblemTemplate::new(&inst, None);
        let s_partial = t2.solve(&inst, scen, &[true, false]).unwrap();
        assert!(bound <= s_partial.value + 1e-6, "bound {bound} vs {}", s_partial.value);
    }

    #[test]
    fn warm_start_across_scenarios() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let mut t = SubproblemTemplate::new(&inst, None);
        let z = vec![true, true];
        let mut total_iters = 0;
        for scen in &set.scenarios {
            let _ = t.solve(&inst, scen, &z).unwrap();
            total_iters += 1;
        }
        assert_eq!(total_iters, 8);
    }

    #[test]
    fn gamma_bound_limits_noncritical_loss() {
        // With loss_ub = 0.6 for f2, even when non-critical its loss stays
        // bounded; the subproblem remains feasible on single failures.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let mut t = SubproblemTemplate::new(&inst, Some(vec![1.0, 0.6]));
        let s = t.solve(&inst, scen, &[true, false]).unwrap();
        assert!(s.loss[1] <= 0.6 + 1e-9);
        // f1 critical still gets priority but f2 must now receive ≥ 0.4:
        // capacity A-C = 1 shared by f1's detour (1.0) and f2 (0.4) exceeds
        // 1, so f1's loss rises.
        assert!(s.value > 0.1, "gamma bound must cost the critical flow: {}", s.value);
    }
}
