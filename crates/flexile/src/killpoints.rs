//! Deterministic kill-points for crash-safety testing of the decomposition.
//!
//! A kill-point is an armed, process-global fault that fires exactly once
//! when the decomposition reaches a specific place:
//!
//! * [`KillPoint::Worker`] panics inside a pool worker right before it
//!   solves scenario `scenario` in iteration `iteration` — exercising the
//!   `catch_unwind` containment, template quarantine, and bounded-retry
//!   machinery of [`crate::pool`].
//! * [`KillPoint::Abort`] unwinds the *whole* decomposition out of
//!   iteration `iteration` (after the subproblem fan-out, before any state
//!   for that iteration lands), simulating process death mid-run. The
//!   panic payload is a [`DecompositionAborted`] so harnesses can tell an
//!   armed abort from a genuine bug; callers catch it with
//!   `std::panic::catch_unwind` and then resume from the last checkpoint.
//!
//! Arming is global to the process, so tests that use kill-points must
//! serialize on a lock (the crash-test suites do). [`arm`] returns a guard
//! that disarms on drop, which keeps a failing test from leaking armed
//! faults into the next one. Disarmed cost is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// One deterministic fault, consumed the first time it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Panic a pool worker at scenario `scenario` of iteration `iteration`
    /// (1-based, matching [`crate::IterationStat::iteration`]). The panic
    /// is contained by the pool.
    Worker {
        /// Iteration in which the worker panics.
        iteration: usize,
        /// Scenario whose solve panics.
        scenario: usize,
    },
    /// Unwind the decomposition itself out of iteration `iteration`,
    /// simulating a process crash. Not contained — callers catch it.
    Abort {
        /// Iteration in which the decomposition dies.
        iteration: usize,
    },
    /// Abort the whole *worker process* (`std::process::abort`) right
    /// before it solves `scenario` in `iteration` — the distributed
    /// equivalent of SIGKILL mid-solve. `scenario == ANY_SCENARIO` fires
    /// on the first assignment the worker processes for that iteration.
    /// Armed inside worker processes via [`to_env`]/[`arm_from_env`].
    ProcExit {
        /// Iteration in which the worker process dies.
        iteration: usize,
        /// Scenario whose assignment kills the process ([`ANY_SCENARIO`]
        /// for "the first one").
        scenario: usize,
    },
    /// Hang the distributed worker at the first assignment of `iteration`:
    /// heartbeats stop and the main loop sleeps forever, so the
    /// coordinator's deadline machinery must detect the stall, kill the
    /// process, and reassign its scenarios.
    HeartbeatStall {
        /// Iteration in which the worker hangs.
        iteration: usize,
    },
    /// Corrupt the checksum of the worker's result frame for
    /// `(iteration, scenario)` on the wire, exercising the coordinator's
    /// frame validation and drop-the-connection containment.
    FrameCorrupt {
        /// Iteration of the corrupted result frame.
        iteration: usize,
        /// Scenario of the corrupted result frame ([`ANY_SCENARIO`] for
        /// "the first one").
        scenario: usize,
    },
}

/// Wildcard scenario for [`KillPoint::ProcExit`] / [`KillPoint::FrameCorrupt`]:
/// matches the first assignment the worker processes in the given
/// iteration, so process-death chaos does not need to predict which
/// scenarios land on which worker.
pub const ANY_SCENARIO: usize = usize::MAX;

/// Panic payload of a fired [`KillPoint::Abort`].
#[derive(Debug, Clone, Copy)]
pub struct DecompositionAborted {
    /// Iteration at which the armed abort fired.
    pub iteration: usize,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Vec<KillPoint>> = Mutex::new(Vec::new());

fn armed_list() -> std::sync::MutexGuard<'static, Vec<KillPoint>> {
    // A kill-point panics *while this lock is released* (fire() drops the
    // guard before panicking), but a test thread can still die between
    // arm/disarm; recover rather than cascade.
    ARMED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Disarms the kill-points it guards when dropped.
#[must_use = "dropping the guard disarms the kill-points"]
pub struct KillGuard(());

impl Drop for KillGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm a set of kill-points (appending to any already armed). Each entry
/// fires at most once; duplicate entries fire once each, which is how the
/// retry-exhaustion tests poison a scenario.
pub fn arm(points: &[KillPoint]) -> KillGuard {
    let mut g = armed_list();
    g.extend_from_slice(points);
    ANY_ARMED.store(!g.is_empty(), Ordering::Release);
    KillGuard(())
}

/// Disarm everything, returning the kill-points that never fired.
pub fn disarm() -> Vec<KillPoint> {
    let mut g = armed_list();
    ANY_ARMED.store(false, Ordering::Release);
    std::mem::take(&mut *g)
}

/// Consume one matching entry, if armed.
fn fire(p: KillPoint) -> bool {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    let mut g = armed_list();
    match g.iter().position(|&a| a == p) {
        Some(i) => {
            g.remove(i);
            ANY_ARMED.store(!g.is_empty(), Ordering::Release);
            true
        }
        None => false,
    }
}

/// Worker-side check; panics (contained by the pool) when armed for
/// `(iteration, scenario)`.
pub(crate) fn maybe_fire_worker(iteration: usize, scenario: usize) {
    if fire(KillPoint::Worker { iteration, scenario }) {
        panic!("chaos kill-point: worker panic at iteration {iteration}, scenario {scenario}");
    }
}

/// Non-consuming probe: is a worker kill-point armed for
/// `(iteration, scenario)`? Batch dispatch uses this to route armed
/// scenarios as singleton units, so a chaos panic quarantines exactly the
/// scenario it was armed for instead of an arbitrary batch. Disarmed cost
/// stays one relaxed atomic load.
pub(crate) fn armed_worker(iteration: usize, scenario: usize) -> bool {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    armed_list().contains(&KillPoint::Worker { iteration, scenario })
}

/// Decomposition-side check; unwinds with [`DecompositionAborted`] when
/// armed for `iteration`.
pub(crate) fn maybe_fire_abort(iteration: usize) {
    if fire(KillPoint::Abort { iteration }) {
        std::panic::panic_any(DecompositionAborted { iteration });
    }
}

/// Worker-process check; aborts the process when a [`KillPoint::ProcExit`]
/// is armed for `(iteration, scenario)` or `(iteration, ANY_SCENARIO)`.
pub(crate) fn maybe_fire_proc_exit(iteration: usize, scenario: usize) {
    if fire(KillPoint::ProcExit { iteration, scenario })
        || fire(KillPoint::ProcExit { iteration, scenario: ANY_SCENARIO })
    {
        eprintln!("chaos kill-point: worker process abort at iteration {iteration}");
        std::process::abort();
    }
}

/// Worker-process check; consumes an armed [`KillPoint::HeartbeatStall`]
/// for `iteration` and reports whether the worker should hang.
pub(crate) fn fire_heartbeat_stall(iteration: usize) -> bool {
    fire(KillPoint::HeartbeatStall { iteration })
}

/// Worker-process check; consumes an armed [`KillPoint::FrameCorrupt`] for
/// `(iteration, scenario)` (or the wildcard) and reports whether the
/// result frame's checksum should be corrupted.
pub(crate) fn fire_frame_corrupt(iteration: usize, scenario: usize) -> bool {
    fire(KillPoint::FrameCorrupt { iteration, scenario })
        || fire(KillPoint::FrameCorrupt { iteration, scenario: ANY_SCENARIO })
}

/// Serialize kill-points for crossing a process boundary (the coordinator
/// arms worker-side chaos through the `FLEXILE_DIST_CHAOS` environment
/// variable). Inverse of [`arm_from_env`].
pub fn to_env(points: &[KillPoint]) -> String {
    let scen = |s: usize| {
        if s == ANY_SCENARIO { "*".to_string() } else { s.to_string() }
    };
    points
        .iter()
        .map(|p| match *p {
            KillPoint::Worker { iteration, scenario } => format!("worker:{iteration}:{}", scen(scenario)),
            KillPoint::Abort { iteration } => format!("abort:{iteration}"),
            KillPoint::ProcExit { iteration, scenario } => format!("exit:{iteration}:{}", scen(scenario)),
            KillPoint::HeartbeatStall { iteration } => format!("stall:{iteration}"),
            KillPoint::FrameCorrupt { iteration, scenario } => format!("corrupt:{iteration}:{}", scen(scenario)),
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parse a [`to_env`] encoding and arm the kill-points it carries.
/// Malformed entries are reported as an error (a chaos harness with a typo
/// must fail loudly, not silently run fault-free).
pub fn arm_from_env(spec: &str) -> Result<KillGuard, String> {
    let mut points = Vec::new();
    for entry in spec.split(';').filter(|e| !e.is_empty()) {
        let mut f = entry.split(':');
        let kind = f.next().unwrap_or("");
        let it: usize = f
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad kill-point iteration in {entry:?}"))?;
        let scenario = |f: &mut std::str::Split<'_, char>| -> Result<usize, String> {
            match f.next() {
                Some("*") => Ok(ANY_SCENARIO),
                Some(v) => v.parse().map_err(|_| format!("bad kill-point scenario in {entry:?}")),
                None => Err(format!("missing kill-point scenario in {entry:?}")),
            }
        };
        let p = match kind {
            "worker" => KillPoint::Worker { iteration: it, scenario: scenario(&mut f)? },
            "abort" => KillPoint::Abort { iteration: it },
            "exit" => KillPoint::ProcExit { iteration: it, scenario: scenario(&mut f)? },
            "stall" => KillPoint::HeartbeatStall { iteration: it },
            "corrupt" => KillPoint::FrameCorrupt { iteration: it, scenario: scenario(&mut f)? },
            _ => return Err(format!("unknown kill-point kind in {entry:?}")),
        };
        if f.next().is_some() {
            return Err(format!("trailing fields in kill-point {entry:?}"));
        }
        points.push(p);
    }
    Ok(arm(&points))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: this module's tests hold one lock so parallel
    // execution cannot interleave arms. (Other suites arming kill-points
    // live in separate test binaries, i.e. separate processes.)
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn fires_once_and_disarms() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let guard = arm(&[KillPoint::Worker { iteration: 1, scenario: 3 }]);
        assert!(!fire(KillPoint::Worker { iteration: 1, scenario: 2 }));
        assert!(fire(KillPoint::Worker { iteration: 1, scenario: 3 }));
        assert!(!fire(KillPoint::Worker { iteration: 1, scenario: 3 }), "consumed");
        drop(guard);
        assert!(disarm().is_empty());
    }

    #[test]
    fn guard_disarms_unfired_points() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let _g = arm(&[KillPoint::Abort { iteration: 7 }]);
        }
        assert!(!fire(KillPoint::Abort { iteration: 7 }), "guard drop must disarm");
    }

    #[test]
    fn env_round_trip_arms_process_faults() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let points = [
            KillPoint::ProcExit { iteration: 2, scenario: ANY_SCENARIO },
            KillPoint::HeartbeatStall { iteration: 3 },
            KillPoint::FrameCorrupt { iteration: 4, scenario: 7 },
            KillPoint::Worker { iteration: 1, scenario: 0 },
        ];
        let spec = to_env(&points);
        let guard = arm_from_env(&spec).expect("well-formed spec");
        assert!(fire_heartbeat_stall(3));
        assert!(!fire_heartbeat_stall(3), "consumed");
        assert!(fire_frame_corrupt(4, 7));
        assert!(fire(KillPoint::ProcExit { iteration: 2, scenario: ANY_SCENARIO }));
        drop(guard);
        assert!(disarm().is_empty());
        assert!(arm_from_env("exit:bogus").is_err());
        assert!(arm_from_env("nonsense:1:2").is_err());
        disarm();
    }

    #[test]
    fn duplicates_fire_once_each() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let p = KillPoint::Worker { iteration: 2, scenario: 0 };
        let _g = arm(&[p, p]);
        assert!(fire(p));
        assert!(fire(p));
        assert!(!fire(p));
    }
}
