//! Deterministic kill-points for crash-safety testing of the decomposition.
//!
//! A kill-point is an armed, process-global fault that fires exactly once
//! when the decomposition reaches a specific place:
//!
//! * [`KillPoint::Worker`] panics inside a pool worker right before it
//!   solves scenario `scenario` in iteration `iteration` — exercising the
//!   `catch_unwind` containment, template quarantine, and bounded-retry
//!   machinery of [`crate::pool`].
//! * [`KillPoint::Abort`] unwinds the *whole* decomposition out of
//!   iteration `iteration` (after the subproblem fan-out, before any state
//!   for that iteration lands), simulating process death mid-run. The
//!   panic payload is a [`DecompositionAborted`] so harnesses can tell an
//!   armed abort from a genuine bug; callers catch it with
//!   `std::panic::catch_unwind` and then resume from the last checkpoint.
//!
//! Arming is global to the process, so tests that use kill-points must
//! serialize on a lock (the crash-test suites do). [`arm`] returns a guard
//! that disarms on drop, which keeps a failing test from leaking armed
//! faults into the next one. Disarmed cost is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// One deterministic fault, consumed the first time it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Panic a pool worker at scenario `scenario` of iteration `iteration`
    /// (1-based, matching [`crate::IterationStat::iteration`]). The panic
    /// is contained by the pool.
    Worker {
        /// Iteration in which the worker panics.
        iteration: usize,
        /// Scenario whose solve panics.
        scenario: usize,
    },
    /// Unwind the decomposition itself out of iteration `iteration`,
    /// simulating a process crash. Not contained — callers catch it.
    Abort {
        /// Iteration in which the decomposition dies.
        iteration: usize,
    },
}

/// Panic payload of a fired [`KillPoint::Abort`].
#[derive(Debug, Clone, Copy)]
pub struct DecompositionAborted {
    /// Iteration at which the armed abort fired.
    pub iteration: usize,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Vec<KillPoint>> = Mutex::new(Vec::new());

fn armed_list() -> std::sync::MutexGuard<'static, Vec<KillPoint>> {
    // A kill-point panics *while this lock is released* (fire() drops the
    // guard before panicking), but a test thread can still die between
    // arm/disarm; recover rather than cascade.
    ARMED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Disarms the kill-points it guards when dropped.
#[must_use = "dropping the guard disarms the kill-points"]
pub struct KillGuard(());

impl Drop for KillGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm a set of kill-points (appending to any already armed). Each entry
/// fires at most once; duplicate entries fire once each, which is how the
/// retry-exhaustion tests poison a scenario.
pub fn arm(points: &[KillPoint]) -> KillGuard {
    let mut g = armed_list();
    g.extend_from_slice(points);
    ANY_ARMED.store(!g.is_empty(), Ordering::Release);
    KillGuard(())
}

/// Disarm everything, returning the kill-points that never fired.
pub fn disarm() -> Vec<KillPoint> {
    let mut g = armed_list();
    ANY_ARMED.store(false, Ordering::Release);
    std::mem::take(&mut *g)
}

/// Consume one matching entry, if armed.
fn fire(p: KillPoint) -> bool {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    let mut g = armed_list();
    match g.iter().position(|&a| a == p) {
        Some(i) => {
            g.remove(i);
            ANY_ARMED.store(!g.is_empty(), Ordering::Release);
            true
        }
        None => false,
    }
}

/// Worker-side check; panics (contained by the pool) when armed for
/// `(iteration, scenario)`.
pub(crate) fn maybe_fire_worker(iteration: usize, scenario: usize) {
    if fire(KillPoint::Worker { iteration, scenario }) {
        panic!("chaos kill-point: worker panic at iteration {iteration}, scenario {scenario}");
    }
}

/// Non-consuming probe: is a worker kill-point armed for
/// `(iteration, scenario)`? Batch dispatch uses this to route armed
/// scenarios as singleton units, so a chaos panic quarantines exactly the
/// scenario it was armed for instead of an arbitrary batch. Disarmed cost
/// stays one relaxed atomic load.
pub(crate) fn armed_worker(iteration: usize, scenario: usize) -> bool {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return false;
    }
    armed_list().contains(&KillPoint::Worker { iteration, scenario })
}

/// Decomposition-side check; unwinds with [`DecompositionAborted`] when
/// armed for `iteration`.
pub(crate) fn maybe_fire_abort(iteration: usize) {
    if fire(KillPoint::Abort { iteration }) {
        std::panic::panic_any(DecompositionAborted { iteration });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: this module's tests hold one lock so parallel
    // execution cannot interleave arms. (Other suites arming kill-points
    // live in separate test binaries, i.e. separate processes.)
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn fires_once_and_disarms() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let guard = arm(&[KillPoint::Worker { iteration: 1, scenario: 3 }]);
        assert!(!fire(KillPoint::Worker { iteration: 1, scenario: 2 }));
        assert!(fire(KillPoint::Worker { iteration: 1, scenario: 3 }));
        assert!(!fire(KillPoint::Worker { iteration: 1, scenario: 3 }), "consumed");
        drop(guard);
        assert!(disarm().is_empty());
    }

    #[test]
    fn guard_disarms_unfired_points() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let _g = arm(&[KillPoint::Abort { iteration: 7 }]);
        }
        assert!(!fire(KillPoint::Abort { iteration: 7 }), "guard drop must disarm");
    }

    #[test]
    fn duplicates_fire_once_each() {
        let _s = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let p = KillPoint::Worker { iteration: 2, scenario: 0 };
        let _g = arm(&[p, p]);
        assert!(fire(p));
        assert!(fire(p));
        assert!(!fire(p));
    }
}
