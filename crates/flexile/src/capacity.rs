//! Minimum-cost capacity augmentation to meet flow percentile targets
//! (§4.4 and appendix D).
//!
//! Instead of minimizing PercLoss on a fixed network, constrain each class
//! to `PercLoss_k ≤ target_k` and minimize `Σ_e w_e δ_e`, where `δ_e` is
//! capacity added to link `e`. The §3 example shows why this matters:
//! ScenBest/Teavar need every Fig.-1 link doubled to meet the 99% objective
//! while Flexile needs no augmentation at all.
//!
//! The implementation augments the monolithic formulation (I), so it is
//! exact but sized for small design studies (the paper positions it as a
//! planning generalization, not a per-failure operation). An optional fixed
//! cost per augmented link turns the model into the appendix's fixed-charge
//! variant with indicator binaries.

use flexile_lp::{solve_mip, MipOptions, MipStatus, Model, Sense, VarId};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::time::Duration;

/// Cost model for augmentation.
#[derive(Debug, Clone)]
pub struct AugmentCost {
    /// Per-unit capacity cost per link (defaults to 1.0 for every link).
    pub unit: Vec<f64>,
    /// Optional fixed charge applied to every augmented link.
    pub fixed: Option<f64>,
    /// Upper bound on the augmentation of one link (multiples of its
    /// base capacity).
    pub max_multiple: f64,
}

impl AugmentCost {
    /// Uniform unit costs, no fixed charge.
    pub fn uniform(num_links: usize) -> Self {
        AugmentCost { unit: vec![1.0; num_links], fixed: None, max_multiple: 4.0 }
    }
}

/// Result of the augmentation study.
#[derive(Debug, Clone)]
pub struct AugmentResult {
    /// Added capacity per link.
    pub delta: Vec<f64>,
    /// Total cost.
    pub cost: f64,
    /// Whether the MIP proved optimality.
    pub optimal: bool,
}

/// Find the cheapest capacity augmentation such that every class `k` can
/// achieve `PercLoss_k ≤ targets[k]`. Returns `None` when infeasible even
/// at the augmentation cap.
pub fn augment_capacity(
    inst: &Instance,
    set: &ScenarioSet,
    targets: &[f64],
    cost: &AugmentCost,
    time_limit: Duration,
) -> Option<AugmentResult> {
    assert_eq!(targets.len(), inst.num_classes());
    assert_eq!(cost.unit.len(), inst.topo.num_links());
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let betas = crate::effective_betas(inst, set);

    let mut m = Model::new(Sense::Min);
    // δ per link; fixed-charge indicators when requested.
    let delta: Vec<VarId> = inst
        .topo
        .links()
        .map(|(id, link)| {
            m.add_var(
                &format!("delta_{}", id.index()),
                0.0,
                cost.max_multiple * link.capacity,
                cost.unit[id.index()],
            )
        })
        .collect();
    if let Some(fc) = cost.fixed {
        for (id, link) in inst.topo.links() {
            let a = m.add_binary(&format!("aug_{}", id.index()), fc);
            // delta_e <= ub * a_e
            m.add_row_le(
                &[(delta[id.index()], 1.0), (a, -cost.max_multiple * link.capacity)],
                0.0,
            );
        }
    }

    // z / l / α with α fixed to the targets via bounds.
    let alpha: Vec<VarId> = targets
        .iter()
        .enumerate()
        .map(|(k, &t)| m.add_var(&format!("alpha_{k}"), 0.0, t.clamp(0.0, 1.0), 0.0))
        .collect();
    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; nq]; nf];
    let mut l: Vec<Vec<VarId>> = vec![Vec::with_capacity(nq); nf];
    for f in 0..nf {
        let k = inst.flow_class(f);
        let p = inst.flow_pair(f);
        for (q, scen) in set.scenarios.iter().enumerate() {
            let lv = m.add_var(&format!("l_{f}_{q}"), 0.0, 1.0, 0.0);
            l[f].push(lv);
            if inst.tunnels[k].pair_alive(p, &scen.dead_mask()) {
                let zv = m.add_binary(&format!("z_{f}_{q}"), 0.0);
                z[f][q] = Some(zv);
                m.add_row_ge(&[(alpha[k], 1.0), (lv, -1.0), (zv, -1.0)], -1.0);
            }
        }
    }
    for f in 0..nf {
        let k = inst.flow_class(f);
        let coeffs: Vec<(VarId, f64)> = (0..nq)
            .filter_map(|q| z[f][q].map(|v| (v, set.scenarios[q].prob)))
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        let avail: f64 = coeffs.iter().map(|c| c.1).sum();
        if avail + 1e-12 < betas[k] {
            // Even full augmentation cannot connect the flow often enough.
            return None;
        }
        m.add_row_ge(&coeffs, betas[k]);
    }
    // Routing blocks with augmentable capacity:
    // Σ x − factor · δ_link ≤ c · factor.
    for (q, scen) in set.scenarios.iter().enumerate() {
        let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
        for k in 0..inst.num_classes() {
            for p in 0..inst.num_pairs() {
                let f = inst.flow_index(k, p);
                let d = inst.demands[k][p];
                if d <= 0.0 {
                    continue;
                }
                let mut coeffs: Vec<(VarId, f64)> = Vec::new();
                for (t, path) in inst.tunnels[k].tunnels[p].iter().enumerate() {
                    let v = m.add_var(&format!("x_{k}_{p}_{t}_{q}"), 0.0, f64::INFINITY, 0.0);
                    for a in inst.arc_ids(path) {
                        arc_terms[a].push((v, 1.0));
                    }
                    coeffs.push((v, 1.0));
                }
                coeffs.push((l[f][q], d));
                m.add_row_ge(&coeffs, d);
            }
        }
        for (a, terms) in arc_terms.into_iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let link = inst.arc_link(a);
            let factor = scen.cap_factor[link];
            let mut coeffs = terms;
            if factor > 0.0 {
                coeffs.push((delta[link], -factor));
            }
            m.add_row_le(&coeffs, inst.arc_capacity(a) * factor);
        }
    }

    let r = solve_mip(
        &m,
        &MipOptions { max_nodes: 20_000, time_limit, ..MipOptions::default() },
    )
    .ok()?;
    if r.x.is_empty() || r.status == MipStatus::Infeasible {
        return None;
    }
    let d: Vec<f64> = delta.iter().map(|&v| r.x[v.index()].max(0.0)).collect();
    Some(AugmentResult { delta: d, cost: r.objective, optimal: r.status == MipStatus::Optimal })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};

    #[test]
    fn fig1_needs_no_augmentation_for_flexile() {
        // §3: to meet the 99% one-unit objective, Flexile's flexible
        // criticality needs zero extra capacity on the Fig. 1 triangle.
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        let set = fig1_scenarios();
        let r = augment_capacity(
            &inst,
            &set,
            &[0.0],
            &AugmentCost::uniform(3),
            Duration::from_secs(30),
        )
        .expect("augmentation model should be feasible");
        assert!(r.cost < 1e-6, "no augmentation needed, got cost {}", r.cost);
    }

    #[test]
    fn tighter_beta_requires_augmentation() {
        // At β = 0.995 every single-failure scenario must be critical for
        // both flows (no subset of two singles reaches 0.995), so both
        // flows contend for the same links and capacity must grow.
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.995;
        let set = fig1_scenarios();
        let r = augment_capacity(
            &inst,
            &set,
            &[0.0],
            &AugmentCost::uniform(3),
            Duration::from_secs(60),
        )
        .expect("feasible with augmentation");
        assert!(r.cost > 0.1, "expected positive augmentation, got {}", r.cost);
    }

    #[test]
    fn impossible_connectivity_is_none() {
        // Target beyond any augmentation: β larger than the connected mass.
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.9999999;
        let set = fig1_scenarios();
        // With only 8 enumerated scenarios the connectable mass caps out;
        // requesting more coverage than exists must return None... the
        // all-scenarios mass is 1.0 here, so instead drop scenarios:
        let mut small = set.clone();
        small.scenarios.truncate(1); // only the no-failure state (p≈0.97)
        let r = augment_capacity(
            &inst,
            &small,
            &[0.0],
            &AugmentCost::uniform(3),
            Duration::from_secs(10),
        );
        assert!(r.is_none());
    }
}
