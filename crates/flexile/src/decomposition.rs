//! Flexile's offline decomposition (Algorithm 1, §4.2).
//!
//! Iterates between the per-scenario subproblems (which, given a proposed
//! criticality assignment, route traffic and emit Benders cuts) and the
//! master (which re-proposes criticality). Problem-specific accelerations
//! from the paper:
//!
//! * **Starting heuristic** — `z_fq = 1` iff flow `f` has a live tunnel in
//!   scenario `q`. Proposition 1: the very first iterate is already at
//!   least as good as Teavar or ScenBest.
//! * **Perfect-scenario pruning** — a scenario solved to penalty 0 with
//!   every connected flow critical can never contribute a binding cut and
//!   is skipped in later iterations.
//! * **Unchanged-criticality pruning** — a scenario whose critical-flow set
//!   did not change since its last solve is skipped; its cached cut and
//!   losses remain valid.
//! * **Persistent scenario-solve pool** — subproblems run on a pool of
//!   workers that lives for the whole decomposition (see [`crate::pool`]):
//!   one warm template *per scenario* so iteration `k+1` dual-restarts from
//!   iteration `k`'s basis of the *same* scenario (the shared dual space /
//!   warm-start trick of the reformulated `S_q`, finally applied across
//!   iterations), with a work-stealing scheduler and a bounded
//!   basis-residency budget. [`PoolPolicy`] selects the legacy per-thread
//!   striping or a cold-every-iteration baseline for A/B comparison.
//!
//! Each iteration yields a full routing, so an *incumbent* penalty is
//! evaluated exactly (sort per-flow losses, take β quantiles); the best
//! incumbent across iterations is returned, along with per-iteration
//! statistics for the Fig. 14 convergence experiment.

use crate::master::{solve_master, CutPool, MasterOptions};
use crate::pool::{with_pool, IterationSolver, LegacyStriped, PoolCtx};
use crate::subproblem::{SubproblemSolution, SubproblemTemplate};
use flexile_metrics::{perc_loss, LossMatrix};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;

pub use crate::pool::PoolPolicy;

/// Alias emphasizing that these options configure the offline decomposition
/// (scheduling policy, residency budget, master knobs).
pub type DecompositionOptions = FlexileOptions;

/// Options for the offline decomposition.
#[derive(Debug, Clone)]
pub struct FlexileOptions {
    /// Maximum master/subproblem iterations (paper: 5).
    pub max_iterations: usize,
    /// Worker threads for subproblem solving (paper: 10).
    pub threads: usize,
    /// Master configuration.
    pub master: MasterOptions,
    /// Optional §4.4 γ: bound each flow's loss in every scenario to
    /// `γ + optimal ScenLoss(q)`. Requires per-scenario optimal losses,
    /// computed on demand (single-class instances only).
    pub gamma: Option<f64>,
    /// Enable perfect-scenario / unchanged-criticality pruning (§4.2).
    /// Disabled only by the ablation benchmarks.
    pub prune: bool,
    /// Subproblem scheduling / basis-reuse policy (see [`PoolPolicy`]).
    pub pool: PoolPolicy,
    /// Maximum scenario templates (and their warm bases) kept resident
    /// between iterations under [`PoolPolicy::PerScenario`]; LRU beyond
    /// this. Deliberately generous: a template is small next to the
    /// scenario set itself.
    pub basis_residency: usize,
}

impl Default for FlexileOptions {
    fn default() -> Self {
        FlexileOptions {
            max_iterations: 5,
            threads: 10,
            master: MasterOptions::default(),
            gamma: None,
            prune: true,
            pool: PoolPolicy::default(),
            basis_residency: 4096,
        }
    }
}

/// Statistics of one decomposition iteration (Fig. 14 / Fig. 15 inputs).
#[derive(Debug, Clone)]
pub struct IterationStat {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Exact penalty of this iteration's incumbent routing.
    pub penalty: f64,
    /// Subproblems actually solved (not pruned).
    pub solved: usize,
    /// Subproblems skipped by pruning.
    pub pruned: usize,
    /// Total simplex iterations across this iteration's subproblem solves
    /// (every attempt, restart or ladder fallback).
    pub lp_iterations: usize,
    /// Solves that reused a saved basis (primal-warm or dual restart).
    pub warm_hits: usize,
    /// Warm reuses that specifically went through dual-simplex RHS repair.
    pub dual_restarts: usize,
}

/// The offline design produced by the decomposition.
#[derive(Debug, Clone)]
pub struct FlexileDesign {
    /// Critical-scenario assignment `critical[f][q]` of the best incumbent.
    pub critical: Vec<Vec<bool>>,
    /// Per-class achieved PercLoss of the best incumbent (offline routing).
    pub alpha: Vec<f64>,
    /// Best incumbent penalty `Σ_k w_k α_k`.
    pub penalty: f64,
    /// Effective per-class β targets used.
    pub betas: Vec<f64>,
    /// Offline per-flow, per-scenario losses of the best incumbent.
    pub offline_loss: Vec<Vec<f64>>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStat>,
}

/// Exact percentile-penalty evaluation of an arbitrary criticality
/// assignment: solve every scenario's subproblem with the given `critical`
/// matrix and compute `Σ_k w_k PercLoss_k` from the resulting losses
/// (residual mass counts as loss 1, like all post-analysis). Used to put
/// the IP baseline and the decomposition on the same measuring stick in
/// the Fig. 14 experiment.
pub fn evaluate_criticality(
    inst: &Instance,
    set: &ScenarioSet,
    critical: &[Vec<bool>],
) -> f64 {
    let nf = inst.num_flows();
    let betas = crate::effective_betas(inst, set);
    let mut tmpl: Option<SubproblemTemplate> = None;
    let mut loss = vec![vec![1.0; set.scenarios.len()]; nf];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let rebuild = tmpl
            .as_ref()
            .is_none_or(|t| !t.matches_factor(scen.demand_factor));
        if rebuild {
            tmpl = Some(SubproblemTemplate::for_demand_factor(inst, None, scen.demand_factor));
        }
        let zq: Vec<bool> = (0..nf).map(|f| critical[f][q]).collect();
        // A scenario whose LP fails terminally keeps its pessimistic
        // initialization (loss 1 everywhere) instead of aborting the
        // whole evaluation.
        if let Ok(sol) = tmpl.as_mut().expect("template built").solve(inst, scen, &zq) {
            for f in 0..nf {
                loss[f][q] = sol.loss[f];
            }
        }
    }
    let lm = LossMatrix::new(loss, set.probs(), set.residual);
    (0..inst.num_classes())
        .map(|k| inst.classes[k].weight * perc_loss(&lm, &inst.class_flows(k), betas[k]))
        .sum()
}

/// Run Flexile's offline phase.
pub fn solve_flexile(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> FlexileDesign {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let betas = crate::effective_betas(inst, set);
    let mut solve_span = flexile_obs::span("flexile.solve", "flexile")
        .field("flows", nf)
        .field("scenarios", nq)
        .field("classes", inst.num_classes());

    // Connectivity matrix: z may be 1 only where the flow has a live tunnel.
    let allowed: Vec<Vec<bool>> = (0..nf)
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            set.scenarios
                .iter()
                .map(|s| inst.tunnels[k].pair_alive(p, &s.dead_mask()))
                .collect()
        })
        .collect();

    // γ variant: per-flow loss upper bounds (needs optimal ScenLoss per
    // scenario — single class only).
    let loss_ub: Option<Vec<Vec<f64>>> = opts.gamma.map(|gamma| {
        assert_eq!(inst.num_classes(), 1, "γ variant is defined for single-class runs");
        set.scenarios
            .iter()
            .map(|scen| {
                let opt = flexile_te::mcf::optimal_scen_loss(inst, scen, true);
                (0..nf)
                    .map(|f| {
                        let p = inst.flow_pair(f);
                        if inst.tunnels[0].pair_alive(p, &scen.dead_mask()) {
                            (gamma + opt).clamp(0.0, 1.0)
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect()
    });

    let ctx = PoolCtx { inst, set, loss_ub: loss_ub.as_deref() };
    let design = match opts.pool {
        PoolPolicy::LegacyStriped => {
            let mut solver = LegacyStriped { ctx, threads: opts.threads };
            run_decomposition(inst, set, opts, &betas, &allowed, &mut solver)
        }
        PoolPolicy::PerScenario | PoolPolicy::Cold => {
            let residency = if opts.pool == PoolPolicy::Cold { 0 } else { opts.basis_residency };
            with_pool(ctx, opts.threads.max(1), residency, |solver| {
                run_decomposition(inst, set, opts, &betas, &allowed, solver)
            })
        }
    };
    solve_span.set("penalty", design.penalty);
    solve_span.set("iterations", design.iterations.len());
    design
}

/// The Algorithm-1 iteration loop, generic over how an iteration's
/// subproblems are actually scheduled and solved.
fn run_decomposition(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    betas: &[f64],
    allowed: &[Vec<bool>],
    solver: &mut dyn IterationSolver,
) -> FlexileDesign {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();

    // Starting heuristic: everything connected is critical.
    let mut z = allowed.to_vec();
    let mut pool = CutPool::new(nq);
    let mut cached_loss: Vec<Option<Vec<f64>>> = vec![None; nq];
    let mut cached_value: Vec<f64> = vec![f64::INFINITY; nq];
    let mut last_z_col: Vec<Option<Vec<bool>>> = vec![None; nq];
    let mut perfect: Vec<bool> = vec![false; nq];

    // Best incumbent: (penalty, criticality, loss matrix, per-class alpha).
    type Incumbent = (f64, Vec<Vec<bool>>, Vec<Vec<f64>>, Vec<f64>);
    let mut best: Option<Incumbent> = None;
    let mut iterations = Vec::new();
    // Lower bound from the most recent master solve; the master lags the
    // subproblems by one iteration, so iteration 1 has no bound yet.
    let mut last_bound: Option<f64> = None;

    for it in 1..=opts.max_iterations {
        let mut iter_span = flexile_obs::span("flexile.iteration", "flexile").field("iteration", it);
        // Decide which scenarios need solving.
        let todo: Vec<usize> = (0..nq)
            .filter(|&q| {
                if !opts.prune {
                    return true;
                }
                if perfect[q] {
                    return false;
                }
                let col: Vec<bool> = (0..nf).map(|f| z[f][q]).collect();
                last_z_col[q].as_ref() != Some(&col)
            })
            .collect();
        let pruned = nq - todo.len();
        iter_span.set("solved", todo.len());
        iter_span.set("pruned", pruned);
        let sub_span = flexile_obs::span("flexile.subproblems", "flexile")
            .field("iteration", it)
            .field("solved", todo.len());

        // Solve subproblems through the configured scheduler. Workers never
        // panic on solver failures: each scenario's result is a `Result`,
        // and a terminal LP error just marks the scenario unsolved for this
        // iteration (pessimistic losses, no cut, retried next round) instead
        // of taking the whole decomposition down.
        let cols: Vec<Vec<bool>> =
            todo.iter().map(|&q| (0..nf).map(|f| z[f][q]).collect()).collect();
        let outputs = solver.solve_iteration(&todo, cols);

        drop(sub_span);

        let mut results: Vec<Option<SubproblemSolution>> = vec![None; nq];
        // Boolean failure mask (indexed by scenario) instead of a membership
        // scan per result.
        let mut failed_mask = vec![false; nq];
        let mut nfailed = 0u64;
        let mut lp_iterations = 0usize;
        let mut warm_hits = 0usize;
        let mut dual_restarts = 0usize;
        for (q, res) in outputs {
            match res {
                Ok((sol, stats)) => {
                    lp_iterations += stats.iterations;
                    if stats.warm_hit {
                        warm_hits += 1;
                    }
                    if stats.dual_restart {
                        dual_restarts += 1;
                    }
                    results[q] = Some(sol);
                }
                Err(_) => {
                    failed_mask[q] = true;
                    nfailed += 1;
                }
            }
        }
        flexile_obs::add("flexile.scenario_warm_hit", warm_hits as u64);
        flexile_obs::add(
            "flexile.scenario_warm_miss",
            todo.len() as u64 - nfailed - warm_hits as u64,
        );
        flexile_obs::add("flexile.dual_restart", dual_restarts as u64);

        // Failed scenarios: pessimistic losses this iteration, no cut, and
        // no column cache so the pruning logic re-solves them next round.
        flexile_obs::add("flexile.scenarios_retried", nfailed);
        for q in 0..nq {
            if failed_mask[q] {
                cached_loss[q] = None;
                cached_value[q] = f64::INFINITY;
                last_z_col[q] = None;
            }
        }

        for &q in &todo {
            if failed_mask[q] {
                continue;
            }
            let sol = results[q].take().expect("solved scenario missing");
            // Perfect-scenario pruning: zero penalty with the maximal
            // criticality column can never bind later.
            let col: Vec<bool> = (0..nf).map(|f| z[f][q]).collect();
            if sol.value < 1e-9 && col == allowed.iter().map(|r| r[q]).collect::<Vec<bool>>() {
                perfect[q] = true;
                if opts.prune {
                    // Never solved again: drop its pooled template early.
                    solver.retire(q);
                }
            }
            cached_loss[q] = Some(sol.loss.clone());
            cached_value[q] = sol.value;
            last_z_col[q] = Some(col);
            if sol.value > 1e-9 {
                flexile_obs::add("flexile.cuts_added", 1);
                pool.push(q, sol.cut);
            }
        }

        // Exact incumbent evaluation from the (cached) offline losses.
        let loss_matrix: Vec<Vec<f64>> = (0..nf)
            .map(|f| {
                (0..nq)
                    .map(|q| cached_loss[q].as_ref().map_or(1.0, |l| l[f]))
                    .collect()
            })
            .collect();
        let lm = LossMatrix::new(loss_matrix.clone(), set.probs(), set.residual);
        let alphas: Vec<f64> = (0..inst.num_classes())
            .map(|k| perc_loss(&lm, &inst.class_flows(k), betas[k]))
            .collect();
        let penalty: f64 = alphas
            .iter()
            .zip(inst.classes.iter())
            .map(|(a, c)| a * c.weight)
            .sum();
        if best.as_ref().is_none_or(|(bp, ..)| penalty < *bp - 1e-12) {
            best = Some((penalty, z.clone(), loss_matrix, alphas));
        }
        let upper = best.as_ref().map(|b| b.0).unwrap_or(penalty);
        if flexile_obs::enabled() {
            let mut ev = flexile_obs::event("flexile.bound_gap", "flexile")
                .field("iteration", it)
                .field("upper", upper);
            if let Some(lb) = last_bound {
                ev = ev.field("lower", lb);
            }
            drop(ev); // recorded on drop
        }
        iterations.push(IterationStat {
            iteration: it,
            penalty: upper,
            solved: todo.len(),
            pruned,
            lp_iterations,
            warm_hits,
            dual_restarts,
        });

        if it == opts.max_iterations {
            break;
        }
        // Master proposes the next z.
        let master_span = flexile_obs::span("flexile.master", "flexile").field("iteration", it);
        let (next_z, bound) = solve_master(inst, set, &pool, allowed, betas, &z, &opts.master);
        drop(master_span);
        last_bound = Some(bound);
        if next_z == z {
            break; // converged
        }
        z = next_z;
    }

    let (penalty, critical, offline_loss, alpha) = best.expect("at least one iteration ran");
    FlexileDesign {
        critical,
        alpha,
        penalty,
        betas: betas.to_vec(),
        offline_loss,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};

    /// Fig. 1 instance with the paper's explicit 99% requirement (the
    /// auto-derived max-feasible β ≈ 0.9998 makes zero PercLoss impossible
    /// on the triangle, exactly as the paper's example intends 99%).
    fn fig1_beta99() -> flexile_traffic::Instance {
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        inst
    }

    #[test]
    fn fig1_flexile_achieves_zero_percloss() {
        // The headline motivation: Flexile meets both flows' 1-unit
        // requirement 99% of the time on the Fig. 1 triangle (PercLoss 0),
        // where ScenBest/Teavar are stuck at 0.5.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        assert!(
            design.penalty < 1e-6,
            "Flexile should reach PercLoss 0, got {}",
            design.penalty
        );
        // Criticality matches Fig. 4: the A-B-failure scenario is critical
        // for f2 but (at optimum) need not be for f1.
        for f in 0..2 {
            let mass: f64 = set
                .scenarios
                .iter()
                .enumerate()
                .filter(|(q, _)| design.critical[f][*q])
                .map(|(_, s)| s.prob)
                .sum();
            assert!(mass + 1e-9 >= 0.99, "flow {f} critical mass {mass}");
        }
    }

    #[test]
    fn iteration_stats_monotone() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        for w in design.iterations.windows(2) {
            assert!(w[1].penalty <= w[0].penalty + 1e-12, "incumbent worsened");
        }
        assert!(!design.iterations.is_empty());
    }

    #[test]
    fn proposition1_first_iterate_beats_scenbest() {
        // The starting heuristic alone must already match ScenBest's
        // percentile guarantee (Proposition 1).
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let opts = FlexileOptions { max_iterations: 1, ..Default::default() };
        let design = solve_flexile(&inst, &set, &opts);
        // ScenBest's PercLoss on fig1 at β=0.99 is 0.5.
        assert!(design.penalty <= 0.5 + 1e-6, "first iterate {}", design.penalty);
    }

    #[test]
    fn gamma_variant_bounds_scenario_loss() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let opts = FlexileOptions { gamma: Some(0.2), ..Default::default() };
        let design = solve_flexile(&inst, &set, &opts);
        // With γ = 0.2 every connected flow's offline loss stays within
        // optimal ScenLoss + 0.2 in every scenario.
        for (q, scen) in set.scenarios.iter().enumerate() {
            let opt = flexile_te::mcf::optimal_scen_loss(&inst, scen, true);
            for f in 0..2 {
                let p = inst.flow_pair(f);
                if inst.tunnels[0].pair_alive(p, &scen.dead_mask()) {
                    assert!(
                        design.offline_loss[f][q] <= opt + 0.2 + 1e-6,
                        "flow {f} scen {q}: {} > {} + 0.2",
                        design.offline_loss[f][q],
                        opt
                    );
                }
            }
        }
    }
}
