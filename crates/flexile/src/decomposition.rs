//! Flexile's offline decomposition (Algorithm 1, §4.2).
//!
//! Iterates between the per-scenario subproblems (which, given a proposed
//! criticality assignment, route traffic and emit Benders cuts) and the
//! master (which re-proposes criticality). Problem-specific accelerations
//! from the paper:
//!
//! * **Starting heuristic** — `z_fq = 1` iff flow `f` has a live tunnel in
//!   scenario `q`. Proposition 1: the very first iterate is already at
//!   least as good as Teavar or ScenBest.
//! * **Perfect-scenario pruning** — a scenario solved to penalty 0 with
//!   every connected flow critical can never contribute a binding cut and
//!   is skipped in later iterations.
//! * **Unchanged-criticality pruning** — a scenario whose critical-flow set
//!   did not change since its last solve is skipped; its cached cut and
//!   losses remain valid.
//! * **Persistent scenario-solve pool** — subproblems run on a pool of
//!   workers that lives for the whole decomposition (see [`crate::pool`]):
//!   one warm template *per scenario* so iteration `k+1` dual-restarts from
//!   iteration `k`'s basis of the *same* scenario (the shared dual space /
//!   warm-start trick of the reformulated `S_q`, finally applied across
//!   iterations), with a work-stealing scheduler and a bounded
//!   basis-residency budget. [`PoolPolicy`] selects the legacy per-thread
//!   striping or a cold-every-iteration baseline for A/B comparison.
//!
//! Each iteration yields a full routing, so an *incumbent* penalty is
//! evaluated exactly (sort per-flow losses, take β quantiles); the best
//! incumbent across iterations is returned, along with per-iteration
//! statistics for the Fig. 14 convergence experiment.
//!
//! ## Crash safety
//!
//! The loop's entire mutable state lives in a [`BendersState`] that can be
//! checkpointed at iteration boundaries (see [`crate::checkpoint`]) and
//! restored by [`decompose_resume`], which replays each scenario's solve
//! chain to re-warm the pool and then continues to a final solution
//! bit-identical to an uninterrupted run. Worker panics are contained and
//! quarantined inside the pool; a watchdog deadline (off by default)
//! cold-restarts warm solves that hang.

use crate::checkpoint::{self, BestIncumbent, CheckpointError, CheckpointState};
use crate::master::{solve_master, CutPool, MasterOptions};
use crate::pool::{with_pool, IterationSolver, LegacyStriped, PoolCtx, PoolError, PoolSnapshot};
use crate::subproblem::{SubproblemSolution, SubproblemTemplate};
use flexile_metrics::{perc_loss, LossMatrix};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::path::PathBuf;
use std::time::Duration;

pub use crate::pool::PoolPolicy;

/// Alias emphasizing that these options configure the offline decomposition
/// (scheduling policy, residency budget, master knobs).
pub type DecompositionOptions = FlexileOptions;

/// Options for the offline decomposition.
#[derive(Debug, Clone)]
pub struct FlexileOptions {
    /// Maximum master/subproblem iterations (paper: 5).
    pub max_iterations: usize,
    /// Worker threads for subproblem solving (paper: 10).
    pub threads: usize,
    /// Master configuration.
    pub master: MasterOptions,
    /// Optional §4.4 γ: bound each flow's loss in every scenario to
    /// `γ + optimal ScenLoss(q)`. Requires per-scenario optimal losses,
    /// computed on demand (single-class instances only).
    pub gamma: Option<f64>,
    /// Enable perfect-scenario / unchanged-criticality pruning (§4.2).
    /// Disabled only by the ablation benchmarks.
    pub prune: bool,
    /// Subproblem scheduling / basis-reuse policy (see [`PoolPolicy`]).
    pub pool: PoolPolicy,
    /// Maximum scenario templates (and their warm bases) kept resident
    /// between iterations under [`PoolPolicy::PerScenario`]; LRU beyond
    /// this. Deliberately generous: a template is small next to the
    /// scenario set itself.
    pub basis_residency: usize,
    /// Watchdog deadline for each subproblem's warm fast path: a warm
    /// restart that exceeds it is abandoned, its basis quarantined, and the
    /// solve cold-restarted through the `solve_robust` ladder (whose Bland
    /// rung terminates provably). `None` (default) disables the watchdog
    /// and preserves exact bit-reproducibility; with it armed, outcomes can
    /// depend on wall clock.
    pub watchdog: Option<Duration>,
    /// Maximum scenarios per shared-factorization batch unit under
    /// [`PoolPolicy::PerScenario`]: consecutive warm same-demand-factor
    /// scenarios are dispatched together and dual-restarted through one
    /// factorization ([`flexile_lp::solve_rhs_batch`]), with per-member
    /// fallback to the scalar path on divergence. `0` or `1` disables
    /// batching. Any width produces bit-identical results — the knob
    /// trades factorization reuse against scheduling granularity.
    pub batch_width: usize,
    /// Directory to write crash-recovery checkpoints into (as
    /// `flexile.ckpt`); `None` (default) disables checkpointing. The
    /// zero-fault trajectory is unaffected either way — checkpointing only
    /// *reads* solver state.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every this many iteration boundaries (the final
    /// state is always written when a directory is configured). Values are
    /// clamped to ≥ 1.
    pub checkpoint_every: usize,
}

impl Default for FlexileOptions {
    fn default() -> Self {
        FlexileOptions {
            max_iterations: 5,
            threads: 10,
            master: MasterOptions::default(),
            gamma: None,
            prune: true,
            pool: PoolPolicy::default(),
            basis_residency: 4096,
            watchdog: None,
            batch_width: 16,
            checkpoint_dir: None,
            checkpoint_every: 1,
        }
    }
}

/// Statistics of one decomposition iteration (Fig. 14 / Fig. 15 inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStat {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Exact penalty of this iteration's incumbent routing.
    pub penalty: f64,
    /// Subproblems actually solved (not pruned).
    pub solved: usize,
    /// Subproblems skipped by pruning.
    pub pruned: usize,
    /// Total simplex iterations across this iteration's subproblem solves
    /// (every attempt, restart or ladder fallback).
    pub lp_iterations: usize,
    /// Solves that reused a saved basis (primal-warm or dual restart).
    pub warm_hits: usize,
    /// Warm reuses that specifically went through dual-simplex RHS repair.
    pub dual_restarts: usize,
}

/// The offline design produced by the decomposition.
#[derive(Debug, Clone)]
pub struct FlexileDesign {
    /// Critical-scenario assignment `critical[f][q]` of the best incumbent.
    pub critical: Vec<Vec<bool>>,
    /// Per-class achieved PercLoss of the best incumbent (offline routing).
    pub alpha: Vec<f64>,
    /// Best incumbent penalty `Σ_k w_k α_k`.
    pub penalty: f64,
    /// Effective per-class β targets used.
    pub betas: Vec<f64>,
    /// Offline per-flow, per-scenario losses of the best incumbent.
    pub offline_loss: Vec<Vec<f64>>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStat>,
}

/// Exact percentile-penalty evaluation of an arbitrary criticality
/// assignment: solve every scenario's subproblem with the given `critical`
/// matrix and compute `Σ_k w_k PercLoss_k` from the resulting losses
/// (residual mass counts as loss 1, like all post-analysis). Used to put
/// the IP baseline and the decomposition on the same measuring stick in
/// the Fig. 14 experiment.
pub fn evaluate_criticality(
    inst: &Instance,
    set: &ScenarioSet,
    critical: &[Vec<bool>],
) -> f64 {
    let nf = inst.num_flows();
    let betas = crate::effective_betas(inst, set);
    let mut tmpl: Option<SubproblemTemplate> = None;
    let mut loss = vec![vec![1.0; set.scenarios.len()]; nf];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let rebuild = tmpl
            .as_ref()
            .is_none_or(|t| !t.matches_factor(scen.demand_factor));
        if rebuild {
            tmpl = Some(SubproblemTemplate::for_demand_factor(inst, None, scen.demand_factor));
        }
        let zq: Vec<bool> = (0..nf).map(|f| critical[f][q]).collect();
        // A scenario whose LP fails terminally keeps its pessimistic
        // initialization (loss 1 everywhere) instead of aborting the
        // whole evaluation.
        if let Ok(sol) = tmpl.as_mut().expect("template built").solve(inst, scen, &zq) {
            for f in 0..nf {
                loss[f][q] = sol.loss[f];
            }
        }
    }
    let lm = LossMatrix::new(loss, set.probs(), set.residual);
    (0..inst.num_classes())
        .map(|k| inst.classes[k].weight * perc_loss(&lm, &inst.class_flows(k), betas[k]))
        .sum()
}

/// Precomputed, deterministic derivations from the problem definition
/// (identical for a fresh run and a resume).
pub(crate) struct Prepared {
    pub(crate) betas: Vec<f64>,
    pub(crate) allowed: Vec<Vec<bool>>,
    pub(crate) loss_ub: Option<Vec<Vec<f64>>>,
}

pub(crate) fn prepare(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> Prepared {
    let nf = inst.num_flows();
    let betas = crate::effective_betas(inst, set);

    // Connectivity matrix: z may be 1 only where the flow has a live tunnel.
    let allowed: Vec<Vec<bool>> = (0..nf)
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            set.scenarios
                .iter()
                .map(|s| inst.tunnels[k].pair_alive(p, &s.dead_mask()))
                .collect()
        })
        .collect();

    // γ variant: per-flow loss upper bounds (needs optimal ScenLoss per
    // scenario — single class only).
    let loss_ub: Option<Vec<Vec<f64>>> = opts.gamma.map(|gamma| {
        assert_eq!(inst.num_classes(), 1, "γ variant is defined for single-class runs");
        set.scenarios
            .iter()
            .map(|scen| {
                let opt = flexile_te::mcf::optimal_scen_loss(inst, scen, true);
                (0..nf)
                    .map(|f| {
                        let p = inst.flow_pair(f);
                        if inst.tunnels[0].pair_alive(p, &scen.dead_mask()) {
                            (gamma + opt).clamp(0.0, 1.0)
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect()
    });

    Prepared { betas, allowed, loss_ub }
}

/// Run Flexile's offline phase.
pub fn solve_flexile(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> FlexileDesign {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let mut solve_span = flexile_obs::span("flexile.solve", "flexile")
        .field("flows", nf)
        .field("scenarios", nq)
        .field("classes", inst.num_classes());
    let prep = prepare(inst, set, opts);
    let state = BendersState::fresh(&prep.allowed, nq);
    let design = dispatch(inst, set, opts, &prep, state, None);
    solve_span.set("penalty", design.penalty);
    solve_span.set("iterations", design.iterations.len());
    design
}

/// Resume a decomposition from the checkpoint in
/// `opts.checkpoint_dir`, continuing to the same final design an
/// uninterrupted run would have produced.
///
/// The checkpoint must match the given problem and options bit-for-bit
/// (validated by fingerprint); version or checksum mismatches are refused
/// with a typed [`CheckpointError`]. The pool is re-warmed by replaying
/// each scenario's checkpointed solve chain — warm bases are never
/// persisted — after which the continuation is bit-identical to the
/// original trajectory (watchdog disabled; see
/// [`FlexileOptions::watchdog`]).
pub fn decompose_resume(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
) -> Result<FlexileDesign, CheckpointError> {
    let dir = opts
        .checkpoint_dir
        .as_ref()
        .ok_or(CheckpointError::NoCheckpointConfigured)?;
    let ck = checkpoint::read_checkpoint(&checkpoint::checkpoint_path(dir))?;
    checkpoint::validate_fingerprints(&ck, inst, set, opts)?;
    let betas = crate::effective_betas(inst, set);
    if betas.len() != ck.betas.len()
        || betas.iter().zip(&ck.betas).any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(CheckpointError::ProblemMismatch { component: "betas" });
    }

    let mut span = flexile_obs::span("flexile.resume", "flexile")
        .field("iteration", ck.it)
        .field("done", ck.done as u64);
    let state = BendersState::from_checkpoint(&ck)?;
    let snap = PoolSnapshot { stamps: ck.stamps, chains: ck.chains };
    let design = if state.done {
        design_from_state(state, &betas)
    } else {
        let prep = prepare(inst, set, opts);
        dispatch(inst, set, opts, &prep, state, Some((ck.it, snap)))
    };
    span.set("penalty", design.penalty);
    Ok(design)
}

/// Route a (fresh or restored) state through the configured scheduler.
fn dispatch(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    prep: &Prepared,
    state: BendersState,
    restore: Option<(usize, PoolSnapshot)>,
) -> FlexileDesign {
    let ctx = PoolCtx {
        inst,
        set,
        loss_ub: prep.loss_ub.as_deref(),
        watchdog: opts.watchdog,
        batch_width: opts.batch_width,
    };
    match opts.pool {
        PoolPolicy::LegacyStriped => {
            let mut solver = LegacyStriped { ctx, threads: opts.threads };
            if let Some((it, snap)) = &restore {
                solver.restore(*it, snap);
            }
            run_decomposition(inst, set, opts, &prep.betas, &prep.allowed, &mut solver, state)
        }
        PoolPolicy::PerScenario | PoolPolicy::Cold => {
            let residency = if opts.pool == PoolPolicy::Cold { 0 } else { opts.basis_residency };
            with_pool(ctx, opts.threads.max(1), residency, |solver| {
                if let Some((it, snap)) = &restore {
                    solver.restore(*it, snap);
                }
                run_decomposition(inst, set, opts, &prep.betas, &prep.allowed, solver, state)
            })
        }
    }
}

/// Best incumbent: (penalty, criticality, loss matrix, per-class alpha).
type Incumbent = (f64, Vec<Vec<bool>>, Vec<Vec<f64>>, Vec<f64>);

/// The complete mutable state of the Algorithm-1 loop, separated out so an
/// iteration boundary can be checkpointed and restored.
pub(crate) struct BendersState {
    /// Last completed iteration (0 = none yet).
    it: usize,
    /// Criticality proposal for the next iteration.
    z: Vec<Vec<bool>>,
    pool: CutPool,
    cached_loss: Vec<Option<Vec<f64>>>,
    cached_value: Vec<f64>,
    last_z_col: Vec<Option<Vec<bool>>>,
    perfect: Vec<bool>,
    best: Option<Incumbent>,
    iterations: Vec<IterationStat>,
    /// Lower bound from the most recent master solve; the master lags the
    /// subproblems by one iteration, so iteration 1 has no bound yet.
    last_bound: Option<f64>,
    /// Converged or exhausted the iteration budget.
    pub(crate) done: bool,
}

impl BendersState {
    pub(crate) fn fresh(allowed: &[Vec<bool>], nq: usize) -> Self {
        BendersState {
            it: 0,
            // Starting heuristic: everything connected is critical.
            z: allowed.to_vec(),
            pool: CutPool::new(nq),
            cached_loss: vec![None; nq],
            cached_value: vec![f64::INFINITY; nq],
            last_z_col: vec![None; nq],
            perfect: vec![false; nq],
            best: None,
            iterations: Vec::new(),
            last_bound: None,
            done: false,
        }
    }

    pub(crate) fn from_checkpoint(ck: &CheckpointState) -> Result<Self, CheckpointError> {
        // Checkpoints are only written at iteration boundaries, where an
        // incumbent always exists; a valid-checksum file claiming otherwise
        // was hand-crafted.
        if ck.it == 0 || ck.best.is_none() {
            return Err(CheckpointError::Malformed("checkpoint without a completed iteration"));
        }
        let b = ck.best.as_ref().expect("checked above");
        Ok(BendersState {
            it: ck.it,
            z: ck.z.clone(),
            pool: CutPool { cuts: ck.cuts.clone() },
            cached_loss: ck.cached_loss.clone(),
            cached_value: ck.cached_value.clone(),
            last_z_col: ck.last_z_col.clone(),
            perfect: ck.perfect.clone(),
            best: Some((b.penalty, b.critical.clone(), b.loss.clone(), b.alpha.clone())),
            iterations: ck.iterations.clone(),
            last_bound: ck.last_bound,
            done: ck.done,
        })
    }

    fn to_checkpoint(
        &self,
        plan: &CheckpointPlan,
        snap: PoolSnapshot,
        betas: &[f64],
    ) -> CheckpointState {
        CheckpointState {
            problem_parts: plan.problem_parts,
            options_parts: plan.options_parts,
            nf: plan.nf,
            nq: plan.nq,
            na: plan.na,
            it: self.it,
            done: self.done,
            z: self.z.clone(),
            cuts: self.pool.cuts.clone(),
            cached_loss: self.cached_loss.clone(),
            cached_value: self.cached_value.clone(),
            last_z_col: self.last_z_col.clone(),
            perfect: self.perfect.clone(),
            stamps: snap.stamps,
            chains: snap.chains,
            best: self.best.as_ref().map(|(penalty, critical, loss, alpha)| BestIncumbent {
                penalty: *penalty,
                critical: critical.clone(),
                loss: loss.clone(),
                alpha: alpha.clone(),
            }),
            iterations: self.iterations.clone(),
            last_bound: self.last_bound,
            betas: betas.to_vec(),
        }
    }
}

/// Where and how often to checkpoint.
struct CheckpointPlan {
    path: Option<PathBuf>,
    every: usize,
    problem_parts: [u64; checkpoint::PROBLEM_COMPONENTS.len()],
    options_parts: [u64; checkpoint::OPTIONS_COMPONENTS.len()],
    nf: usize,
    nq: usize,
    na: usize,
}

impl CheckpointPlan {
    fn new(inst: &Instance, set: &ScenarioSet, opts: &FlexileOptions) -> Self {
        CheckpointPlan {
            path: opts
                .checkpoint_dir
                .as_ref()
                .map(|d| checkpoint::checkpoint_path(d)),
            every: opts.checkpoint_every.max(1),
            problem_parts: checkpoint::problem_fingerprint_parts(inst, set),
            options_parts: checkpoint::options_fingerprint_parts(opts),
            nf: inst.num_flows(),
            nq: set.scenarios.len(),
            na: inst.num_arcs(),
        }
    }

    /// Write a snapshot if this boundary is due. A write failure degrades
    /// to a counter (`flexile.checkpoint_error`) rather than killing a run
    /// that is otherwise healthy.
    fn maybe_write(&self, state: &BendersState, solver: &dyn IterationSolver, betas: &[f64]) {
        let Some(path) = &self.path else { return };
        if !state.done && !state.it.is_multiple_of(self.every) {
            return;
        }
        let ck = state.to_checkpoint(self, solver.snapshot(), betas);
        if checkpoint::write_checkpoint(path, &ck).is_err() {
            flexile_obs::add("flexile.checkpoint_error", 1);
        }
    }
}

pub(crate) fn design_from_state(state: BendersState, betas: &[f64]) -> FlexileDesign {
    let (penalty, critical, offline_loss, alpha) =
        state.best.expect("at least one iteration ran");
    FlexileDesign {
        critical,
        alpha,
        penalty,
        betas: betas.to_vec(),
        offline_loss,
        iterations: state.iterations,
    }
}

/// The Algorithm-1 iteration loop, generic over how an iteration's
/// subproblems are actually scheduled and solved.
pub(crate) fn run_decomposition(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    betas: &[f64],
    allowed: &[Vec<bool>],
    solver: &mut dyn IterationSolver,
    mut state: BendersState,
) -> FlexileDesign {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let plan = CheckpointPlan::new(inst, set, opts);

    while !state.done && state.it < opts.max_iterations {
        let it = state.it + 1;
        let mut iter_span = flexile_obs::span("flexile.iteration", "flexile").field("iteration", it);
        // Decide which scenarios need solving.
        let todo: Vec<usize> = (0..nq)
            .filter(|&q| {
                if !opts.prune {
                    return true;
                }
                if state.perfect[q] {
                    return false;
                }
                let col: Vec<bool> = (0..nf).map(|f| state.z[f][q]).collect();
                state.last_z_col[q].as_ref() != Some(&col)
            })
            .collect();
        let pruned = nq - todo.len();
        iter_span.set("solved", todo.len());
        iter_span.set("pruned", pruned);
        let sub_span = flexile_obs::span("flexile.subproblems", "flexile")
            .field("iteration", it)
            .field("solved", todo.len());

        // Solve subproblems through the configured scheduler. Workers never
        // panic on solver failures: each scenario's result is a `Result`,
        // and a terminal LP error — or a contained-and-retried panic that
        // exhausted its retries ([`PoolError::ScenarioPoisoned`]) — just
        // marks the scenario unsolved for this iteration (pessimistic
        // losses, no cut, retried next round) instead of taking the whole
        // decomposition down.
        let cols: Vec<Vec<bool>> =
            todo.iter().map(|&q| (0..nf).map(|f| state.z[f][q]).collect()).collect();
        let outputs = solver.solve_iteration(it, &todo, cols);

        drop(sub_span);
        // Chaos hook: an armed Abort kill-point unwinds the decomposition
        // here — after the fan-out, before any of iteration `it`'s state
        // lands — simulating process death mid-iteration. Nothing below
        // this line has happened as far as the last checkpoint knows.
        crate::killpoints::maybe_fire_abort(it);

        let mut results: Vec<Option<SubproblemSolution>> = vec![None; nq];
        // Boolean failure mask (indexed by scenario) instead of a membership
        // scan per result.
        let mut failed_mask = vec![false; nq];
        let mut nfailed = 0u64;
        let mut lp_iterations = 0usize;
        let mut warm_hits = 0usize;
        let mut dual_restarts = 0usize;
        for (q, res) in outputs {
            match res {
                Ok((sol, stats)) => {
                    lp_iterations += stats.iterations;
                    if stats.warm_hit {
                        warm_hits += 1;
                    }
                    if stats.dual_restart {
                        dual_restarts += 1;
                    }
                    results[q] = Some(sol);
                }
                Err(e) => {
                    if matches!(e, PoolError::ScenarioPoisoned { .. }) {
                        flexile_obs::add("flexile.scenario_poisoned", 1);
                    }
                    failed_mask[q] = true;
                    nfailed += 1;
                }
            }
        }
        flexile_obs::add("flexile.scenario_warm_hit", warm_hits as u64);
        flexile_obs::add(
            "flexile.scenario_warm_miss",
            todo.len() as u64 - nfailed - warm_hits as u64,
        );
        flexile_obs::add("flexile.dual_restart", dual_restarts as u64);

        // Failed scenarios: pessimistic losses this iteration, no cut, and
        // no column cache so the pruning logic re-solves them next round.
        flexile_obs::add("flexile.scenarios_retried", nfailed);
        for q in 0..nq {
            if failed_mask[q] {
                state.cached_loss[q] = None;
                state.cached_value[q] = f64::INFINITY;
                state.last_z_col[q] = None;
            }
        }

        for &q in &todo {
            if failed_mask[q] {
                continue;
            }
            let sol = results[q].take().expect("solved scenario missing");
            // Perfect-scenario pruning: zero penalty with the maximal
            // criticality column can never bind later.
            let col: Vec<bool> = (0..nf).map(|f| state.z[f][q]).collect();
            if sol.value < 1e-9 && col == allowed.iter().map(|r| r[q]).collect::<Vec<bool>>() {
                state.perfect[q] = true;
                if opts.prune {
                    // Never solved again: drop its pooled template early.
                    solver.retire(q);
                }
            }
            state.cached_loss[q] = Some(sol.loss.clone());
            state.cached_value[q] = sol.value;
            state.last_z_col[q] = Some(col);
            if sol.value > 1e-9 {
                flexile_obs::add("flexile.cuts_added", 1);
                state.pool.push(q, sol.cut);
            }
        }

        // Exact incumbent evaluation from the (cached) offline losses.
        let loss_matrix: Vec<Vec<f64>> = (0..nf)
            .map(|f| {
                (0..nq)
                    .map(|q| state.cached_loss[q].as_ref().map_or(1.0, |l| l[f]))
                    .collect()
            })
            .collect();
        let lm = LossMatrix::new(loss_matrix.clone(), set.probs(), set.residual);
        let alphas: Vec<f64> = (0..inst.num_classes())
            .map(|k| perc_loss(&lm, &inst.class_flows(k), betas[k]))
            .collect();
        let penalty: f64 = alphas
            .iter()
            .zip(inst.classes.iter())
            .map(|(a, c)| a * c.weight)
            .sum();
        if state.best.as_ref().is_none_or(|(bp, ..)| penalty < *bp - 1e-12) {
            state.best = Some((penalty, state.z.clone(), loss_matrix, alphas));
        }
        let upper = state.best.as_ref().map(|b| b.0).unwrap_or(penalty);
        if flexile_obs::enabled() {
            let mut ev = flexile_obs::event("flexile.bound_gap", "flexile")
                .field("iteration", it)
                .field("upper", upper);
            if let Some(lb) = state.last_bound {
                ev = ev.field("lower", lb);
            }
            drop(ev); // recorded on drop
        }
        state.iterations.push(IterationStat {
            iteration: it,
            penalty: upper,
            solved: todo.len(),
            pruned,
            lp_iterations,
            warm_hits,
            dual_restarts,
        });
        state.it = it;
        // Boundary hook: distributed schedulers broadcast this iteration's
        // cut-pool delta and the incumbent to their workers here.
        solver.iteration_complete(it, upper, &state.z);

        if it == opts.max_iterations {
            state.done = true;
        } else {
            // Master proposes the next z.
            let master_span = flexile_obs::span("flexile.master", "flexile").field("iteration", it);
            let (next_z, bound) =
                solve_master(inst, set, &state.pool, allowed, betas, &state.z, &opts.master);
            drop(master_span);
            state.last_bound = Some(bound);
            if next_z == state.z {
                state.done = true; // converged
            } else {
                state.z = next_z;
            }
        }
        plan.maybe_write(&state, solver, betas);
    }

    design_from_state(state, betas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};

    /// Fig. 1 instance with the paper's explicit 99% requirement (the
    /// auto-derived max-feasible β ≈ 0.9998 makes zero PercLoss impossible
    /// on the triangle, exactly as the paper's example intends 99%).
    fn fig1_beta99() -> flexile_traffic::Instance {
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        inst
    }

    #[test]
    fn fig1_flexile_achieves_zero_percloss() {
        // The headline motivation: Flexile meets both flows' 1-unit
        // requirement 99% of the time on the Fig. 1 triangle (PercLoss 0),
        // where ScenBest/Teavar are stuck at 0.5.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        assert!(
            design.penalty < 1e-6,
            "Flexile should reach PercLoss 0, got {}",
            design.penalty
        );
        // Criticality matches Fig. 4: the A-B-failure scenario is critical
        // for f2 but (at optimum) need not be for f1.
        for f in 0..2 {
            let mass: f64 = set
                .scenarios
                .iter()
                .enumerate()
                .filter(|(q, _)| design.critical[f][*q])
                .map(|(_, s)| s.prob)
                .sum();
            assert!(mass + 1e-9 >= 0.99, "flow {f} critical mass {mass}");
        }
    }

    #[test]
    fn iteration_stats_monotone() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        for w in design.iterations.windows(2) {
            assert!(w[1].penalty <= w[0].penalty + 1e-12, "incumbent worsened");
        }
        assert!(!design.iterations.is_empty());
    }

    #[test]
    fn proposition1_first_iterate_beats_scenbest() {
        // The starting heuristic alone must already match ScenBest's
        // percentile guarantee (Proposition 1).
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let opts = FlexileOptions { max_iterations: 1, ..Default::default() };
        let design = solve_flexile(&inst, &set, &opts);
        // ScenBest's PercLoss on fig1 at β=0.99 is 0.5.
        assert!(design.penalty <= 0.5 + 1e-6, "first iterate {}", design.penalty);
    }

    #[test]
    fn gamma_variant_bounds_scenario_loss() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let opts = FlexileOptions { gamma: Some(0.2), ..Default::default() };
        let design = solve_flexile(&inst, &set, &opts);
        // With γ = 0.2 every connected flow's offline loss stays within
        // optimal ScenLoss + 0.2 in every scenario.
        for (q, scen) in set.scenarios.iter().enumerate() {
            let opt = flexile_te::mcf::optimal_scen_loss(&inst, scen, true);
            for f in 0..2 {
                let p = inst.flow_pair(f);
                if inst.tunnels[0].pair_alive(p, &scen.dead_mask()) {
                    assert!(
                        design.offline_loss[f][q] <= opt + 0.2 + 1e-6,
                        "flow {f} scen {q}: {} > {} + 0.2",
                        design.offline_loss[f][q],
                        opt
                    );
                }
            }
        }
    }
}
