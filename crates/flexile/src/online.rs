//! Critical-flow-aware online bandwidth allocation (§4.3).
//!
//! When a failure occurs, the controller looks up which flows are critical
//! in the observed scenario (decided offline) and solves one LP family:
//!
//! 1. **Reserve** — every critical flow is guaranteed the offline-promised
//!    bandwidth `(1 − α_k) · d_f` (a small elastic slack keeps the model
//!    feasible under numerical drift).
//! 2. **Classes in priority order** — within each class, max-min
//!    water-filling *on flow loss* over all flows of the class (critical
//!    flows may exceed their reservation). Unlike SWAN, lower-priority
//!    stages keep the higher classes' variables in the model and only pin
//!    their served amounts, re-optimizing the *routing* of both classes
//!    jointly (the paper's second §4.3 change).
//! 3. **Residual fill** — a final pass maximizes total served demand with
//!    lexicographic class weights.
//!
//! ## Failure handling
//!
//! The controller sits on the critical path of failure reaction, so it must
//! return *some* valid allocation even when the solver itself misbehaves.
//! Every LP goes through [`flexile_lp::solve_robust`], whose escalation
//! ladder absorbs transient numerical faults; if a solve still fails
//! terminally, the controller degrades explicitly instead of silently
//! dropping stages:
//!
//! * **Frozen-share carry-forward** — if the caller supplies the previous
//!   control interval's loss vector, reuse it for pairs that are still
//!   connected (dead pairs go to loss 1).
//! * **Proportional share** — otherwise, a closed-form no-LP allocation:
//!   each live pair routes on its first live tunnel and every flow is
//!   scaled by the single factor that makes the worst link fit.
//!
//! Either way the result is a loss vector in `[0, 1]` for every flow,
//! tagged with a [`DegradationLevel`] and the per-solve
//! [`flexile_lp::SolveReport`]s so operators (and the chaos tests) can see
//! exactly what the controller fell back on.
//!
//! The result is the per-flow loss vector used by all Flexile
//! post-analysis (it is the loss the network would actually experience).

use crate::decomposition::FlexileDesign;
use flexile_lp::{solve_robust, LpError, RobustOptions, Sense, SolveReport};
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_te::alloc::ScenAlloc;
use flexile_te::types::{clamp_loss, SchemeResult};
use flexile_traffic::Instance;

/// How much of the normal LP pipeline survived an online allocation.
///
/// Ordered: greater means more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Fault-free LP path; allocation identical to the nominal controller.
    None,
    /// The LP path produced the allocation, but only after the solver's
    /// escalation ladder recovered at least one attempt (or the optional
    /// residual-fill stage had to be skipped).
    SolverRecovered,
    /// The LP path failed terminally; the previous interval's shares were
    /// carried forward (dead pairs dropped to loss 1).
    FrozenCarryForward,
    /// The LP path failed terminally and no previous shares were available;
    /// the closed-form proportional-share allocation was used.
    ProportionalShare,
}

impl DegradationLevel {
    /// Stable lower-case name, used in telemetry events and reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::None => "none",
            DegradationLevel::SolverRecovered => "solver_recovered",
            DegradationLevel::FrozenCarryForward => "frozen_carry_forward",
            DegradationLevel::ProportionalShare => "proportional_share",
        }
    }
}

/// Outcome of one online allocation: the loss vector plus how it was made.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Per-flow loss in `[0, 1]` (always valid, whatever happened).
    pub losses: Vec<f64>,
    /// Which fallback rung produced the allocation.
    pub level: DegradationLevel,
    /// Report of every robust solve performed, in execution order.
    pub reports: Vec<SolveReport>,
    /// Terminal solver errors encountered (each either degraded the
    /// allocation or skipped the optional residual stage).
    pub errors: Vec<LpError>,
}

impl OnlineOutcome {
    /// Whether the full nominal LP pipeline ran without any fault.
    pub fn is_nominal(&self) -> bool {
        self.level == DegradationLevel::None
    }
}

/// Allocate bandwidth in `scen` given the flows' criticality and the
/// per-flow loss the offline phase promised in this scenario
/// (`promised_loss[f]`, §4.3: "assigns necessary bandwidth for critical
/// flows as pre-decided by the offline phase"). Critical flow `f` is
/// reserved `(1 − promised_loss[f]) · d_f`; non-critical entries are
/// ignored. Returns per-flow losses.
///
/// Thin wrapper over [`online_allocate_robust`] without carry-forward
/// state; see [`OnlineOutcome`] for the full degradation-aware interface.
pub fn online_allocate(
    inst: &Instance,
    scen: &Scenario,
    critical: &[bool],
    promised_loss: &[f64],
) -> Vec<f64> {
    online_allocate_robust(inst, scen, critical, promised_loss, None).losses
}

/// Degradation-aware online allocation (module docs).
///
/// `carry` is the previous control interval's per-flow loss vector, used
/// for frozen-share carry-forward if the LP path fails terminally; pass
/// `None` when no previous allocation exists (the controller then falls
/// straight to proportional share on terminal failure).
pub fn online_allocate_robust(
    inst: &Instance,
    scen: &Scenario,
    critical: &[bool],
    promised_loss: &[f64],
    carry: Option<&[f64]>,
) -> OnlineOutcome {
    let mut reports = Vec::new();
    let out = match lp_allocate(inst, scen, critical, promised_loss, &mut reports) {
        Ok((losses, skipped)) => {
            let recovered = reports.iter().any(|r| r.recovered());
            let level = if recovered || !skipped.is_empty() {
                DegradationLevel::SolverRecovered
            } else {
                DegradationLevel::None
            };
            OnlineOutcome { losses, level, reports, errors: skipped }
        }
        Err(e) => {
            let (losses, level) = match carry {
                Some(prev) if prev.len() == inst.num_flows() => {
                    (carry_forward_losses(inst, scen, prev), DegradationLevel::FrozenCarryForward)
                }
                _ => (proportional_share_losses(inst, scen), DegradationLevel::ProportionalShare),
            };
            OnlineOutcome { losses, level, reports, errors: vec![e] }
        }
    };
    if out.level != DegradationLevel::None && flexile_obs::enabled() {
        let mut ev = flexile_obs::event("online.degradation", "online")
            .field("level", out.level.name())
            .field("solves", out.reports.len())
            .field("solver_iterations", out.reports.iter().map(SolveReport::total_iterations).sum::<usize>());
        if let Some(e) = out.errors.first() {
            ev = ev.field("error", e.to_string());
        }
        drop(ev); // recorded on drop
    }
    out
}

/// The nominal LP pipeline. `Ok` carries the losses plus the terminal
/// errors of *skipped optional stages* (the residual fill); `Err` means a
/// mandatory stage failed terminally and the caller must degrade.
fn lp_allocate(
    inst: &Instance,
    scen: &Scenario,
    critical: &[bool],
    promised_loss: &[f64],
    reports: &mut Vec<SolveReport>,
) -> Result<(Vec<f64>, Vec<LpError>), LpError> {
    let nk = inst.num_classes();
    let np = inst.num_pairs();
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Max);
    // §4.4 TM scenarios: all demands scale by the scenario's factor.
    let df = scen.demand_factor;

    // Demand caps for every live flow.
    for k in 0..nk {
        for p in 0..np {
            if alloc.pair_alive[k][p] && inst.demands[k][p] > 0.0 {
                let coeffs = alloc.served_coeffs(k, p);
                alloc.model.add_row_le(&coeffs, inst.demands[k][p] * df);
            }
        }
    }
    // Critical reservations with a shared elastic slack (penalized hard).
    let eps = alloc.model.add_var("eps", 0.0, 1.0, -1e5);
    for k in 0..nk {
        for p in 0..np {
            let f = inst.flow_index(k, p);
            let d = inst.demands[k][p] * df;
            if !critical[f] || d <= 0.0 || !alloc.pair_alive[k][p] {
                continue;
            }
            let floor = (1.0 - promised_loss[f].clamp(0.0, 1.0)) * d;
            if floor <= 0.0 {
                continue;
            }
            let mut coeffs = alloc.served_coeffs(k, p);
            coeffs.push((eps, d));
            alloc.model.add_row_ge(&coeffs, floor);
        }
    }

    let mut served = vec![0.0; inst.num_flows()];
    // Class-priority water-filling with joint routing.
    for k in 0..nk {
        let shares = waterfill_class(inst, &mut alloc, k, eps, df, reports)?;
        for p in 0..np {
            served[inst.flow_index(k, p)] = shares[p];
        }
        // Pin this class's served amounts (routing stays free).
        for p in 0..np {
            if alloc.pair_alive[k][p] && inst.demands[k][p] > 0.0 {
                let coeffs = alloc.served_coeffs(k, p);
                alloc.model.add_row_ge(&coeffs, shares[p] - 1e-7);
            }
        }
    }
    // Residual fill with lexicographic class preference. Optional: the
    // pinned water-filling shares are already a valid allocation, so a
    // terminal failure here is recorded and the stage skipped rather than
    // degrading the whole controller.
    let mut weight = 1.0;
    for k in (0..nk).rev() {
        for p in 0..np {
            if alloc.pair_alive[k][p] {
                for (v, _) in alloc.served_coeffs(k, p) {
                    alloc.model.set_obj(v, weight);
                }
            }
        }
        weight *= 100.0;
    }
    let mut skipped = Vec::new();
    let out = solve_robust(&alloc.model, &RobustOptions::default(), None);
    reports.push(out.report);
    match out.result {
        Ok(sol) => {
            for k in 0..nk {
                for p in 0..np {
                    let f = inst.flow_index(k, p);
                    served[f] = served[f].max(alloc.served_at(&sol, k, p));
                }
            }
        }
        Err(e) => skipped.push(e),
    }

    let losses = (0..inst.num_flows())
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            let d = inst.demands[k][p] * df;
            if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[k][p] {
                1.0
            } else {
                clamp_loss(1.0 - served[f] / d)
            }
        })
        .collect();
    Ok((losses, skipped))
}

/// Max-min water-filling on served fraction for one class inside the joint
/// model. Returns per-pair served amounts, or the terminal error of the
/// first solve the robust ladder could not rescue.
fn waterfill_class(
    inst: &Instance,
    alloc: &mut ScenAlloc,
    k: usize,
    eps: flexile_lp::VarId,
    demand_factor: f64,
    reports: &mut Vec<SolveReport>,
) -> Result<Vec<f64>, LpError> {
    let np = inst.num_pairs();
    let demands: Vec<f64> = inst.demands[k].iter().map(|d| d * demand_factor).collect();
    let mut frozen: Vec<Option<f64>> = (0..np)
        .map(|p| {
            if demands[p] <= 0.0 || !alloc.pair_alive[k][p] {
                Some(0.0)
            } else {
                None
            }
        })
        .collect();
    let t_var = alloc.model.add_var(&format!("t_{k}"), 0.0, 1.0, 0.0);
    let mut served = vec![0.0; np];
    for _round in 0..16 {
        let unfrozen: Vec<usize> = (0..np).filter(|&p| frozen[p].is_none()).collect();
        if unfrozen.is_empty() {
            break;
        }
        let mut m = alloc.model.clone();
        m.set_obj(t_var, 1.0);
        m.set_obj(eps, -1e5);
        for p in 0..np {
            match frozen[p] {
                Some(fr) if demands[p] > 0.0 && alloc.pair_alive[k][p] => {
                    let coeffs = alloc.served_coeffs(k, p);
                    m.add_row_ge(&coeffs, fr * demands[p] - 1e-9);
                }
                None => {
                    let mut coeffs = alloc.served_coeffs(k, p);
                    coeffs.push((t_var, -demands[p]));
                    m.add_row_ge(&coeffs, 0.0);
                }
                _ => {}
            }
        }
        let out = solve_robust(&m, &RobustOptions::default(), None);
        reports.push(out.report);
        let sol = out.result?;
        let t = sol.value(t_var);
        if t >= 1.0 - 1e-9 {
            for &p in &unfrozen {
                frozen[p] = Some(1.0);
            }
            break;
        }
        // Freeze detection via a throughput-max pass at floor t.
        let mut m2 = m.clone();
        m2.set_obj(t_var, 0.0);
        m2.set_bounds(t_var, (t - 1e-9).max(0.0), 1.0);
        for &p in &unfrozen {
            for (v, _) in alloc.served_coeffs(k, p) {
                m2.set_obj(v, 1.0);
            }
        }
        let out2 = solve_robust(&m2, &RobustOptions::default(), None);
        reports.push(out2.report);
        let sol2 = out2.result?;
        let mut newly = 0;
        for &p in &unfrozen {
            let got = alloc.served_at(&sol2, k, p);
            served[p] = got;
            if got <= t * demands[p] + 1e-6 {
                frozen[p] = Some(t);
                newly += 1;
            }
        }
        if newly == 0 {
            for &p in &unfrozen {
                frozen[p] = Some((served[p] / demands[p]).min(1.0));
            }
            break;
        }
    }
    for p in 0..np {
        if let Some(fr) = frozen[p] {
            served[p] = fr * demands[p];
        }
    }
    Ok(served)
}

/// Frozen-share carry-forward: keep the previous interval's loss for every
/// pair that is still connected in `scen`; disconnected pairs and dead
/// demands go to loss 1 and 0 respectively. No LP involved.
pub fn carry_forward_losses(inst: &Instance, scen: &Scenario, prev: &[f64]) -> Vec<f64> {
    let dead = scen.dead_mask();
    (0..inst.num_flows())
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            if inst.demands[k][p] * scen.demand_factor <= 0.0 {
                0.0
            } else if !inst.tunnels[k].pair_alive(p, &dead) {
                1.0
            } else {
                clamp_loss(prev[f])
            }
        })
        .collect()
}

/// Closed-form proportional-share allocation, the controller's last-resort
/// fallback: each live pair routes its whole demand on its first live
/// tunnel, and every flow is scaled by the single factor
/// `θ = min(1, min_a cap_a / load_a)` that makes the most-loaded link fit.
/// Scaling all flows by the common θ keeps every link within capacity, so
/// the allocation is always feasible; the returned losses are `1 − θ` for
/// live pairs (1 for dead pairs, 0 for zero demands). No LP involved.
pub fn proportional_share_losses(inst: &Instance, scen: &Scenario) -> Vec<f64> {
    let dead = scen.dead_mask();
    let df = scen.demand_factor;
    let nk = inst.num_classes();
    let np = inst.num_pairs();
    let mut load = vec![0.0; inst.num_arcs()];
    for k in 0..nk {
        for p in 0..np {
            let d = inst.demands[k][p] * df;
            if d <= 0.0 {
                continue;
            }
            if let Some(path) = inst.tunnels[k].tunnels[p].iter().find(|t| t.alive(&dead)) {
                for a in inst.arc_ids(path) {
                    load[a] += d;
                }
            }
        }
    }
    let mut theta = 1.0f64;
    for (a, &l) in load.iter().enumerate() {
        if l > 0.0 {
            let cap = inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)];
            theta = theta.min(cap / l);
        }
    }
    let theta = theta.clamp(0.0, 1.0);
    (0..inst.num_flows())
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            if inst.demands[k][p] * df <= 0.0 {
                0.0
            } else if !inst.tunnels[k].pair_alive(p, &dead) {
                1.0
            } else {
                clamp_loss(1.0 - theta)
            }
        })
        .collect()
}

/// Per-scenario summary of a full post-analysis run over a scenario set.
#[derive(Debug, Clone, Default)]
pub struct OnlineRunReport {
    /// Degradation level of each scenario's allocation.
    pub levels: Vec<DegradationLevel>,
    /// `(scenario index, error)` for every terminal solver error.
    pub errors: Vec<(usize, LpError)>,
}

impl OnlineRunReport {
    /// Worst degradation level across the run.
    pub fn worst(&self) -> DegradationLevel {
        self.levels.iter().copied().max().unwrap_or(DegradationLevel::None)
    }

    /// Scenario count per degradation level, in enum order.
    pub fn counts(&self) -> [usize; 4] {
        let mut c = [0; 4];
        for l in &self.levels {
            c[*l as usize] += 1;
        }
        c
    }
}

/// Post-analysis of a Flexile design: run the online allocation in every
/// scenario and collect the loss matrix.
pub fn flexile_losses(inst: &Instance, set: &ScenarioSet, design: &FlexileDesign) -> SchemeResult {
    flexile_losses_with_report(inst, set, design).0
}

/// [`flexile_losses`] plus the per-scenario degradation report, so callers
/// can tell whether any loss column came from a fallback allocation rather
/// than the nominal LP pipeline.
pub fn flexile_losses_with_report(
    inst: &Instance,
    set: &ScenarioSet,
    design: &FlexileDesign,
) -> (SchemeResult, OnlineRunReport) {
    let nq = set.scenarios.len();
    let mut loss = vec![vec![0.0; nq]; inst.num_flows()];
    let mut report = OnlineRunReport::default();
    for (q, scen) in set.scenarios.iter().enumerate() {
        let critical: Vec<bool> = (0..inst.num_flows()).map(|f| design.critical[f][q]).collect();
        let promised: Vec<f64> =
            (0..inst.num_flows()).map(|f| design.offline_loss[f][q]).collect();
        // Scenario sets are not temporal, so there is no "previous interval"
        // to carry shares from; terminal failures fall to proportional share.
        let out = online_allocate_robust(inst, scen, &critical, &promised, None);
        for (f, &v) in out.losses.iter().enumerate() {
            loss[f][q] = v;
        }
        report.levels.push(out.level);
        report.errors.extend(out.errors.into_iter().map(|e| (q, e)));
    }
    (SchemeResult::new("Flexile", loss), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::{solve_flexile, FlexileOptions};
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};
    use flexile_lp::fault::{self, FaultInjector, FaultKind};
    use flexile_metrics::{perc_loss, LossMatrix};

    fn fig1_beta99() -> Instance {
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        inst
    }

    #[test]
    fn online_respects_critical_floors() {
        // Link A-B failed; f1 critical with alpha 0: it must receive its
        // full demand over the detour, squeezing non-critical f2.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let l = online_allocate(&inst, scen, &[true, false], &[0.0, 1.0]);
        assert!(l[0] < 1e-5, "critical flow loss {l:?}");
        assert!(l[1] > 0.5, "non-critical flow should be squeezed: {l:?}");
    }

    #[test]
    fn online_uses_residual_for_noncritical() {
        // All alive: both flows fully served regardless of criticality.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let l = online_allocate(&inst, &set.scenarios[0], &[true, false], &[0.0, 1.0]);
        assert!(l.iter().all(|&v| v < 1e-5), "{l:?}");
    }

    #[test]
    fn end_to_end_fig1_zero_percloss() {
        // Offline + online: the full pipeline achieves PercLoss 0 at 99%.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        let (r, report) = flexile_losses_with_report(&inst, &set, &design);
        let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
        let pl = perc_loss(&m, &[0, 1], 0.99);
        assert!(pl < 1e-6, "end-to-end PercLoss {pl}");
        // Fault-free run: every scenario on the nominal path.
        assert_eq!(report.worst(), DegradationLevel::None);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn online_no_criticals_degrades_to_maxmin() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let l = online_allocate(&inst, scen, &[false, false], &[1.0, 1.0]);
        // Fair split: both ~0.5 (the ScenBest outcome of Fig. 2).
        assert!((l[0] - 0.5).abs() < 1e-4, "{l:?}");
        assert!((l[1] - 0.5).abs() < 1e-4, "{l:?}");
    }

    #[test]
    fn single_fault_recovers_without_degrading_allocation() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let clean = online_allocate(&inst, scen, &[true, false], &[0.0, 1.0]);
        let (out, _) =
            fault::with_injector(FaultInjector::new().at(0, FaultKind::Numerical), || {
                online_allocate_robust(&inst, scen, &[true, false], &[0.0, 1.0], None)
            });
        assert_eq!(out.level, DegradationLevel::SolverRecovered);
        assert!(out.reports.iter().any(|r| r.recovered()));
        for (a, b) in clean.iter().zip(out.losses.iter()) {
            assert!((a - b).abs() < 1e-9, "recovered allocation drifted: {clean:?} vs {:?}", out.losses);
        }
    }

    #[test]
    fn persistent_faults_fall_to_proportional_share() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let (out, _) = fault::with_injector(FaultInjector::always(FaultKind::Numerical), || {
            online_allocate_robust(&inst, scen, &[true, false], &[0.0, 1.0], None)
        });
        assert_eq!(out.level, DegradationLevel::ProportionalShare);
        assert!(!out.errors.is_empty());
        assert!(out.losses.iter().all(|&l| (0.0..=1.0).contains(&l)), "{:?}", out.losses);
        assert_eq!(out.losses, proportional_share_losses(&inst, scen));
    }

    #[test]
    fn persistent_faults_use_carry_forward_when_available() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let prev = vec![0.1, 0.2];
        let (out, _) = fault::with_injector(FaultInjector::always(FaultKind::IterationLimit), || {
            online_allocate_robust(&inst, scen, &[true, false], &[0.0, 1.0], Some(&prev))
        });
        assert_eq!(out.level, DegradationLevel::FrozenCarryForward);
        // Both fig1 pairs stay connected when A-B fails (detour via C).
        assert_eq!(out.losses, vec![0.1, 0.2]);
    }

    #[test]
    fn proportional_share_is_feasible_and_in_range() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        for scen in &set.scenarios {
            let l = proportional_share_losses(&inst, scen);
            assert!(l.iter().all(|&v| (0.0..=1.0).contains(&v)), "{l:?}");
        }
    }

    #[test]
    fn carry_forward_drops_dead_pairs_to_full_loss() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        // Both links of pair 0's tunnels failed => pair dead.
        if let Some(scen) =
            set.scenarios.iter().find(|s| s.failed_units.len() >= 2)
        {
            let prev = vec![0.0, 0.0];
            let l = carry_forward_losses(&inst, scen, &prev);
            let dead = scen.dead_mask();
            for f in 0..inst.num_flows() {
                let p = inst.flow_pair(f);
                if !inst.tunnels[0].pair_alive(p, &dead) {
                    assert_eq!(l[f], 1.0);
                }
            }
        }
    }
}
