//! Critical-flow-aware online bandwidth allocation (§4.3).
//!
//! When a failure occurs, the controller looks up which flows are critical
//! in the observed scenario (decided offline) and solves one LP family:
//!
//! 1. **Reserve** — every critical flow is guaranteed the offline-promised
//!    bandwidth `(1 − α_k) · d_f` (a small elastic slack keeps the model
//!    feasible under numerical drift).
//! 2. **Classes in priority order** — within each class, max-min
//!    water-filling *on flow loss* over all flows of the class (critical
//!    flows may exceed their reservation). Unlike SWAN, lower-priority
//!    stages keep the higher classes' variables in the model and only pin
//!    their served amounts, re-optimizing the *routing* of both classes
//!    jointly (the paper's second §4.3 change).
//! 3. **Residual fill** — a final pass maximizes total served demand with
//!    lexicographic class weights.
//!
//! The result is the per-flow loss vector used by all Flexile
//! post-analysis (it is the loss the network would actually experience).

use crate::decomposition::FlexileDesign;
use flexile_lp::Sense;
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_te::alloc::ScenAlloc;
use flexile_te::types::{clamp_loss, SchemeResult};
use flexile_traffic::Instance;

/// Allocate bandwidth in `scen` given the flows' criticality and the
/// per-flow loss the offline phase promised in this scenario
/// (`promised_loss[f]`, §4.3: "assigns necessary bandwidth for critical
/// flows as pre-decided by the offline phase"). Critical flow `f` is
/// reserved `(1 − promised_loss[f]) · d_f`; non-critical entries are
/// ignored. Returns per-flow losses.
pub fn online_allocate(
    inst: &Instance,
    scen: &Scenario,
    critical: &[bool],
    promised_loss: &[f64],
) -> Vec<f64> {
    let nk = inst.num_classes();
    let np = inst.num_pairs();
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Max);
    // §4.4 TM scenarios: all demands scale by the scenario's factor.
    let df = scen.demand_factor;

    // Demand caps for every live flow.
    for k in 0..nk {
        for p in 0..np {
            if alloc.pair_alive[k][p] && inst.demands[k][p] > 0.0 {
                let coeffs = alloc.served_coeffs(k, p);
                alloc.model.add_row_le(&coeffs, inst.demands[k][p] * df);
            }
        }
    }
    // Critical reservations with a shared elastic slack (penalized hard).
    let eps = alloc.model.add_var("eps", 0.0, 1.0, -1e5);
    for k in 0..nk {
        for p in 0..np {
            let f = inst.flow_index(k, p);
            let d = inst.demands[k][p] * df;
            if !critical[f] || d <= 0.0 || !alloc.pair_alive[k][p] {
                continue;
            }
            let floor = (1.0 - promised_loss[f].clamp(0.0, 1.0)) * d;
            if floor <= 0.0 {
                continue;
            }
            let mut coeffs = alloc.served_coeffs(k, p);
            coeffs.push((eps, d));
            alloc.model.add_row_ge(&coeffs, floor);
        }
    }

    let mut served = vec![0.0; inst.num_flows()];
    // Class-priority water-filling with joint routing.
    for k in 0..nk {
        let shares = waterfill_class(inst, &mut alloc, k, eps, df);
        for p in 0..np {
            served[inst.flow_index(k, p)] = shares[p];
        }
        // Pin this class's served amounts (routing stays free).
        for p in 0..np {
            if alloc.pair_alive[k][p] && inst.demands[k][p] > 0.0 {
                let coeffs = alloc.served_coeffs(k, p);
                alloc.model.add_row_ge(&coeffs, shares[p] - 1e-7);
            }
        }
    }
    // Residual fill with lexicographic class preference.
    let mut weight = 1.0;
    for k in (0..nk).rev() {
        for p in 0..np {
            if alloc.pair_alive[k][p] {
                for (v, _) in alloc.served_coeffs(k, p) {
                    alloc.model.set_obj(v, weight);
                }
            }
        }
        weight *= 100.0;
    }
    if let Ok(sol) = alloc.model.solve() {
        for k in 0..nk {
            for p in 0..np {
                let f = inst.flow_index(k, p);
                served[f] = served[f].max(alloc.served_at(&sol, k, p));
            }
        }
    }

    (0..inst.num_flows())
        .map(|f| {
            let k = inst.flow_class(f);
            let p = inst.flow_pair(f);
            let d = inst.demands[k][p] * df;
            if d <= 0.0 {
                0.0
            } else if !alloc.pair_alive[k][p] {
                1.0
            } else {
                clamp_loss(1.0 - served[f] / d)
            }
        })
        .collect()
}

/// Max-min water-filling on served fraction for one class inside the joint
/// model. Returns per-pair served amounts.
fn waterfill_class(
    inst: &Instance,
    alloc: &mut ScenAlloc,
    k: usize,
    eps: flexile_lp::VarId,
    demand_factor: f64,
) -> Vec<f64> {
    let np = inst.num_pairs();
    let demands: Vec<f64> = inst.demands[k].iter().map(|d| d * demand_factor).collect();
    let mut frozen: Vec<Option<f64>> = (0..np)
        .map(|p| {
            if demands[p] <= 0.0 || !alloc.pair_alive[k][p] {
                Some(0.0)
            } else {
                None
            }
        })
        .collect();
    let t_var = alloc.model.add_var(&format!("t_{k}"), 0.0, 1.0, 0.0);
    let mut served = vec![0.0; np];
    for _round in 0..16 {
        let unfrozen: Vec<usize> = (0..np).filter(|&p| frozen[p].is_none()).collect();
        if unfrozen.is_empty() {
            break;
        }
        let mut m = alloc.model.clone();
        m.set_obj(t_var, 1.0);
        m.set_obj(eps, -1e5);
        for p in 0..np {
            match frozen[p] {
                Some(fr) if demands[p] > 0.0 && alloc.pair_alive[k][p] => {
                    let coeffs = alloc.served_coeffs(k, p);
                    m.add_row_ge(&coeffs, fr * demands[p] - 1e-9);
                }
                None => {
                    let mut coeffs = alloc.served_coeffs(k, p);
                    coeffs.push((t_var, -demands[p]));
                    m.add_row_ge(&coeffs, 0.0);
                }
                _ => {}
            }
        }
        let sol = match m.solve() {
            Ok(s) => s,
            Err(_) => break,
        };
        let t = sol.value(t_var);
        if t >= 1.0 - 1e-9 {
            for &p in &unfrozen {
                frozen[p] = Some(1.0);
            }
            break;
        }
        // Freeze detection via a throughput-max pass at floor t.
        let mut m2 = m.clone();
        m2.set_obj(t_var, 0.0);
        m2.set_bounds(t_var, (t - 1e-9).max(0.0), 1.0);
        for &p in &unfrozen {
            for (v, _) in alloc.served_coeffs(k, p) {
                m2.set_obj(v, 1.0);
            }
        }
        let sol2 = match m2.solve() {
            Ok(s) => s,
            Err(_) => break,
        };
        let mut newly = 0;
        for &p in &unfrozen {
            let got = alloc.served_at(&sol2, k, p);
            served[p] = got;
            if got <= t * demands[p] + 1e-6 {
                frozen[p] = Some(t);
                newly += 1;
            }
        }
        if newly == 0 {
            for &p in &unfrozen {
                frozen[p] = Some((served[p] / demands[p]).min(1.0));
            }
            break;
        }
    }
    for p in 0..np {
        if let Some(fr) = frozen[p] {
            served[p] = fr * demands[p];
        }
    }
    served
}

/// Post-analysis of a Flexile design: run the online allocation in every
/// scenario and collect the loss matrix.
pub fn flexile_losses(inst: &Instance, set: &ScenarioSet, design: &FlexileDesign) -> SchemeResult {
    let nq = set.scenarios.len();
    let mut loss = vec![vec![0.0; nq]; inst.num_flows()];
    for (q, scen) in set.scenarios.iter().enumerate() {
        let critical: Vec<bool> = (0..inst.num_flows()).map(|f| design.critical[f][q]).collect();
        let promised: Vec<f64> =
            (0..inst.num_flows()).map(|f| design.offline_loss[f][q]).collect();
        let l = online_allocate(inst, scen, &critical, &promised);
        for (f, &v) in l.iter().enumerate() {
            loss[f][q] = v;
        }
    }
    SchemeResult::new("Flexile", loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::{solve_flexile, FlexileOptions};
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};
    use flexile_metrics::{perc_loss, LossMatrix};

    fn fig1_beta99() -> Instance {
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        inst
    }

    #[test]
    fn online_respects_critical_floors() {
        // Link A-B failed; f1 critical with alpha 0: it must receive its
        // full demand over the detour, squeezing non-critical f2.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let l = online_allocate(&inst, scen, &[true, false], &[0.0, 1.0]);
        assert!(l[0] < 1e-5, "critical flow loss {l:?}");
        assert!(l[1] > 0.5, "non-critical flow should be squeezed: {l:?}");
    }

    #[test]
    fn online_uses_residual_for_noncritical() {
        // All alive: both flows fully served regardless of criticality.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let l = online_allocate(&inst, &set.scenarios[0], &[true, false], &[0.0, 1.0]);
        assert!(l.iter().all(|&v| v < 1e-5), "{l:?}");
    }

    #[test]
    fn end_to_end_fig1_zero_percloss() {
        // Offline + online: the full pipeline achieves PercLoss 0 at 99%.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let design = solve_flexile(&inst, &set, &FlexileOptions::default());
        let r = flexile_losses(&inst, &set, &design);
        let m = LossMatrix::new(r.loss.clone(), set.probs(), set.residual);
        let pl = perc_loss(&m, &[0, 1], 0.99);
        assert!(pl < 1e-6, "end-to-end PercLoss {pl}");
    }

    #[test]
    fn online_no_criticals_degrades_to_maxmin() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let scen = set.scenarios.iter().find(|s| s.failed_units == vec![0]).unwrap();
        let l = online_allocate(&inst, scen, &[false, false], &[1.0, 1.0]);
        // Fair split: both ~0.5 (the ScenBest outcome of Fig. 2).
        assert!((l[0] - 0.5).abs() < 1e-4, "{l:?}");
        assert!((l[1] - 0.5).abs() < 1e-4, "{l:?}");
    }
}
