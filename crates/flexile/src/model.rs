//! The monolithic MIP formulation (I) (§4.1) — the paper's `IP` baseline.
//!
//! Jointly chooses the critical scenarios `z_fq` and the per-scenario
//! routing `x_ktq` to minimize `Σ_k w_k α_k`. Exact but large: the paper
//! itself can only solve it on smaller topologies (Fig. 15 shows `IP`
//! timing out at one hour beyond ~85 links); we use it the same way, as
//! the ground truth for the optimality-gap experiment (Fig. 14).

use flexile_lp::{solve_mip, MipOptions, MipStatus, Model, Sense, VarId};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::time::Duration;

/// Options for the exact formulation.
#[derive(Debug, Clone)]
pub struct IpOptions {
    /// Branch-and-bound node budget.
    pub max_nodes: usize,
    /// Wall-clock budget (the paper uses a 1-hour cap).
    pub time_limit: Duration,
}

impl Default for IpOptions {
    fn default() -> Self {
        IpOptions { max_nodes: 20_000, time_limit: Duration::from_secs(120) }
    }
}

/// Result of solving formulation (I).
#[derive(Debug, Clone)]
pub struct IpResult {
    /// Objective `Σ_k w_k α_k` of the best incumbent.
    pub penalty: f64,
    /// Proven lower bound (equals `penalty` when `optimal`).
    pub bound: f64,
    /// Whether optimality was proven within the budget.
    pub optimal: bool,
    /// Critical-scenario assignment of the incumbent.
    pub critical: Vec<Vec<bool>>,
}

/// Solve formulation (I) exactly (within the branch-and-bound budget).
pub fn solve_ip(inst: &Instance, set: &ScenarioSet, opts: &IpOptions) -> IpResult {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let betas = crate::effective_betas(inst, set);

    let mut m = Model::new(Sense::Min);
    let alpha: Vec<VarId> = inst
        .classes
        .iter()
        .enumerate()
        .map(|(k, c)| m.add_var(&format!("alpha_{k}"), 0.0, 1.0, c.weight))
        .collect();

    // z and l per (flow, scenario); z only where the flow is connected.
    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; nq]; nf];
    let mut l: Vec<Vec<VarId>> = vec![Vec::with_capacity(nq); nf];
    for f in 0..nf {
        let k = inst.flow_class(f);
        let p = inst.flow_pair(f);
        for (q, scen) in set.scenarios.iter().enumerate() {
            let lv = m.add_var(&format!("l_{f}_{q}"), 0.0, 1.0, 0.0);
            l[f].push(lv);
            if inst.tunnels[k].pair_alive(p, &scen.dead_mask()) {
                let zv = m.add_binary(&format!("z_{f}_{q}"), 0.0);
                z[f][q] = Some(zv);
                // (4): alpha_k - l_fq - z_fq >= -1
                m.add_row_ge(&[(alpha[k], 1.0), (lv, -1.0), (zv, -1.0)], -1.0);
            }
        }
    }
    // (3) coverage, capped at the connectable mass.
    for f in 0..nf {
        let k = inst.flow_class(f);
        let coeffs: Vec<(VarId, f64)> = (0..nq)
            .filter_map(|q| z[f][q].map(|v| (v, set.scenarios[q].prob)))
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        let avail: f64 = coeffs.iter().map(|c| c.1).sum();
        m.add_row_ge(&coeffs, betas[k].min(avail));
    }
    // Per-scenario routing blocks: (17)-style demand rows + (18) capacity.
    for (q, scen) in set.scenarios.iter().enumerate() {
        let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_arcs()];
        for k in 0..inst.num_classes() {
            for p in 0..inst.num_pairs() {
                let f = inst.flow_index(k, p);
                let d = inst.demands[k][p];
                if d <= 0.0 {
                    continue;
                }
                let mut coeffs: Vec<(VarId, f64)> = Vec::new();
                for (t, path) in inst.tunnels[k].tunnels[p].iter().enumerate() {
                    let v = m.add_var(&format!("x_{k}_{p}_{t}_{q}"), 0.0, f64::INFINITY, 0.0);
                    for a in inst.arc_ids(path) {
                        arc_terms[a].push((v, 1.0));
                    }
                    coeffs.push((v, 1.0));
                }
                coeffs.push((l[f][q], d));
                m.add_row_ge(&coeffs, d);
            }
        }
        for (a, terms) in arc_terms.into_iter().enumerate() {
            if !terms.is_empty() {
                let cap = inst.arc_capacity(a) * scen.cap_factor[inst.arc_link(a)];
                m.add_row_le(&terms, cap);
            }
        }
    }

    let mip_opts = MipOptions {
        max_nodes: opts.max_nodes,
        time_limit: opts.time_limit,
        ..MipOptions::default()
    };
    let r = solve_mip(&m, &mip_opts).expect("IP solve failed");
    let mut critical = vec![vec![false; nq]; nf];
    if !r.x.is_empty() {
        for f in 0..nf {
            for q in 0..nq {
                if let Some(v) = z[f][q] {
                    critical[f][q] = r.x[v.index()] > 0.5;
                }
            }
        }
    }
    IpResult {
        penalty: if r.x.is_empty() { f64::NAN } else { r.objective },
        bound: r.bound,
        optimal: r.status == MipStatus::Optimal,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::{solve_flexile, FlexileOptions};
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};

    fn fig1_beta99() -> Instance {
        let mut inst = fig1_instance();
        inst.classes[0].beta = 0.99;
        inst
    }

    #[test]
    fn ip_finds_zero_penalty_on_fig1() {
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let r = solve_ip(&inst, &set, &IpOptions::default());
        assert!(r.optimal, "IP should prove optimality on the triangle");
        assert!(r.penalty < 1e-6, "IP penalty {}", r.penalty);
    }

    #[test]
    fn decomposition_matches_ip_optimum() {
        // Fig. 14's claim: the decomposition reaches the IP optimum within
        // 5 iterations.
        let inst = fig1_beta99();
        let set = fig1_scenarios();
        let ip = solve_ip(&inst, &set, &IpOptions::default());
        let dec = solve_flexile(&inst, &set, &FlexileOptions::default());
        assert!(
            (dec.penalty - ip.penalty).abs() < 1e-6,
            "decomposition {} vs IP {}",
            dec.penalty,
            ip.penalty
        );
    }
}
