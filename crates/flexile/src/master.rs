//! The decomposition master problem (M) (§4.2).
//!
//! Given the cuts learned so far, the master proposes the next criticality
//! assignment `z`:
//!
//! ```text
//! min  Penalty
//! s.t. Penalty ≥ g_q(z_{·q})        for every stored cut, per scenario (19)
//!      Σ_q p_q z_fq ≥ β_k           coverage per flow (3)
//!      Σ |z_fq − z'_fq| ≤ Limit     Hamming stabilizer (23)
//!      z_fq = 0 where flow f is disconnected in q (starting heuristic §4.2)
//! ```
//!
//! `Penalty ≥ g_q(z_{·q})` is valid because the true penalty
//! `Σ_k w_k α_k = Σ_k w_k max_q α_kq` dominates every per-scenario optimum.
//!
//! Two solving modes, chosen by size:
//! * **exact** — branch and bound over the binary `z` (small instances);
//! * **LP + rounding** — solve the relaxation, then per flow greedily pick
//!   the cheapest scenarios (by cut pressure, then probability) until the
//!   coverage constraint holds; a local-improvement pass then tries
//!   single-swap reductions of the bound. This is the documented
//!   substitution for a commercial MIP solver on large instances; the
//!   Hamming stabilizer the paper already employs keeps each step's search
//!   neighbourhood small, and Fig. 14's optimality-gap experiment measures
//!   the end-to-end effect.

use crate::subproblem::Cut;
use flexile_lp::{solve_mip, solve_robust, MipOptions, Model, RobustOptions, Sense, VarId};
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::time::Duration;

/// Cuts stored per scenario (each `solve` of `S_q` appends one).
#[derive(Debug, Default, Clone)]
pub struct CutPool {
    /// `cuts[q]` holds the cuts generated from scenario `q`.
    pub cuts: Vec<Vec<Cut>>,
}

impl CutPool {
    /// Empty pool for `nq` scenarios.
    pub fn new(nq: usize) -> Self {
        CutPool { cuts: vec![Vec::new(); nq] }
    }

    /// Add a cut learned from scenario `q`.
    pub fn push(&mut self, q: usize, cut: Cut) {
        self.cuts[q].push(cut);
    }

    /// Total cuts stored.
    pub fn len(&self) -> usize {
        self.cuts.iter().map(|c| c.len()).sum()
    }

    /// True when no cut has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Master-solving configuration.
#[derive(Debug, Clone)]
pub struct MasterOptions {
    /// Hamming-distance limit per iteration (eq. 23). `0` disables the
    /// stabilizer.
    pub hamming_limit: usize,
    /// Use exact branch-and-bound when `|F|·|Q| ≤ exact_threshold`.
    pub exact_threshold: usize,
    /// Branch-and-bound budget for the exact mode.
    pub mip_time_limit: Duration,
    /// LP presolve on the branch-and-bound node relaxations. On by
    /// default; the decomposition's bit-identity tests toggle it to prove
    /// the master's output does not depend on the reduction.
    pub presolve: bool,
}

impl Default for MasterOptions {
    fn default() -> Self {
        MasterOptions {
            hamming_limit: 0,
            exact_threshold: 600,
            mip_time_limit: Duration::from_secs(20),
            presolve: true,
        }
    }
}

/// Solve the master problem: returns the proposed `z[f][q]` and the master
/// lower bound on the penalty.
///
/// `allowed[f][q]` marks (connected) flow/scenario combinations that may be
/// critical; `betas[k]` are the per-class coverage targets; `prev` is the
/// previous iteration's `z` for the Hamming stabilizer.
pub fn solve_master(
    inst: &Instance,
    set: &ScenarioSet,
    pool: &CutPool,
    allowed: &[Vec<bool>],
    betas: &[f64],
    prev: &[Vec<bool>],
    opts: &MasterOptions,
) -> (Vec<Vec<bool>>, f64) {
    let nf = inst.num_flows();
    let nq = set.scenarios.len();
    let exact = nf * nq <= opts.exact_threshold;

    // Per-arc capacities per scenario (cut evaluation needs them).
    let cap_arc: Vec<Vec<f64>> = set
        .scenarios
        .iter()
        .map(|s| {
            (0..inst.num_arcs())
                .map(|a| inst.arc_capacity(a) * s.cap_factor[inst.arc_link(a)])
                .collect()
        })
        .collect();

    let mut m = Model::new(Sense::Min);
    let penalty = m.add_var("penalty", 0.0, f64::INFINITY, 1.0);
    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; nq]; nf];
    for f in 0..nf {
        for q in 0..nq {
            if allowed[f][q] {
                let v = if exact {
                    m.add_binary(&format!("z_{f}_{q}"), 0.0)
                } else {
                    m.add_var(&format!("z_{f}_{q}"), 0.0, 1.0, 0.0)
                };
                z[f][q] = Some(v);
            }
        }
    }
    // Coverage (3).
    for f in 0..nf {
        let k = inst.flow_class(f);
        let coeffs: Vec<(VarId, f64)> = (0..nq)
            .filter_map(|q| z[f][q].map(|v| (v, set.scenarios[q].prob)))
            .collect();
        if coeffs.is_empty() {
            continue; // flow never connected; coverage is unreachable
        }
        m.add_row_ge(&coeffs, betas[k].min(coeffs.iter().map(|c| c.1).sum()));
    }
    // Cut rows (19): Penalty ≥ g_q(z_{·q}).
    for q in 0..nq {
        for cut in &pool.cuts[q] {
            // g = d_const + Σ_f w_f (z_fq − 1) + Σ_a u_a cap_a(q)
            let mut constant = cut.d_const;
            for (&u, &c) in cut.u.iter().zip(cap_arc[q].iter()) {
                constant += u * c;
            }
            let mut coeffs: Vec<(VarId, f64)> = vec![(penalty, 1.0)];
            for f in 0..nf {
                let w = cut.w[f];
                if w <= 1e-12 {
                    continue;
                }
                constant -= w;
                // z forced 0 (None): the -w stays in the constant.
                if let Some(v) = z[f][q] {
                    coeffs.push((v, -w));
                }
            }
            // Penalty - Σ w z ≥ constant
            m.add_row_ge(&coeffs, constant);
        }
    }
    // Hamming stabilizer (23): Σ_{prev=1}(1−z) + Σ_{prev=0} z ≤ Limit.
    if opts.hamming_limit > 0 {
        let mut coeffs = Vec::new();
        let mut ones = 0usize;
        for f in 0..nf {
            for q in 0..nq {
                if let Some(v) = z[f][q] {
                    if prev[f][q] {
                        coeffs.push((v, -1.0));
                        ones += 1;
                    } else {
                        coeffs.push((v, 1.0));
                    }
                }
            }
        }
        m.add_row_le(&coeffs, opts.hamming_limit as f64 - ones as f64);
    }

    if exact {
        let mip_opts = MipOptions {
            presolve: opts.presolve,
            max_nodes: 5_000,
            time_limit: opts.mip_time_limit,
            ..MipOptions::default()
        };
        if let Ok(r) = solve_mip(&m, &mip_opts) {
            if !r.x.is_empty() {
                let mut out = vec![vec![false; nq]; nf];
                for f in 0..nf {
                    for q in 0..nq {
                        if let Some(v) = z[f][q] {
                            out[f][q] = r.x[v.index()] > 0.5;
                        }
                    }
                }
                return (out, r.bound.max(0.0));
            }
        }
        // Fall through to the heuristic on MIP failure.
    }

    // LP relaxation + greedy rounding. The robust ladder absorbs transient
    // solver faults; a terminal failure falls back to greedy rounding on a
    // zero relaxation (pressure + probability ordering still applies).
    let (frac, lb) = match solve_robust(&m, &RobustOptions::default(), None).result {
        Ok(sol) => {
            let frac: Vec<Vec<f64>> = (0..nf)
                .map(|f| {
                    (0..nq)
                        .map(|q| z[f][q].map_or(0.0, |v| sol.value(v)))
                        .collect()
                })
                .collect();
            (frac, sol.objective.max(0.0))
        }
        Err(_) => (vec![vec![0.0; nq]; nf], 0.0),
    };

    // Note: the greedy rounding below does not re-impose the Hamming
    // stabilizer (the LP relaxation above does); with the stabilizer
    // enabled the exact mode should be used for strict step bounds.
    // Cut pressure of marking (f, q) critical: the largest w_f among the
    // scenario's cuts.
    let pressure = |f: usize, q: usize| -> f64 {
        pool.cuts[q].iter().map(|c| c.w[f]).fold(0.0, f64::max)
    };
    let mut out = vec![vec![false; nq]; nf];
    for f in 0..nf {
        let k = inst.flow_class(f);
        let mut cands: Vec<usize> = (0..nq).filter(|&q| allowed[f][q]).collect();
        // Greedy: low pressure first, then high probability, then high
        // fractional value from the relaxation.
        cands.sort_by(|&a, &b| {
            let pa = (pressure(f, a), -set.scenarios[a].prob, -frac[f][a]);
            let pb = (pressure(f, b), -set.scenarios[b].prob, -frac[f][b]);
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let target: f64 = betas[k].min(cands.iter().map(|&q| set.scenarios[q].prob).sum());
        let mut acc = 0.0;
        for &q in &cands {
            if acc + 1e-12 >= target {
                break;
            }
            out[f][q] = true;
            acc += set.scenarios[q].prob;
        }
    }
    (out, lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subproblem::tests::{fig1_instance, fig1_scenarios};
    use crate::subproblem::SubproblemTemplate;

    fn connected_matrix(
        inst: &Instance,
        set: &ScenarioSet,
    ) -> Vec<Vec<bool>> {
        let nf = inst.num_flows();
        (0..nf)
            .map(|f| {
                let k = inst.flow_class(f);
                let p = inst.flow_pair(f);
                set.scenarios
                    .iter()
                    .map(|s| inst.tunnels[k].pair_alive(p, &s.dead_mask()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn master_picks_noncritical_where_cuts_bite() {
        // Fig. 1/4: after cuts from the two single-failure scenarios with
        // both flows critical, the master should mark f1 non-critical in
        // the A-B-failure scenario and f2 non-critical in the A-C-failure
        // scenario, achieving penalty 0.
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let allowed = connected_matrix(&inst, &set);
        let betas = vec![0.99];
        let mut pool = CutPool::new(set.scenarios.len());
        let mut t = SubproblemTemplate::new(&inst, None);
        let z_all: Vec<bool> = vec![true, true];
        for (q, scen) in set.scenarios.iter().enumerate() {
            let s = t.solve(&inst, scen, &z_all).unwrap();
            pool.push(q, s.cut);
        }
        let prev = allowed.clone();
        let (z, bound) = solve_master(
            &inst,
            &set,
            &pool,
            &allowed,
            &betas,
            &prev,
            &MasterOptions::default(),
        );
        // Coverage: each flow's critical mass ≥ 0.99.
        for f in 0..2 {
            let mass: f64 = (0..set.scenarios.len())
                .filter(|&q| z[f][q])
                .map(|q| set.scenarios[q].prob)
                .sum();
            assert!(mass + 1e-9 >= 0.99, "flow {f} covers only {mass}");
        }
        // The A-B-failure scenario must not be critical for BOTH flows
        // simultaneously at the optimum.
        let qab = set.scenarios.iter().position(|s| s.failed_units == vec![0]).unwrap();
        let qac = set.scenarios.iter().position(|s| s.failed_units == vec![1]).unwrap();
        assert!(
            !(z[0][qab] && z[1][qab] && z[0][qac] && z[1][qac]),
            "master kept penalty-inducing criticality everywhere"
        );
        assert!(bound <= 0.5 + 1e-6);
    }

    #[test]
    fn coverage_unreachable_is_capped() {
        // With a tiny scenario set the coverage target caps at the
        // available mass instead of going infeasible.
        let inst = fig1_instance();
        let mut set = fig1_scenarios();
        set.scenarios.truncate(1);
        let allowed = connected_matrix(&inst, &set);
        let pool = CutPool::new(1);
        let prev = allowed.clone();
        let (z, _) = solve_master(
            &inst,
            &set,
            &pool,
            &allowed,
            &[0.999],
            &prev,
            &MasterOptions::default(),
        );
        assert!(z[0][0] && z[1][0]);
    }

    #[test]
    fn hamming_limit_restricts_change() {
        let inst = fig1_instance();
        let set = fig1_scenarios();
        let allowed = connected_matrix(&inst, &set);
        let pool = CutPool::new(set.scenarios.len());
        // prev: everything allowed is critical.
        let prev = allowed.clone();
        let opts = MasterOptions { hamming_limit: 1, ..Default::default() };
        let (z, _) = solve_master(&inst, &set, &pool, &allowed, &[0.99], &prev, &opts);
        let mut dist = 0;
        for f in 0..z.len() {
            for q in 0..z[f].len() {
                if z[f][q] != prev[f][q] {
                    dist += 1;
                }
            }
        }
        assert!(dist <= 1, "hamming distance {dist} exceeds limit");
    }
}
