//! The coordinator side of the distributed pool: an [`IterationSolver`]
//! whose workers are OS processes.
//!
//! The coordinator shards each iteration's scenario set across locally
//! spawned worker processes and drives the existing Benders loop
//! ([`crate::decomposition::run_decomposition`]) **bit-identically** to the
//! in-process pool at any worker count. The key invariant is the
//! coordinator's *chain mirror*: for every scenario it tracks the exact
//! solve-column chain the owning worker's template was built from, updated
//! from each result's `chain_reset` flag by the same rules
//! [`solve_contained`] applies locally. Every [`Frame::Assign`] ships the
//! authoritative chain, and the worker replays it through a fresh template
//! whenever its local slot diverges — so a scenario solved by worker 3
//! after worker 0 died mid-iteration produces the same bits as if nothing
//! had happened.
//!
//! ## Failure semantics (summary; see DESIGN.md §5.6)
//!
//! * **Death** (EOF, kill, crash): the worker's pending scenarios are
//!   reassigned under a fresh epoch; the worker is respawned (without its
//!   chaos environment) up to `max_restarts` times, then quarantined.
//! * **Hang**: workers heartbeat on their own clock; a worker silent past
//!   `deadline` is killed and handled as a death
//!   (`flexile.dist_heartbeat_stall`).
//! * **Corruption**: a frame failing checksum/validation condemns the
//!   connection (`flexile.dist_frame_corrupt`) — the stream can no longer
//!   be trusted to be in sync — and is handled as a death.
//! * **Staleness**: results are applied at most once, gated on the
//!   scenario's assignment epoch *and* the connection id that produced
//!   them (`flexile.dist_stale_result`).
//! * **Degradation**: with every slot quarantined (or zero workers
//!   configured) the coordinator re-warms templates from its chain mirror
//!   and continues in-process (`flexile.dist_fallback`) — same bits,
//!   no processes.

use super::frame::{
    encode_frame, read_frame, write_frame, write_frame_bytes, Frame, FrameReadError, Hello,
    Outcome, WireKnobs, WireProblem,
};
use super::worker::{CHAOS_ENV, CONNECT_ENV, SLOT_ENV};
use super::DistError;
use crate::checkpoint::{self, CheckpointError};
use crate::decomposition::{
    self, design_from_state, run_decomposition, BendersState, FlexileOptions, PoolPolicy,
};
use crate::pool::{
    lock_recover, solve_contained, IterationSolver, PoolCtx, PoolError, PoolSnapshot, ScenResult,
    Slot, MAX_PANIC_RETRIES,
};
use crate::subproblem::{Cut, SolveStats, SubproblemSolution};
use crate::FlexileDesign;
use flexile_lp::SolveScratch;
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How to launch a worker process.
#[derive(Debug, Clone)]
pub enum WorkerSpec {
    /// Re-exec the current executable with the given arguments. Tests use
    /// this with `--exact <worker test name>`; `repro` with
    /// `["dist_worker"]`.
    CurrentExe {
        /// Arguments passed to the re-executed binary.
        args: Vec<String>,
    },
    /// Run an arbitrary program.
    Command {
        /// Program path.
        program: String,
        /// Arguments.
        args: Vec<String>,
    },
}

/// Options for the distributed coordinator.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Worker processes to spawn. `0` runs the degraded in-process path
    /// from the start (counted as `flexile.dist_fallback`).
    pub workers: usize,
    /// How to launch each worker.
    pub worker: WorkerSpec,
    /// Worker heartbeat interval.
    pub heartbeat: Duration,
    /// Silence deadline: a worker that produces no frame for this long is
    /// presumed hung, killed, and its scenarios reassigned. Also bounds
    /// the spawn-to-handshake window.
    pub deadline: Duration,
    /// Deaths tolerated per slot before the slot is quarantined (mirrors
    /// [`MAX_PANIC_RETRIES`]: the first spawn plus this many respawns).
    pub max_restarts: u32,
    /// Chaos injection: `(slot, spec)` pairs where `spec` is a
    /// [`crate::killpoints::to_env`] string armed in that slot's
    /// environment on its **first** spawn only (respawns run clean, like a
    /// quarantined template rebuilt cold).
    pub chaos: Vec<(usize, String)>,
}

impl DistOptions {
    /// Options with the default robustness knobs (100 ms heartbeat, 2 s
    /// deadline, [`MAX_PANIC_RETRIES`] restarts, no chaos).
    pub fn new(workers: usize, worker: WorkerSpec) -> Self {
        DistOptions {
            workers,
            worker,
            heartbeat: Duration::from_millis(100),
            deadline: Duration::from_secs(2),
            max_restarts: MAX_PANIC_RETRIES,
            chaos: Vec::new(),
        }
    }
}

/// Run Flexile's offline phase on a coordinator/worker process fleet.
/// Produces a design bit-identical to [`crate::solve_flexile`] with the
/// same `opts`, at any worker count and under worker death, hangs, and
/// frame corruption.
pub fn solve_flexile_dist(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    dopts: &DistOptions,
) -> Result<FlexileDesign, DistError> {
    let prep = decomposition::prepare(inst, set, opts);
    let state = BendersState::fresh(&prep.allowed, set.scenarios.len());
    run_dist(inst, set, opts, dopts, &prep, state, None)
}

/// Resume a checkpointed decomposition on the distributed substrate (the
/// process-fleet analogue of [`crate::decompose_resume`]). The checkpoint
/// must fingerprint-match the problem and options; workers additionally
/// re-verify the same fingerprints at handshake.
pub fn decompose_resume_dist(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    dopts: &DistOptions,
) -> Result<FlexileDesign, DistError> {
    let dir = opts
        .checkpoint_dir
        .as_ref()
        .ok_or(DistError::Checkpoint(CheckpointError::NoCheckpointConfigured))?;
    let ck = checkpoint::read_checkpoint(&checkpoint::checkpoint_path(dir))
        .map_err(DistError::Checkpoint)?;
    checkpoint::validate_fingerprints(&ck, inst, set, opts).map_err(DistError::Checkpoint)?;
    let betas = crate::effective_betas(inst, set);
    if betas.len() != ck.betas.len()
        || betas.iter().zip(&ck.betas).any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(DistError::Checkpoint(CheckpointError::ProblemMismatch {
            component: "betas",
        }));
    }
    let state = BendersState::from_checkpoint(&ck).map_err(DistError::Checkpoint)?;
    let snap = PoolSnapshot { stamps: ck.stamps, chains: ck.chains };
    if state.done {
        return Ok(design_from_state(state, &betas));
    }
    let prep = decomposition::prepare(inst, set, opts);
    run_dist(inst, set, opts, dopts, &prep, state, Some((ck.it, snap)))
}

fn run_dist(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
    dopts: &DistOptions,
    prep: &decomposition::Prepared,
    state: BendersState,
    restore: Option<(usize, PoolSnapshot)>,
) -> Result<FlexileDesign, DistError> {
    let ctx = PoolCtx {
        inst,
        set,
        loss_ub: prep.loss_ub.as_deref(),
        watchdog: opts.watchdog,
        batch_width: opts.batch_width,
    };
    let hello = Hello {
        problem_parts: checkpoint::problem_fingerprint_parts(inst, set),
        options_parts: checkpoint::options_fingerprint_parts(opts),
        problem: WireProblem {
            inst: inst.clone(),
            set: set.clone(),
            loss_ub: prep.loss_ub.clone(),
        },
        knobs: WireKnobs {
            max_iterations: opts.max_iterations as u64,
            prune: opts.prune,
            gamma: opts.gamma,
            hamming_limit: opts.master.hamming_limit as u64,
            exact_threshold: opts.master.exact_threshold as u64,
            pool: match opts.pool {
                PoolPolicy::PerScenario => 0,
                PoolPolicy::LegacyStriped => 1,
                PoolPolicy::Cold => 2,
            },
            basis_residency: opts.basis_residency as u64,
            batch_width: opts.batch_width as u64,
            watchdog_millis: opts.watchdog.map(|d| d.as_millis() as u64),
            heartbeat_millis: dopts.heartbeat.as_millis().max(1) as u64,
        },
    };
    let residency = if opts.pool == PoolPolicy::Cold { 0 } else { opts.basis_residency };
    let mut solver = DistSolver::new(ctx, &hello, dopts, residency)?;
    if let Some((it, snap)) = &restore {
        solver.restore(*it, snap);
    }
    Ok(run_decomposition(inst, set, opts, &prep.betas, &prep.allowed, &mut solver, state))
}

/// At-most-once gate for an incoming result frame: it must come from the
/// slot's *current* connection, reference a scenario still pending, and
/// carry the scenario's current assignment epoch. Everything else is a
/// duplicate or a ghost from a replaced worker.
pub(crate) fn result_is_current(
    frame_epoch: u64,
    scen_epoch: u64,
    event_conn: u64,
    slot_conn: u64,
    pending: bool,
) -> bool {
    pending && event_conn != 0 && event_conn == slot_conn && frame_epoch == scen_epoch
}

/// Messages from the acceptor / per-connection reader threads to the
/// coordinator's event loop, each tagged with the connection id that
/// produced it so events from replaced connections are discarded.
enum Event {
    /// A worker completed the fingerprint handshake; `stream` is the write
    /// half for assignments.
    Ready { slot: usize, conn_id: u64, stream: TcpStream },
    /// A worker refused the handshake, naming the diverging component. No
    /// connection id: a rejected connection is never installed, so there
    /// is nothing to be stale against.
    Rejected { slot: usize, component: String },
    /// A validated frame arrived.
    Frame { slot: usize, conn_id: u64, frame: Frame },
    /// A frame failed checksum/validation; the connection is condemned.
    Corrupt { slot: usize, conn_id: u64 },
    /// The connection closed or the transport failed.
    Gone { slot: usize, conn_id: u64 },
}

struct WorkerState {
    child: Option<Child>,
    /// Write half of the current connection (`None` while (re)spawning).
    conn: Option<TcpStream>,
    /// Id of the current connection; 0 = none. Events carrying any other
    /// id are stale.
    conn_id: u64,
    last_seen: Instant,
    spawned_at: Instant,
    spawned_once: bool,
    restarts: u32,
    quarantined: bool,
    /// A write to this connection failed mid-wave; assignments to it stay
    /// logical (no further writes) until the death event lands.
    broken: bool,
}

/// Degraded-mode state: the in-process slots the coordinator solves on
/// once every worker is gone.
struct LocalExec {
    slots: Vec<Mutex<Slot>>,
    scratch: SolveScratch,
}

struct DistSolver<'a> {
    ctx: PoolCtx<'a>,
    addr: SocketAddr,
    rx: Receiver<Event>,
    workers: Vec<WorkerState>,
    command: (String, Vec<String>),
    chaos: Vec<(usize, String)>,
    deadline: Duration,
    max_restarts: u32,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,

    // Chain mirror + LRU bookkeeping (the coordinator's authoritative copy
    // of every worker-side template's provenance).
    chains: Vec<Vec<Vec<bool>>>,
    resident: Vec<bool>,
    stamps: Vec<u64>,
    residency: usize,
    epoch: u64,
    scen_epoch: Vec<u64>,

    // Current-wave state.
    pending: BTreeMap<usize, Vec<bool>>,
    assigned: HashMap<usize, usize>,
    parked: BTreeSet<usize>,
    wave_results: Vec<ScenResult>,
    cut_stash: Vec<(u64, Cut)>,

    local: Option<LocalExec>,
}

impl<'a> DistSolver<'a> {
    fn new(
        ctx: PoolCtx<'a>,
        hello: &Hello,
        dopts: &DistOptions,
        residency: usize,
    ) -> Result<Self, DistError> {
        let nq = ctx.set.scenarios.len();
        let command = match &dopts.worker {
            WorkerSpec::CurrentExe { args } => {
                let exe = std::env::current_exe()
                    .map_err(|e| DistError::Env(format!("current_exe: {e}")))?;
                (exe.to_string_lossy().into_owned(), args.clone())
            }
            WorkerSpec::Command { program, args } => (program.clone(), args.clone()),
        };
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| DistError::Io(format!("bind coordinator listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DistError::Io(format!("listener address: {e}")))?;
        let (tx, rx) = channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let hello_bytes = Arc::new(encode_frame(&Frame::Hello(Box::new(hello.clone()))));
        let acceptor = {
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let hello_bytes = Arc::clone(&hello_bytes);
            let nworkers = dopts.workers;
            let handshake_deadline = dopts.deadline;
            std::thread::spawn(move || {
                acceptor_loop(listener, tx, shutdown, hello_bytes, nworkers, handshake_deadline)
            })
        };
        let now = Instant::now();
        let workers = (0..dopts.workers)
            .map(|_| WorkerState {
                child: None,
                conn: None,
                conn_id: 0,
                last_seen: now,
                spawned_at: now,
                spawned_once: false,
                restarts: 0,
                quarantined: false,
                broken: false,
            })
            .collect();
        Ok(DistSolver {
            ctx,
            addr,
            rx,
            workers,
            command,
            chaos: dopts.chaos.clone(),
            deadline: dopts.deadline,
            max_restarts: dopts.max_restarts,
            shutdown,
            acceptor: Some(acceptor),
            chains: vec![Vec::new(); nq],
            resident: vec![false; nq],
            stamps: vec![0; nq],
            residency,
            epoch: 0,
            scen_epoch: vec![0; nq],
            pending: BTreeMap::new(),
            assigned: HashMap::new(),
            parked: BTreeSet::new(),
            wave_results: Vec::new(),
            cut_stash: Vec::new(),
            local: None,
        })
    }

    fn all_dead(&self) -> bool {
        self.workers.is_empty() || self.workers.iter().all(|w| w.quarantined)
    }

    fn spawn(&mut self, slot: usize) {
        let (program, args) = &self.command;
        let mut cmd = Command::new(program);
        cmd.args(args)
            .env(CONNECT_ENV, self.addr.to_string())
            .env(SLOT_ENV, slot.to_string())
            .env_remove(CHAOS_ENV)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        // Chaos is armed on the first incarnation only: a respawned worker,
        // like a quarantined template, comes back clean.
        if !self.workers[slot].spawned_once {
            if let Some((_, spec)) = self.chaos.iter().find(|(s, _)| *s == slot) {
                cmd.env(CHAOS_ENV, spec);
            }
        }
        let ws = &mut self.workers[slot];
        ws.spawned_once = true;
        match cmd.spawn() {
            Ok(child) => {
                ws.child = Some(child);
                ws.spawned_at = Instant::now();
                flexile_obs::add("flexile.dist_workers_spawned", 1);
            }
            Err(e) => {
                eprintln!("dist: spawning worker {slot} failed: {e}");
                ws.restarts += 1;
                if ws.restarts > self.max_restarts {
                    ws.quarantined = true;
                    flexile_obs::add("flexile.dist_worker_quarantined", 1);
                    flexile_obs::flight::dump("dist_worker_quarantined");
                }
            }
        }
    }

    /// Block until every non-quarantined slot has a handshaken connection
    /// (spawning and replacing as needed), so wave sharding never depends
    /// on spawn timing. Returns with `all_dead()` true if every slot
    /// quarantines on the way.
    fn ensure_workers(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        for ws in &mut self.workers {
            ws.broken = false;
        }
        loop {
            if self.all_dead() {
                return;
            }
            let mut all_ready = true;
            for slot in 0..self.workers.len() {
                let ws = &self.workers[slot];
                if ws.quarantined || ws.conn.is_some() {
                    continue;
                }
                all_ready = false;
                if ws.child.is_none() {
                    self.spawn(slot);
                }
            }
            if all_ready {
                break;
            }
            match self.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ev) => self.handle_event(ev, 0),
                Err(RecvTimeoutError::Timeout) => self.check_deadlines(0),
                Err(RecvTimeoutError::Disconnected) => {
                    // The acceptor is gone; nothing will ever hand us a
                    // connection again. Quarantine everything and degrade.
                    for slot in 0..self.workers.len() {
                        if !self.workers[slot].quarantined {
                            self.kill_worker(slot, 0);
                            self.workers[slot].quarantined = true;
                        }
                    }
                    return;
                }
            }
        }
        // Fresh liveness baseline: the gap since the last wave (master
        // solve, checkpoint write) must not count against the deadline.
        let now = Instant::now();
        for ws in &mut self.workers {
            if ws.conn.is_some() {
                ws.last_seen = now;
            }
        }
    }

    /// First assignable slot scanning cyclically from `pref`. Initial wave
    /// sharding uses [`Self::initial_target`] instead so the shard map is
    /// fixed at wave start.
    fn pick_target(&self, pref: usize) -> Option<usize> {
        let n = self.workers.len();
        (0..n).map(|k| (pref + k) % n).find(|&s| {
            let ws = &self.workers[s];
            !ws.quarantined && !ws.broken && ws.conn.is_some()
        })
    }

    /// Wave-start shard target for scenario `q`: the first non-quarantined
    /// slot scanning from `q % n`. `ensure_workers` guarantees every such
    /// slot is connected, and mid-pump write failures do not reroute (the
    /// slot keeps its logical share and the death path reassigns it), so
    /// the shard map — and every reassignment count derived from it — is a
    /// pure function of which slots were alive at wave start.
    fn initial_target(&self, pref: usize) -> Option<usize> {
        let n = self.workers.len();
        (0..n).map(|k| (pref + k) % n).find(|&s| !self.workers[s].quarantined)
    }

    /// Record `q`'s assignment to slot `t` under the current epoch and ship
    /// the Assign frame (skipped, not rerouted, if the connection already
    /// failed this wave).
    fn send_assign(&mut self, t: usize, q: usize, it: usize) {
        self.scen_epoch[q] = self.epoch;
        self.assigned.insert(q, t);
        let frame = Frame::Assign {
            epoch: self.epoch,
            iteration: it as u64,
            scenario: q as u64,
            col: self.pending[&q].clone(),
            chain: self.chains[q].clone(),
        };
        let ws = &mut self.workers[t];
        if ws.broken {
            return;
        }
        match ws.conn.as_mut() {
            Some(conn) => {
                if write_frame(conn, &frame).is_err() {
                    ws.broken = true;
                }
            }
            None => ws.broken = true,
        }
    }

    fn broadcast(&mut self, frame: &Frame) {
        let bytes = encode_frame(frame);
        for ws in &mut self.workers {
            if ws.broken || ws.quarantined {
                continue;
            }
            if let Some(conn) = ws.conn.as_mut() {
                if write_frame_bytes(conn, &bytes).is_err() {
                    ws.broken = true;
                }
            }
        }
    }

    /// Death path: kill and reap the process, bump the restart ladder
    /// (respawn or quarantine), and reassign every scenario the slot still
    /// owed under a fresh epoch.
    fn kill_worker(&mut self, slot: usize, it: usize) {
        flexile_obs::add("flexile.dist_worker_dead", 1);
        flexile_obs::flight::dump("dist_worker_dead");
        {
            let ws = &mut self.workers[slot];
            if let Some(mut child) = ws.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            ws.conn = None;
            ws.conn_id = 0;
            ws.broken = false;
            ws.restarts += 1;
        }
        if self.workers[slot].restarts > self.max_restarts {
            self.workers[slot].quarantined = true;
            flexile_obs::add("flexile.dist_worker_quarantined", 1);
            flexile_obs::flight::dump("dist_worker_quarantined");
        } else {
            self.spawn(slot);
            flexile_obs::add("flexile.dist_worker_restart", 1);
        }
        let mut mine: Vec<usize> =
            self.assigned.iter().filter(|&(_, &s)| s == slot).map(|(&q, _)| q).collect();
        mine.sort_unstable();
        if mine.is_empty() {
            return;
        }
        self.epoch += 1;
        for q in mine {
            self.assigned.remove(&q);
            flexile_obs::add("flexile.dist_reassigned", 1);
            match self.pick_target(q % self.workers.len()) {
                Some(t) => self.send_assign(t, q, it),
                None => {
                    self.scen_epoch[q] = self.epoch;
                    self.parked.insert(q);
                }
            }
        }
    }

    fn handle_event(&mut self, ev: Event, it: usize) {
        match ev {
            Event::Ready { slot, conn_id, stream } => {
                if slot >= self.workers.len() || self.workers[slot].quarantined {
                    return;
                }
                let ws = &mut self.workers[slot];
                ws.conn = Some(stream);
                ws.conn_id = conn_id;
                ws.last_seen = Instant::now();
                ws.broken = false;
                if !self.parked.is_empty() {
                    self.epoch += 1;
                    let parked: Vec<usize> = std::mem::take(&mut self.parked).into_iter().collect();
                    for q in parked {
                        match self.pick_target(q % self.workers.len()) {
                            Some(t) => self.send_assign(t, q, it),
                            None => {
                                self.scen_epoch[q] = self.epoch;
                                self.parked.insert(q);
                            }
                        }
                    }
                }
            }
            Event::Rejected { slot, component } => {
                if slot >= self.workers.len() || self.workers[slot].quarantined {
                    return;
                }
                eprintln!("dist: worker {slot} rejected handshake: {component} differs");
                flexile_obs::add("flexile.dist_handshake_reject", 1);
                flexile_obs::flight::dump("dist_handshake_reject");
                self.kill_worker(slot, it);
            }
            Event::Frame { slot, conn_id, frame } => {
                if slot >= self.workers.len() || conn_id != self.workers[slot].conn_id {
                    if matches!(frame, Frame::Result { .. }) {
                        flexile_obs::add("flexile.dist_stale_result", 1);
                    }
                    return;
                }
                self.workers[slot].last_seen = Instant::now();
                match frame {
                    Frame::Result { epoch, iteration: _, scenario, outcome } => {
                        let q = scenario as usize;
                        let current = q < self.scen_epoch.len()
                            && result_is_current(
                                epoch,
                                self.scen_epoch[q],
                                conn_id,
                                self.workers[slot].conn_id,
                                self.pending.contains_key(&q),
                            );
                        if !current {
                            flexile_obs::add("flexile.dist_stale_result", 1);
                            return;
                        }
                        let col = self.pending.remove(&q).expect("gated on pending");
                        self.assigned.remove(&q);
                        self.apply_outcome(slot, q, col, outcome);
                    }
                    Frame::Heartbeat { .. } => {}
                    _ => {
                        // A worker speaking out of protocol is as unusable
                        // as a corrupt stream.
                        self.kill_worker(slot, it);
                    }
                }
            }
            Event::Corrupt { slot, conn_id } => {
                if slot >= self.workers.len() || conn_id != self.workers[slot].conn_id {
                    return;
                }
                flexile_obs::add("flexile.dist_frame_corrupt", 1);
                flexile_obs::flight::dump("dist_frame_corrupt");
                self.kill_worker(slot, it);
            }
            Event::Gone { slot, conn_id } => {
                if slot >= self.workers.len() || conn_id != self.workers[slot].conn_id {
                    return;
                }
                self.kill_worker(slot, it);
            }
        }
    }

    fn check_deadlines(&mut self, it: usize) {
        let now = Instant::now();
        let mut stalled: Vec<usize> = Vec::new();
        let mut overdue: Vec<usize> = Vec::new();
        let mut respawn: Vec<usize> = Vec::new();
        for (slot, ws) in self.workers.iter().enumerate() {
            if ws.quarantined {
                continue;
            }
            if ws.conn.is_some() {
                if now.duration_since(ws.last_seen) > self.deadline {
                    stalled.push(slot);
                }
            } else if ws.child.is_some() {
                if now.duration_since(ws.spawned_at) > self.deadline {
                    overdue.push(slot);
                }
            } else {
                respawn.push(slot);
            }
        }
        for slot in stalled {
            flexile_obs::add("flexile.dist_heartbeat_stall", 1);
            flexile_obs::flight::dump("dist_heartbeat_stall");
            self.kill_worker(slot, it);
        }
        for slot in overdue {
            // Spawned but never handshook within the deadline: treat as a
            // death so the restart ladder (and eventually quarantine)
            // applies.
            self.kill_worker(slot, it);
        }
        for slot in respawn {
            self.spawn(slot);
        }
    }

    /// Apply a worker's result to the chain mirror by the same rules
    /// [`solve_contained`] applies to a local slot, and surface it as this
    /// wave's [`ScenResult`].
    fn apply_outcome(&mut self, slot: usize, q: usize, col: Vec<bool>, outcome: Outcome) {
        match outcome {
            Outcome::Solved {
                value,
                alpha,
                loss,
                cut,
                warm_hit,
                dual_restart,
                lp_iterations,
                watchdog_restart,
                chain_reset,
            } => {
                if chain_reset {
                    self.chains[q].clear();
                }
                self.chains[q].push(col);
                self.resident[q] = true;
                let sol = SubproblemSolution { value, alpha, loss, cut };
                let stats = SolveStats {
                    warm_hit,
                    dual_restart,
                    iterations: lp_iterations as usize,
                    watchdog_restart,
                };
                self.wave_results.push((q, Ok((sol, stats))));
            }
            Outcome::Poisoned { attempts, message } => {
                // The worker quarantined the slot; mirror the cleared chain.
                self.chains[q].clear();
                self.resident[q] = false;
                self.wave_results.push((
                    q,
                    Err(PoolError::ScenarioPoisoned { scenario: q, worker: slot, attempts, message }),
                ));
            }
            Outcome::Failed { message } => {
                // A terminal LP failure leaves the template resident with
                // an unchanged chain (built by get-or-insert, history only
                // extends on success) — exactly like the in-process slot.
                self.resident[q] = true;
                self.wave_results
                    .push((q, Err(PoolError::Remote { scenario: q, worker: slot, message })));
            }
        }
    }

    /// Permanently degrade to in-process solving: rebuild warm templates by
    /// replaying the chain mirror (the same re-warm a resume performs),
    /// then serve this and all future waves locally.
    fn enter_fallback(&mut self) {
        flexile_obs::add("flexile.dist_fallback", 1);
        flexile_obs::flight::dump("dist_fallback");
        let nq = self.ctx.set.scenarios.len();
        let local =
            LocalExec { slots: (0..nq).map(|_| Mutex::new(Slot::default())).collect(), scratch: SolveScratch::new() };
        self.local = Some(local);
        let local = self.local.as_mut().expect("just installed");
        for q in 0..nq {
            if self.chains[q].is_empty() {
                continue;
            }
            let mut ok = true;
            for col in &self.chains[q] {
                if solve_contained(&local.slots, &self.ctx, 0, q, col, 0, &mut local.scratch)
                    .is_err()
                {
                    ok = false;
                    break;
                }
            }
            if !ok {
                let mut s = lock_recover(&local.slots[q]);
                s.tmpl = None;
                s.history.clear();
                self.chains[q].clear();
                self.resident[q] = false;
            }
        }
    }

    /// One in-process solve in degraded mode, with the identical mirror
    /// bookkeeping the remote path performs.
    fn solve_one_local(&mut self, it: usize, q: usize, col: &[bool]) {
        let local = self.local.as_mut().expect("degraded mode active");
        let res = solve_contained(&local.slots, &self.ctx, it, q, col, 0, &mut local.scratch);
        match &res {
            Ok(_) => {
                let reset = lock_recover(&local.slots[q]).history.len() == 1;
                if reset {
                    self.chains[q].clear();
                }
                self.chains[q].push(col.to_vec());
                self.resident[q] = true;
            }
            Err(PoolError::ScenarioPoisoned { .. }) => {
                self.chains[q].clear();
                self.resident[q] = false;
            }
            Err(_) => {
                self.resident[q] = true;
            }
        }
        self.wave_results.push((q, res));
    }

    fn remote_wave(&mut self, it: usize, todo: &[usize]) {
        self.epoch += 1;
        let n = self.workers.len();
        for &q in todo {
            let t = self.initial_target(q % n).expect("a live slot exists");
            self.send_assign(t, q, it);
        }
        while !self.pending.is_empty() {
            if self.all_dead() {
                self.enter_fallback();
                let rest: Vec<(usize, Vec<bool>)> =
                    std::mem::take(&mut self.pending).into_iter().collect();
                self.parked.clear();
                self.assigned.clear();
                for (q, col) in rest {
                    self.solve_one_local(it, q, &col);
                }
                return;
            }
            match self.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(ev) => self.handle_event(ev, it),
                Err(RecvTimeoutError::Timeout) => self.check_deadlines(it),
                Err(RecvTimeoutError::Disconnected) => {
                    for slot in 0..self.workers.len() {
                        if !self.workers[slot].quarantined {
                            self.kill_worker(slot, it);
                            self.workers[slot].quarantined = true;
                        }
                    }
                }
            }
        }
    }

    /// Enforce the residency budget on the chain mirror, exactly as
    /// [`crate::pool`]'s handle does on its slots: oldest stamp first, ties
    /// by lower scenario index, only at iteration boundaries.
    fn evict(&mut self) {
        let mut live: Vec<(u64, usize)> = (0..self.resident.len())
            .filter(|&q| self.resident[q])
            .map(|q| (self.stamps[q], q))
            .collect();
        if live.len() <= self.residency {
            return;
        }
        live.sort_unstable();
        let excess = live.len() - self.residency;
        for &(_, q) in live.iter().take(excess) {
            self.drop_scenario_state(q);
            self.stamps[q] = 0;
        }
    }

    /// Clear scenario `q`'s mirrored state and release whatever holds it:
    /// the local slot in degraded mode, or the worker fleet via a Retire
    /// broadcast (workers that miss it — mid-respawn — self-correct on the
    /// next Assign, whose shipped chain is authoritative).
    fn drop_scenario_state(&mut self, q: usize) {
        self.chains[q].clear();
        self.resident[q] = false;
        match &mut self.local {
            Some(local) => {
                let mut s = lock_recover(&local.slots[q]);
                s.tmpl = None;
                s.history.clear();
            }
            None => self.broadcast(&Frame::Retire { scenario: q as u64 }),
        }
    }
}

impl IterationSolver for DistSolver<'_> {
    fn solve_iteration(
        &mut self,
        it: usize,
        todo: &[usize],
        cols: Vec<Vec<bool>>,
    ) -> Vec<ScenResult> {
        if todo.is_empty() {
            return Vec::new();
        }
        self.cut_stash.clear();
        self.wave_results = Vec::with_capacity(todo.len());
        self.pending.clear();
        self.assigned.clear();
        self.parked.clear();
        for (i, &q) in todo.iter().enumerate() {
            self.pending.insert(q, cols[i].clone());
        }
        if self.local.is_none() {
            self.ensure_workers();
            if self.all_dead() {
                self.enter_fallback();
            }
        }
        if self.local.is_some() {
            let rest: Vec<(usize, Vec<bool>)> =
                std::mem::take(&mut self.pending).into_iter().collect();
            for (q, col) in rest {
                self.solve_one_local(it, q, &col);
            }
        } else {
            self.remote_wave(it, todo);
        }
        let mut results = std::mem::take(&mut self.wave_results);
        results.sort_by_key(|&(q, _)| q);
        for (q, r) in &results {
            if let Ok((sol, _)) = r {
                if sol.value > 1e-9 {
                    self.cut_stash.push((*q as u64, sol.cut.clone()));
                }
            }
        }
        for &q in todo {
            self.stamps[q] = it as u64;
        }
        self.evict();
        results
    }

    fn retire(&mut self, q: usize) {
        self.drop_scenario_state(q);
        self.stamps[q] = 0;
    }

    fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot { stamps: self.stamps.clone(), chains: self.chains.clone() }
    }

    fn restore(&mut self, _it: usize, snap: &PoolSnapshot) {
        self.stamps = snap.stamps.clone();
        self.chains = snap.chains.clone();
        for q in 0..self.chains.len() {
            self.resident[q] = !self.chains[q].is_empty();
        }
        // No eager replay: every Assign ships the authoritative chain and
        // workers re-warm lazily on first divergence.
    }

    fn iteration_complete(&mut self, it: usize, penalty: f64, z: &[Vec<bool>]) {
        if self.local.is_some() || self.workers.is_empty() {
            self.cut_stash.clear();
            return;
        }
        let cuts = std::mem::take(&mut self.cut_stash);
        let frame =
            Frame::IterSync { iteration: it as u64, cuts, penalty, z: z.to_vec() };
        self.broadcast(&frame);
    }
}

impl Drop for DistSolver<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let bytes = encode_frame(&Frame::Shutdown);
        for ws in &mut self.workers {
            if let Some(conn) = ws.conn.as_mut() {
                let _ = write_frame_bytes(conn, &bytes);
            }
        }
        // Orphan-proofing: the courtesy Shutdown above lets a healthy
        // worker exit cleanly, but nothing is allowed to outlive the
        // coordinator.
        for ws in &mut self.workers {
            if let Some(mut child) = ws.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Wake the acceptor out of accept() so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Accept loop: per connection, run the fingerprint handshake synchronously
/// (bounded by read timeouts), then hand the write half to the event loop
/// and service the read half on a dedicated reader thread.
fn acceptor_loop(
    listener: TcpListener,
    tx: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    hello_bytes: Arc<Vec<u8>>,
    nworkers: usize,
    handshake_deadline: Duration,
) {
    let next_conn_id = AtomicU64::new(1);
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        stream.set_nodelay(true).ok();
        if stream.set_read_timeout(Some(handshake_deadline.max(Duration::from_millis(10)))).is_err()
        {
            continue;
        }
        let slot = match read_frame(&mut stream) {
            Ok(Frame::Join { slot }) => slot as usize,
            _ => continue,
        };
        if slot >= nworkers {
            continue;
        }
        let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
        if write_frame_bytes(&mut stream, &hello_bytes).is_err() {
            continue;
        }
        match read_frame(&mut stream) {
            Ok(Frame::HelloAck) => {
                if stream.set_read_timeout(None).is_err() {
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else { continue };
                if tx.send(Event::Ready { slot, conn_id, stream: write_half }).is_err() {
                    return;
                }
                let tx = tx.clone();
                std::thread::spawn(move || loop {
                    match read_frame(&mut stream) {
                        Ok(frame) => {
                            if tx.send(Event::Frame { slot, conn_id, frame }).is_err() {
                                return;
                            }
                        }
                        Err(FrameReadError::Corrupt(_)) => {
                            let _ = tx.send(Event::Corrupt { slot, conn_id });
                            return;
                        }
                        Err(FrameReadError::Io(_)) => {
                            let _ = tx.send(Event::Gone { slot, conn_id });
                            return;
                        }
                    }
                });
            }
            Ok(Frame::HelloReject { component }) => {
                if tx.send(Event::Rejected { slot, component }).is_err() {
                    return;
                }
            }
            _ => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_gate_rejects_stale_epochs_and_connections() {
        // Current assignment: epoch 7 on connection 3.
        assert!(result_is_current(7, 7, 3, 3, true));
        // Older epoch (pre-reassignment ghost).
        assert!(!result_is_current(6, 7, 3, 3, true));
        // Right epoch, replaced connection.
        assert!(!result_is_current(7, 7, 2, 3, true));
        // Slot currently has no connection at all.
        assert!(!result_is_current(7, 7, 3, 0, true));
        // Scenario already completed (duplicate result).
        assert!(!result_is_current(7, 7, 3, 3, false));
    }
}
