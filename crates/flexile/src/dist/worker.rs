//! The worker-process side of the distributed pool.
//!
//! A worker is a separate OS process that connects back to the
//! coordinator (address from `FLEXILE_DIST_CONNECT`), claims its slot
//! (`FLEXILE_DIST_SLOT`), validates the shipped problem against the
//! coordinator's declared fingerprints — *recomputing* both fingerprints
//! from the decoded bytes rather than trusting the header — and then
//! serves [`Frame::Assign`] requests until told to shut down (or until
//! the coordinator vanishes, which reads as EOF and is a clean exit).
//!
//! Per-scenario solve state is the same [`Slot`] the in-process pool
//! uses, driven by the same [`solve_contained`] containment (panic
//! quarantine, bounded retries, chain bookkeeping). On every assignment
//! the worker reconciles its slot against the coordinator's authoritative
//! solve-column chain: if they diverge (fresh process, reassignment,
//! eviction) the slot is rebuilt by replaying the chain through a cold
//! template — the identical mechanism `decompose_resume` uses — so the
//! solve that follows is bit-for-bit what the in-process pool would have
//! produced.
//!
//! Chaos probes ([`crate::killpoints`], armed via `FLEXILE_DIST_CHAOS`):
//! process abort on assignment, whole-process heartbeat stall, and
//! result-frame checksum corruption.

use super::frame::{
    encode_frame, read_frame, write_frame, write_frame_bytes, Frame, FrameReadError, Hello,
    Outcome,
};
use super::retry::RetryPolicy;
use super::DistError;
use crate::checkpoint::{self, CheckpointError};
use crate::decomposition::{FlexileOptions, PoolPolicy};
use crate::killpoints;
use crate::master::MasterOptions;
use crate::pool::{lock_recover, solve_contained, PoolCtx, PoolError, Slot};
use crate::subproblem::Cut;
use flexile_lp::SolveScratch;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable carrying the coordinator's listen address.
pub const CONNECT_ENV: &str = "FLEXILE_DIST_CONNECT";
/// Environment variable carrying this worker's slot index.
pub const SLOT_ENV: &str = "FLEXILE_DIST_SLOT";
/// Environment variable carrying a [`crate::killpoints::to_env`] chaos
/// spec to arm in the worker process.
pub const CHAOS_ENV: &str = "FLEXILE_DIST_CHAOS";

/// Rebuild the trajectory-relevant [`FlexileOptions`] a [`Hello`]'s knobs
/// describe, then validate the hello's declared fingerprints against ones
/// recomputed from the decoded problem and the rebuilt options. Returns
/// the rebuilt options on success; on mismatch, the typed error names the
/// first diverging component (this is the distributed handshake's
/// rejection path, unit-tested in both directions in `tests/dist.rs`).
pub fn verify_hello(h: &Hello) -> Result<FlexileOptions, CheckpointError> {
    let k = &h.knobs;
    let pool = match k.pool {
        0 => PoolPolicy::PerScenario,
        1 => PoolPolicy::LegacyStriped,
        2 => PoolPolicy::Cold,
        _ => return Err(CheckpointError::Malformed("pool policy tag")),
    };
    let opts = FlexileOptions {
        max_iterations: k.max_iterations as usize,
        threads: 1,
        master: MasterOptions {
            hamming_limit: k.hamming_limit as usize,
            exact_threshold: k.exact_threshold as usize,
            ..MasterOptions::default()
        },
        gamma: k.gamma,
        prune: k.prune,
        pool,
        basis_residency: k.basis_residency as usize,
        watchdog: None,
        batch_width: k.batch_width as usize,
        checkpoint_dir: None,
        checkpoint_every: 1,
    };
    checkpoint::check_parts(
        &h.problem_parts,
        &checkpoint::problem_fingerprint_parts(&h.problem.inst, &h.problem.set),
        &h.options_parts,
        &checkpoint::options_fingerprint_parts(&opts),
    )?;
    Ok(opts)
}

/// The component name a handshake rejection reports for a fingerprint
/// error (the payload of [`Frame::HelloReject`]).
pub(crate) fn reject_component(e: &CheckpointError) -> String {
    match e {
        CheckpointError::ProblemMismatch { component }
        | CheckpointError::OptionsMismatch { component }
        | CheckpointError::PoolConfigMismatch { component } => (*component).to_string(),
        other => other.to_string(),
    }
}

/// Entry point for a worker process: read the connect address, slot, and
/// optional chaos spec from the environment and serve until shutdown.
/// Test binaries and `repro dist_worker` both funnel here.
pub fn worker_entry() -> Result<(), DistError> {
    let addr = std::env::var(CONNECT_ENV)
        .map_err(|_| DistError::Env(format!("{CONNECT_ENV} is not set")))?;
    let slot: usize = std::env::var(SLOT_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| DistError::Env(format!("{SLOT_ENV} is not a valid slot index")))?;
    // Keep the guard alive for the process lifetime: the whole point is to
    // die (or stall) when the armed point fires.
    let _chaos = match std::env::var(CHAOS_ENV) {
        Ok(spec) => Some(killpoints::arm_from_env(&spec).map_err(DistError::Env)?),
        Err(_) => None,
    };
    run_worker(&addr, slot)
}

/// Connect to `addr`, handshake as `slot`, and serve assignments.
pub(crate) fn run_worker(addr: &str, slot: usize) -> Result<(), DistError> {
    let retry = RetryPolicy::new(slot as u64);
    let stream = retry
        .run(|| TcpStream::connect(addr))
        .map_err(|e| DistError::Io(format!("connect {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut reader = stream
        .try_clone()
        .map_err(|e| DistError::Io(format!("clone stream: {e}")))?;
    let writer = Arc::new(Mutex::new(stream));

    {
        let mut w = lock_recover(&writer);
        write_frame(&mut *w, &Frame::Join { slot: slot as u64 })
            .map_err(|e| DistError::Io(format!("send join: {e}")))?;
    }
    let hello = match read_frame(&mut reader) {
        Ok(Frame::Hello(h)) => h,
        Ok(other) => {
            return Err(DistError::Protocol(format!("expected hello, got {}", frame_name(&other))))
        }
        Err(FrameReadError::Io(e)) => return Err(DistError::Io(format!("read hello: {e}"))),
        Err(FrameReadError::Corrupt(e)) => return Err(DistError::Protocol(e.to_string())),
    };
    match verify_hello(&hello) {
        Err(e) => {
            let mut w = lock_recover(&writer);
            let _ = write_frame(
                &mut *w,
                &Frame::HelloReject { component: reject_component(&e) },
            );
            // A rejected handshake is a *successful* refusal, not a worker
            // crash: exit cleanly and let the coordinator decide.
            Ok(())
        }
        Ok(_opts) => {
            {
                let mut w = lock_recover(&writer);
                write_frame(&mut *w, &Frame::HelloAck)
                    .map_err(|e| DistError::Io(format!("send ack: {e}")))?;
            }
            serve(&mut reader, &writer, &hello, slot)
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Join { .. } => "join",
        Frame::Hello(_) => "hello",
        Frame::HelloAck => "hello-ack",
        Frame::HelloReject { .. } => "hello-reject",
        Frame::Assign { .. } => "assign",
        Frame::Result { .. } => "result",
        Frame::Retire { .. } => "retire",
        Frame::IterSync { .. } => "iter-sync",
        Frame::Heartbeat { .. } => "heartbeat",
        Frame::Shutdown => "shutdown",
    }
}

/// The worker's mirror of the coordinator's master state, updated from
/// [`Frame::IterSync`] broadcasts. Not consulted by the solves themselves
/// (subproblems depend only on their column), but kept so a worker always
/// knows the incumbent and cut pool it is contributing to.
struct MasterView {
    cuts: Vec<Vec<Cut>>,
    incumbent: Option<(usize, f64)>,
}

fn serve(
    reader: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    hello: &Hello,
    slot_id: usize,
) -> Result<(), DistError> {
    let problem = &hello.problem;
    let nq = problem.set.scenarios.len();
    let ctx = PoolCtx {
        inst: &problem.inst,
        set: &problem.set,
        loss_ub: problem.loss_ub.as_deref(),
        watchdog: hello.knobs.watchdog_millis.map(Duration::from_millis),
        batch_width: hello.knobs.batch_width as usize,
    };
    let slots: Vec<Mutex<Slot>> = (0..nq).map(|_| Mutex::new(Slot::default())).collect();
    let mut scratch = SolveScratch::new();
    let mut view = MasterView { cuts: vec![Vec::new(); nq], incumbent: None };
    let stalled = Arc::new(AtomicBool::new(false));

    // Heartbeat thread: liveness only, on its own clock, so a long LP
    // solve never reads as a stall. It exits when the stall chaos flag
    // fires (that is the fault being simulated) or when writes fail
    // (coordinator gone — the main loop will notice on its next read).
    let hb_writer = Arc::clone(writer);
    let hb_stalled = Arc::clone(&stalled);
    let interval = Duration::from_millis(hello.knobs.heartbeat_millis.max(1));
    let hb = std::thread::spawn(move || {
        let seq = AtomicU64::new(0);
        loop {
            std::thread::sleep(interval);
            if hb_stalled.load(Ordering::Acquire) {
                return;
            }
            let frame = Frame::Heartbeat { seq: seq.fetch_add(1, Ordering::Relaxed) };
            let mut w = lock_recover(&hb_writer);
            if write_frame(&mut *w, &frame).is_err() {
                return;
            }
        }
    });

    let result = loop {
        match read_frame(reader) {
            Ok(Frame::Assign { epoch, iteration, scenario, col, chain }) => {
                let it = iteration as usize;
                let q = scenario as usize;
                if q >= nq {
                    break Err(DistError::Protocol(format!("assign for unknown scenario {q}")));
                }
                // Chaos: process death / whole-process hang, armed via env.
                killpoints::maybe_fire_proc_exit(it, q);
                if killpoints::fire_heartbeat_stall(it) {
                    stalled.store(true, Ordering::Release);
                    eprintln!("chaos kill-point: worker heartbeat stall at iteration {it}");
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                let outcome =
                    handle_assign(&slots, &ctx, &mut scratch, slot_id, it, q, &col, &chain);
                let frame = Frame::Result { epoch, iteration, scenario, outcome };
                let mut bytes = encode_frame(&frame);
                // Chaos: flip a checksum byte so the coordinator's frame
                // validation (not its TCP stack) has to catch it.
                if killpoints::fire_frame_corrupt(it, q) {
                    eprintln!("chaos kill-point: corrupting result frame at iteration {it}");
                    bytes[20] ^= 0xff;
                }
                let mut w = lock_recover(writer);
                if let Err(e) = write_frame_bytes(&mut *w, &bytes) {
                    break Err(DistError::Io(format!("send result: {e}")));
                }
            }
            Ok(Frame::Retire { scenario }) => {
                if let Some(s) = slots.get(scenario as usize) {
                    let mut s = lock_recover(s);
                    s.tmpl = None;
                    s.history.clear();
                }
            }
            Ok(Frame::IterSync { iteration, cuts, penalty, z: _ }) => {
                for (q, cut) in cuts {
                    if let Some(qcuts) = view.cuts.get_mut(q as usize) {
                        qcuts.push(cut);
                    }
                }
                view.incumbent = Some((iteration as usize, penalty));
            }
            Ok(Frame::Shutdown) => break Ok(()),
            Ok(Frame::Heartbeat { .. }) => {}
            Ok(other) => {
                break Err(DistError::Protocol(format!(
                    "unexpected {} frame after handshake",
                    frame_name(&other)
                )))
            }
            // EOF / reset: the coordinator is gone. That is a normal way
            // for a worker's life to end.
            Err(FrameReadError::Io(_)) => break Ok(()),
            Err(FrameReadError::Corrupt(e)) => break Err(DistError::Protocol(e.to_string())),
        }
    };
    stalled.store(true, Ordering::Release);
    let _ = hb.join();
    result
}

/// Reconcile the slot against the coordinator's chain, then solve.
#[allow(clippy::too_many_arguments)]
fn handle_assign(
    slots: &[Mutex<Slot>],
    ctx: &PoolCtx<'_>,
    scratch: &mut SolveScratch,
    slot_id: usize,
    it: usize,
    q: usize,
    col: &[bool],
    chain: &[Vec<bool>],
) -> Outcome {
    let diverged = {
        let s = lock_recover(&slots[q]);
        s.history != chain
    };
    if diverged {
        {
            let mut s = lock_recover(&slots[q]);
            s.tmpl = None;
            s.history.clear();
        }
        // Replay the authoritative chain through a fresh template — the
        // same re-warm `decompose_resume` performs — so warm state after
        // a death, reassignment, or eviction is bit-identical to the
        // uninterrupted in-process pool. A replay failure quarantines the
        // slot and the solve below simply runs cold (chain_reset tells
        // the coordinator its mirror must restart).
        for c in chain {
            if solve_contained(slots, ctx, 0, q, c, slot_id, scratch).is_err() {
                let mut s = lock_recover(&slots[q]);
                s.tmpl = None;
                s.history.clear();
                break;
            }
        }
    }
    match solve_contained(slots, ctx, it, q, col, slot_id, scratch) {
        Ok((sol, stats)) => {
            let chain_reset = lock_recover(&slots[q]).history.len() == 1;
            Outcome::Solved {
                value: sol.value,
                alpha: sol.alpha,
                loss: sol.loss,
                cut: sol.cut,
                warm_hit: stats.warm_hit,
                dual_restart: stats.dual_restart,
                lp_iterations: stats.iterations as u64,
                watchdog_restart: stats.watchdog_restart,
                chain_reset,
            }
        }
        Err(PoolError::ScenarioPoisoned { attempts, message, .. }) => {
            Outcome::Poisoned { attempts, message }
        }
        Err(e) => Outcome::Failed { message: e.to_string() },
    }
}
