//! Elastic multi-process Benders: a fault-tolerant coordinator/worker
//! substrate for the offline decomposition.
//!
//! The decomposition's subproblem fan-out ([`crate::pool`]) is an
//! [`crate::pool::IterationSolver`] behind a trait, which makes the
//! process boundary a scheduling detail: this module provides a
//! coordinator ([`solve_flexile_dist`]) that shards scenarios across
//! locally spawned worker processes ([`worker_entry`]) over localhost TCP,
//! speaking length-prefixed, checksummed, version- and
//! fingerprint-validated frames ([`frame`]) built from the checkpoint
//! codec's primitives.
//!
//! The substrate is designed around one invariant — **the final design is
//! bit-identical to the in-process pool at any worker count**, and stays
//! so while workers die, hang, or corrupt frames mid-iteration:
//!
//! * scenario solve sequences are independent, so a scenario's bits depend
//!   only on its own solve-column chain, which the coordinator mirrors and
//!   ships with every assignment;
//! * results are applied at most once (epoch + connection-id gated);
//! * faults move scenarios, never results: reassignment re-derives the
//!   same chain on another process;
//! * with no workers left, the coordinator re-warms from its mirror and
//!   finishes in-process.
//!
//! See DESIGN.md §5.6 for the full failure-semantics state machine and
//! `tests/dist.rs` for the chaos suite that pins the bit-identity claims.

pub mod frame;
mod retry;

mod coordinator;
mod worker;

pub use coordinator::{decompose_resume_dist, solve_flexile_dist, DistOptions, WorkerSpec};
pub use worker::{verify_hello, worker_entry, CHAOS_ENV, CONNECT_ENV, SLOT_ENV};

use crate::checkpoint::CheckpointError;
use std::fmt;

/// Why a distributed run (or a worker process) could not proceed.
#[derive(Debug)]
pub enum DistError {
    /// Transport-level I/O failure (connect, bind, read, write).
    Io(String),
    /// Worker environment missing or malformed (`FLEXILE_DIST_*`).
    Env(String),
    /// The peer sent a frame that decodes but violates the protocol, or a
    /// frame that fails validation.
    Protocol(String),
    /// Checkpoint-layer failure surfaced through the distributed resume
    /// path (fingerprint mismatch, corrupt checkpoint, ...).
    Checkpoint(CheckpointError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "distributed I/O error: {m}"),
            DistError::Env(m) => write!(f, "worker environment error: {m}"),
            DistError::Protocol(m) => write!(f, "protocol error: {m}"),
            DistError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<CheckpointError> for DistError {
    fn from(e: CheckpointError) -> Self {
        DistError::Checkpoint(e)
    }
}
