//! Typed retry/backoff ladder for transient distributed I/O.
//!
//! Only *transient* I/O errors are retried (interrupted syscalls,
//! would-block, timeouts, connection-refused while a worker is still
//! binding); anything else — connection reset, broken pipe, EOF — means
//! the peer is gone and is surfaced immediately so the death machinery
//! can take over. Retries are bounded and backoff is exponential with
//! **deterministic seeded jitter** (FNV over `(seed, attempt)`), so two
//! runs of the same chaos schedule wait the same way.

use std::io;
use std::time::Duration;

/// Bounded retry policy with deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Base backoff; attempt `k` sleeps `base·2^k` plus jitter in
    /// `[0, base)`.
    pub base: Duration,
    /// Jitter seed (derived from the worker slot, so workers do not
    /// stampede in lockstep yet stay reproducible).
    pub seed: u64,
}

impl RetryPolicy {
    pub(crate) fn new(seed: u64) -> Self {
        RetryPolicy { attempts: 4, base: Duration::from_millis(10), seed }
    }

    /// Deterministic backoff before retry attempt `attempt` (1-based).
    pub(crate) fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(10));
        let base_ns = self.base.as_nanos() as u64;
        let jitter_ns = if base_ns == 0 {
            0
        } else {
            let mut h = crate::checkpoint::Fnv::new();
            h.u64(self.seed);
            h.u64(attempt as u64);
            h.0 % base_ns
        };
        exp + Duration::from_nanos(jitter_ns)
    }

    /// Run `op`, retrying transient failures up to the attempt budget with
    /// backoff. Every retry is counted as `flexile.dist_retry`.
    pub(crate) fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < self.attempts && transient(&e) => {
                    attempt += 1;
                    flexile_obs::add("flexile.dist_retry", 1);
                    std::thread::sleep(self.backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether an I/O error is worth retrying on the same connection attempt.
pub(crate) fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionRefused
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(transient(&io::Error::from(io::ErrorKind::Interrupted)));
        assert!(transient(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(transient(&io::Error::from(io::ErrorKind::ConnectionRefused)));
        assert!(!transient(&io::Error::from(io::ErrorKind::ConnectionReset)));
        assert!(!transient(&io::Error::from(io::ErrorKind::BrokenPipe)));
        assert!(!transient(&io::Error::from(io::ErrorKind::UnexpectedEof)));
    }

    #[test]
    fn bounded_attempts_and_terminal_passthrough() {
        let policy = RetryPolicy { attempts: 3, base: Duration::from_nanos(1), seed: 7 };
        let mut calls = 0;
        let r: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::TimedOut))
        });
        assert!(r.is_err());
        assert_eq!(calls, 3, "transient errors retried to the attempt budget");

        let mut calls = 0;
        let r: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::BrokenPipe))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "terminal errors are not retried");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = RetryPolicy { attempts: 4, base: Duration::from_millis(10), seed: 3 };
        let b = RetryPolicy { attempts: 4, base: Duration::from_millis(10), seed: 3 };
        for k in 1..4 {
            assert_eq!(a.backoff(k), b.backoff(k), "same seed, same backoff");
            let exp = Duration::from_millis(10 * (1 << k));
            assert!(a.backoff(k) >= exp && a.backoff(k) < exp + Duration::from_millis(10));
        }
        let c = RetryPolicy { attempts: 4, base: Duration::from_millis(10), seed: 4 };
        assert!((1..4).any(|k| c.backoff(k) != a.backoff(k)), "different seeds jitter apart");
    }

    #[test]
    fn eventual_success_returns_value() {
        let policy = RetryPolicy { attempts: 4, base: Duration::from_nanos(1), seed: 0 };
        let mut calls = 0;
        let r = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::from(io::ErrorKind::ConnectionRefused))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls, 3);
    }
}
