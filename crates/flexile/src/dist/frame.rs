//! Wire frames for the coordinator/worker protocol.
//!
//! Every message crossing the process boundary is one **frame**, reusing
//! the checkpoint codec's primitives and discipline (see
//! [`crate::checkpoint`]): little-endian, length-prefixed, FNV-1a-64
//! checksummed, version-validated, with every length field checked against
//! the remaining payload before allocation. A corrupted, truncated, or
//! hostile frame yields a typed [`CheckpointError`] — never a panic or an
//! OOM (property-tested in `tests/dist_frames.rs`, mirroring the
//! checkpoint corruption matrix).
//!
//! ```text
//! magic   8 B   "FLXFRME\0"
//! version u32
//! len     u64   payload length in bytes (≤ MAX_FRAME_LEN)
//! check   u64   FNV-1a-64 over the payload
//! payload len B tag u64 + body
//! ```

use crate::checkpoint::{
    fnv64, CheckpointError, Dec, Enc, OPTIONS_COMPONENTS, PROBLEM_COMPONENTS,
};
use crate::subproblem::Cut;
use flexile_scenario::{FailureUnit, Scenario, ScenarioSet};
use flexile_topo::{LinkId, NodeId, Topology, TunnelClass, TunnelSet};
use flexile_topo::graph::Path;
use flexile_traffic::{ClassConfig, Instance};
use std::io::{Read, Write};

/// Current frame-format version. Handshakes and every subsequent frame are
/// rejected across versions (a coordinator never talks to a worker built
/// from a different wire format).
pub const FRAME_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"FLXFRME\0";

/// Hard upper bound on a frame payload (256 MiB). A length prefix above
/// this is rejected before any allocation, so a corrupted or hostile
/// header cannot OOM the receiver.
pub const MAX_FRAME_LEN: u64 = 1 << 28;

/// Frame header size in bytes (magic + version + len + checksum).
pub const FRAME_HEADER_LEN: usize = 28;

/// The problem + knob payload of a [`Frame::Hello`]: everything a worker
/// needs to rebuild the coordinator's subproblem context bit-for-bit.
#[derive(Debug, Clone)]
pub struct Hello {
    /// Coordinator's component-resolved problem fingerprint; the worker
    /// recomputes its own from the decoded problem and refuses on the
    /// first diverging component (see [`crate::checkpoint::check_parts`]).
    pub problem_parts: [u64; PROBLEM_COMPONENTS.len()],
    /// Coordinator's component-resolved options fingerprint, recomputed
    /// worker-side from the shipped knobs.
    pub options_parts: [u64; OPTIONS_COMPONENTS.len()],
    /// The full problem (instance + scenario set + optional γ bounds).
    pub problem: WireProblem,
    /// Raw option knobs the worker rebuilds its `FlexileOptions` from.
    pub knobs: WireKnobs,
}

/// The full problem definition shipped to a worker at handshake.
#[derive(Debug, Clone)]
pub struct WireProblem {
    /// The TE instance (topology, pairs, classes, tunnels, demands).
    pub inst: Instance,
    /// The enumerated failure scenarios.
    pub set: ScenarioSet,
    /// γ-variant per-scenario loss bounds, shipped precomputed so workers
    /// never re-derive them; `None` for the plain form.
    pub loss_ub: Option<Vec<Vec<f64>>>,
}

/// The raw trajectory-relevant option knobs, in the units they are
/// fingerprinted in. Shipped raw (not as opaque hashes) so the worker can
/// *recompute* the options fingerprint instead of trusting the header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireKnobs {
    /// `FlexileOptions::max_iterations`.
    pub max_iterations: u64,
    /// `FlexileOptions::prune`.
    pub prune: bool,
    /// `FlexileOptions::gamma`.
    pub gamma: Option<f64>,
    /// `MasterOptions::hamming_limit`.
    pub hamming_limit: u64,
    /// `MasterOptions::exact_threshold`.
    pub exact_threshold: u64,
    /// `FlexileOptions::pool` as its fingerprint tag (0 = per-scenario,
    /// 1 = legacy striped, 2 = cold).
    pub pool: u64,
    /// `FlexileOptions::basis_residency`.
    pub basis_residency: u64,
    /// `FlexileOptions::batch_width`.
    pub batch_width: u64,
    /// Subproblem watchdog deadline in milliseconds (`None` preserves
    /// bit-reproducibility, exactly as in-process).
    pub watchdog_millis: Option<u64>,
    /// Worker heartbeat interval in milliseconds.
    pub heartbeat_millis: u64,
}

/// One scenario solve's outcome, reported by a worker. Mirrors the three
/// ways [`crate::pool::solve_contained`] can end.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The solve succeeded.
    Solved {
        /// Optimal `Σ_k w_k α_k` for the scenario.
        value: f64,
        /// Per-class `α_k`.
        alpha: Vec<f64>,
        /// Per-flow losses.
        loss: Vec<f64>,
        /// The Benders cut.
        cut: Cut,
        /// `SolveStats::warm_hit`.
        warm_hit: bool,
        /// `SolveStats::dual_restart`.
        dual_restart: bool,
        /// `SolveStats::iterations`.
        lp_iterations: u64,
        /// `SolveStats::watchdog_restart`.
        watchdog_restart: bool,
        /// The worker's solve chain for this scenario restarted at this
        /// column (cold build or watchdog restart): the coordinator resets
        /// its chain mirror to `[col]` instead of appending.
        chain_reset: bool,
    },
    /// The solve kept panicking and the scenario is poisoned for this
    /// iteration (see [`crate::PoolError::ScenarioPoisoned`]).
    Poisoned {
        /// Attempts made (initial + retries).
        attempts: u32,
        /// Final panic payload, stringified.
        message: String,
    },
    /// The LP failed terminally; the error is carried as text.
    Failed {
        /// The solver error, stringified.
        message: String,
    },
}

/// A protocol message. All integers are u64 on the wire; scenario and
/// iteration indices are widened at encode and narrowed at apply.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Worker → coordinator: first frame after connecting, claiming a
    /// worker slot.
    Join {
        /// The worker's slot index (from `FLEXILE_DIST_SLOT`).
        slot: u64,
    },
    /// Coordinator → worker: the problem, knobs, and declared fingerprints.
    Hello(Box<Hello>),
    /// Worker → coordinator: fingerprints recomputed and matched.
    HelloAck,
    /// Worker → coordinator: a recomputed fingerprint component diverged;
    /// the connection is abandoned.
    HelloReject {
        /// Name of the first diverging component (see
        /// [`PROBLEM_COMPONENTS`] / [`OPTIONS_COMPONENTS`]).
        component: String,
    },
    /// Coordinator → worker: solve one scenario. Carries the coordinator's
    /// authoritative solve-column chain for the scenario; the worker
    /// reconciles its local slot against it (replaying through a fresh
    /// template on divergence) before solving, which is what makes any
    /// assignment — including one reassigned after a death — bit-identical
    /// to the in-process pool.
    Assign {
        /// Assignment epoch; results stamped with an older epoch are stale
        /// and rejected (at-most-once application).
        epoch: u64,
        /// Decomposition iteration (1-based).
        iteration: u64,
        /// Scenario index.
        scenario: u64,
        /// Criticality column to solve.
        col: Vec<bool>,
        /// Solve-column chain preceding this solve (empty = cold).
        chain: Vec<Vec<bool>>,
    },
    /// Worker → coordinator: the outcome of an [`Frame::Assign`].
    Result {
        /// Epoch copied from the assignment.
        epoch: u64,
        /// Iteration copied from the assignment.
        iteration: u64,
        /// Scenario copied from the assignment.
        scenario: u64,
        /// The solve's outcome.
        outcome: Outcome,
    },
    /// Coordinator → worker: drop the scenario's template and chain
    /// (perfect-scenario retirement or LRU eviction).
    Retire {
        /// Scenario index.
        scenario: u64,
    },
    /// Coordinator → worker: iteration boundary broadcast — the cut-pool
    /// delta and the incumbent, so workers track the master's view.
    IterSync {
        /// Iteration that just completed.
        iteration: u64,
        /// Cuts added this iteration, as `(scenario, cut)`.
        cuts: Vec<(u64, Cut)>,
        /// Incumbent penalty after the iteration.
        penalty: f64,
        /// Criticality proposal `z[f][q]` for the next iteration.
        z: Vec<Vec<bool>>,
    },
    /// Worker → coordinator: liveness beacon.
    Heartbeat {
        /// Monotone per-worker sequence number.
        seq: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn enc_u64s(e: &mut Enc, vs: &[u64]) {
    e.u64(vs.len() as u64);
    for &v in vs {
        e.u64(v);
    }
}

fn enc_path(e: &mut Enc, p: &Path) {
    enc_u64s(e, &p.nodes.iter().map(|n| n.0 as u64).collect::<Vec<_>>());
    enc_u64s(e, &p.links.iter().map(|l| l.0 as u64).collect::<Vec<_>>());
}

fn enc_tunnel_set(e: &mut Enc, ts: &TunnelSet) {
    e.u64(ts.pairs.len() as u64);
    for &(a, b) in &ts.pairs {
        e.u64(a.0 as u64);
        e.u64(b.0 as u64);
    }
    e.u64(ts.tunnels.len() as u64);
    for pt in &ts.tunnels {
        e.u64(pt.len() as u64);
        for t in pt {
            enc_path(e, t);
        }
    }
}

fn tunnel_class_tag(c: TunnelClass) -> u64 {
    match c {
        TunnelClass::SingleClass => 0,
        TunnelClass::HighPriority => 1,
        TunnelClass::LowPriority => 2,
    }
}

fn enc_problem(e: &mut Enc, p: &WireProblem) {
    let topo = &p.inst.topo;
    e.str(&topo.name);
    e.u64(topo.num_nodes() as u64);
    e.u64(topo.num_links() as u64);
    for (_, link) in topo.links() {
        e.u64(link.a.0 as u64);
        e.u64(link.b.0 as u64);
        e.f64(link.capacity);
    }
    e.u64(p.inst.pairs.len() as u64);
    for &(a, b) in &p.inst.pairs {
        e.u64(a.0 as u64);
        e.u64(b.0 as u64);
    }
    e.u64(p.inst.classes.len() as u64);
    for c in &p.inst.classes {
        e.str(&c.name);
        e.f64(c.beta);
        e.f64(c.weight);
        e.u64(tunnel_class_tag(c.tunnel_class));
    }
    e.u64(p.inst.tunnels.len() as u64);
    for ts in &p.inst.tunnels {
        enc_tunnel_set(e, ts);
    }
    e.u64(p.inst.demands.len() as u64);
    for row in &p.inst.demands {
        e.f64s(row);
    }
    e.u64(p.set.units.len() as u64);
    for u in &p.set.units {
        e.u64(u.affects.len() as u64);
        for &(l, share) in &u.affects {
            e.u64(l.0 as u64);
            e.f64(share);
        }
        e.f64(u.prob);
    }
    e.u64(p.set.scenarios.len() as u64);
    for s in &p.set.scenarios {
        enc_u64s(e, &s.failed_units.iter().map(|&u| u as u64).collect::<Vec<_>>());
        e.f64(s.prob);
        e.f64s(&s.cap_factor);
        e.f64(s.demand_factor);
    }
    e.f64(p.set.residual);
    e.u64(p.set.num_links as u64);
    e.opt(&p.loss_ub, |e, rows| {
        e.u64(rows.len() as u64);
        for row in rows {
            e.f64s(row);
        }
    });
}

fn enc_knobs(e: &mut Enc, k: &WireKnobs) {
    e.u64(k.max_iterations);
    e.bool(k.prune);
    e.opt(&k.gamma, |e, &g| e.f64(g));
    e.u64(k.hamming_limit);
    e.u64(k.exact_threshold);
    e.u64(k.pool);
    e.u64(k.basis_residency);
    e.u64(k.batch_width);
    e.opt(&k.watchdog_millis, |e, &w| e.u64(w));
    e.u64(k.heartbeat_millis);
}

fn enc_bits_list(e: &mut Enc, rows: &[Vec<bool>]) {
    e.u64(rows.len() as u64);
    for r in rows {
        e.bits(r);
    }
}

/// Serialize a frame to its full wire image (header + payload).
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut e = Enc::new();
    match f {
        Frame::Join { slot } => {
            e.u64(0);
            e.u64(*slot);
        }
        Frame::Hello(h) => {
            e.u64(1);
            for &p in &h.problem_parts {
                e.u64(p);
            }
            for &p in &h.options_parts {
                e.u64(p);
            }
            enc_problem(&mut e, &h.problem);
            enc_knobs(&mut e, &h.knobs);
        }
        Frame::HelloAck => e.u64(2),
        Frame::HelloReject { component } => {
            e.u64(3);
            e.str(component);
        }
        Frame::Assign { epoch, iteration, scenario, col, chain } => {
            e.u64(4);
            e.u64(*epoch);
            e.u64(*iteration);
            e.u64(*scenario);
            e.bits(col);
            enc_bits_list(&mut e, chain);
        }
        Frame::Result { epoch, iteration, scenario, outcome } => {
            e.u64(5);
            e.u64(*epoch);
            e.u64(*iteration);
            e.u64(*scenario);
            match outcome {
                Outcome::Solved {
                    value,
                    alpha,
                    loss,
                    cut,
                    warm_hit,
                    dual_restart,
                    lp_iterations,
                    watchdog_restart,
                    chain_reset,
                } => {
                    e.u64(0);
                    e.f64(*value);
                    e.f64s(alpha);
                    e.f64s(loss);
                    e.cut(cut);
                    e.bool(*warm_hit);
                    e.bool(*dual_restart);
                    e.u64(*lp_iterations);
                    e.bool(*watchdog_restart);
                    e.bool(*chain_reset);
                }
                Outcome::Poisoned { attempts, message } => {
                    e.u64(1);
                    e.u64(*attempts as u64);
                    e.str(message);
                }
                Outcome::Failed { message } => {
                    e.u64(2);
                    e.str(message);
                }
            }
        }
        Frame::Retire { scenario } => {
            e.u64(6);
            e.u64(*scenario);
        }
        Frame::IterSync { iteration, cuts, penalty, z } => {
            e.u64(7);
            e.u64(*iteration);
            e.u64(cuts.len() as u64);
            for (q, c) in cuts {
                e.u64(*q);
                e.cut(c);
            }
            e.f64(*penalty);
            enc_bits_list(&mut e, z);
        }
        Frame::Heartbeat { seq } => {
            e.u64(8);
            e.u64(*seq);
        }
        Frame::Shutdown => e.u64(9),
    }
    let payload = e.buf;
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

fn dec_u64s(d: &mut Dec<'_>) -> Result<Vec<u64>, CheckpointError> {
    let n = d.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.u64()?);
    }
    Ok(out)
}

fn dec_u32(d: &mut Dec<'_>, what: &'static str) -> Result<u32, CheckpointError> {
    u32::try_from(d.u64()?).map_err(|_| CheckpointError::Malformed(what))
}

fn dec_path(d: &mut Dec<'_>) -> Result<Path, CheckpointError> {
    let nodes = dec_u64s(d)?
        .into_iter()
        .map(|v| u32::try_from(v).map(NodeId).map_err(|_| CheckpointError::Malformed("node id")))
        .collect::<Result<Vec<_>, _>>()?;
    let links = dec_u64s(d)?
        .into_iter()
        .map(|v| u32::try_from(v).map(LinkId).map_err(|_| CheckpointError::Malformed("link id")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Path { nodes, links })
}

fn dec_pairs(d: &mut Dec<'_>) -> Result<Vec<(NodeId, NodeId)>, CheckpointError> {
    let n = d.len(16)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((NodeId(dec_u32(d, "pair node")?), NodeId(dec_u32(d, "pair node")?)));
    }
    Ok(pairs)
}

fn dec_tunnel_set(d: &mut Dec<'_>) -> Result<TunnelSet, CheckpointError> {
    let pairs = dec_pairs(d)?;
    let np = d.len(1)?;
    if np != pairs.len() {
        return Err(CheckpointError::Malformed("tunnel set pair count"));
    }
    let mut tunnels = Vec::with_capacity(np);
    for _ in 0..np {
        let nt = d.len(1)?;
        let mut pt = Vec::with_capacity(nt);
        for _ in 0..nt {
            pt.push(dec_path(d)?);
        }
        tunnels.push(pt);
    }
    Ok(TunnelSet { pairs, tunnels })
}

fn dec_problem(d: &mut Dec<'_>) -> Result<WireProblem, CheckpointError> {
    let name = d.str()?;
    let num_nodes = d.len(0)?;
    let nl = d.len(24)?;
    let mut links = Vec::with_capacity(nl);
    for _ in 0..nl {
        links.push((dec_u32(d, "link endpoint")?, dec_u32(d, "link endpoint")?, d.f64()?));
    }
    let topo = Topology::new(&name, num_nodes, &links);
    let pairs = dec_pairs(d)?;
    let nc = d.len(1)?;
    let mut classes = Vec::with_capacity(nc);
    for _ in 0..nc {
        let cname = d.str()?;
        let beta = d.f64()?;
        let weight = d.f64()?;
        let tunnel_class = match d.u64()? {
            0 => TunnelClass::SingleClass,
            1 => TunnelClass::HighPriority,
            2 => TunnelClass::LowPriority,
            _ => return Err(CheckpointError::Malformed("tunnel class tag")),
        };
        classes.push(ClassConfig { name: cname, beta, weight, tunnel_class });
    }
    let nts = d.len(1)?;
    if nts != nc {
        return Err(CheckpointError::Malformed("tunnel set count"));
    }
    let mut tunnels = Vec::with_capacity(nts);
    for _ in 0..nts {
        tunnels.push(dec_tunnel_set(d)?);
    }
    let nd = d.len(1)?;
    if nd != nc {
        return Err(CheckpointError::Malformed("demand row count"));
    }
    let mut demands = Vec::with_capacity(nd);
    for _ in 0..nd {
        let row = d.f64s()?;
        if row.len() != pairs.len() {
            return Err(CheckpointError::Malformed("demand row length"));
        }
        demands.push(row);
    }
    let inst = Instance { topo, pairs, classes, tunnels, demands };

    let nu = d.len(1)?;
    let mut units = Vec::with_capacity(nu);
    for _ in 0..nu {
        let na = d.len(16)?;
        let mut affects = Vec::with_capacity(na);
        for _ in 0..na {
            affects.push((LinkId(dec_u32(d, "unit link")?), d.f64()?));
        }
        units.push(FailureUnit { affects, prob: d.f64()? });
    }
    let ns = d.len(1)?;
    let mut scenarios = Vec::with_capacity(ns);
    for _ in 0..ns {
        let failed_units = dec_u64s(d)?
            .into_iter()
            .map(|v| u32::try_from(v).map_err(|_| CheckpointError::Malformed("failed unit")))
            .collect::<Result<Vec<_>, _>>()?;
        let prob = d.f64()?;
        let cap_factor = d.f64s()?;
        if cap_factor.len() != inst.topo.num_links() {
            return Err(CheckpointError::Malformed("cap_factor length"));
        }
        let demand_factor = d.f64()?;
        scenarios.push(Scenario { failed_units, prob, cap_factor, demand_factor });
    }
    let residual = d.f64()?;
    let num_links = d.len(0)?;
    let set = ScenarioSet { units, scenarios, residual, num_links };

    let nq = set.scenarios.len();
    let nf = inst.num_flows();
    let loss_ub = d.opt(|d| {
        let n = d.len(1)?;
        if n != nq {
            return Err(CheckpointError::Malformed("loss_ub row count"));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let row = d.f64s()?;
            if row.len() != nf {
                return Err(CheckpointError::Malformed("loss_ub row length"));
            }
            rows.push(row);
        }
        Ok(rows)
    })?;
    Ok(WireProblem { inst, set, loss_ub })
}

fn dec_knobs(d: &mut Dec<'_>) -> Result<WireKnobs, CheckpointError> {
    Ok(WireKnobs {
        max_iterations: d.u64()?,
        prune: d.bool()?,
        gamma: d.opt(|d| d.f64())?,
        hamming_limit: d.u64()?,
        exact_threshold: d.u64()?,
        pool: d.u64()?,
        basis_residency: d.u64()?,
        batch_width: d.u64()?,
        watchdog_millis: d.opt(|d| d.u64())?,
        heartbeat_millis: d.u64()?,
    })
}

fn dec_bits_list(d: &mut Dec<'_>) -> Result<Vec<Vec<bool>>, CheckpointError> {
    let n = d.len(1)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(d.bits()?);
    }
    Ok(rows)
}

fn decode_payload(payload: &[u8]) -> Result<Frame, CheckpointError> {
    let mut d = Dec { buf: payload, pos: 0 };
    let frame = match d.u64()? {
        0 => Frame::Join { slot: d.u64()? },
        1 => {
            let mut problem_parts = [0u64; PROBLEM_COMPONENTS.len()];
            for p in &mut problem_parts {
                *p = d.u64()?;
            }
            let mut options_parts = [0u64; OPTIONS_COMPONENTS.len()];
            for p in &mut options_parts {
                *p = d.u64()?;
            }
            let problem = dec_problem(&mut d)?;
            let knobs = dec_knobs(&mut d)?;
            Frame::Hello(Box::new(Hello { problem_parts, options_parts, problem, knobs }))
        }
        2 => Frame::HelloAck,
        3 => Frame::HelloReject { component: d.str()? },
        4 => Frame::Assign {
            epoch: d.u64()?,
            iteration: d.u64()?,
            scenario: d.u64()?,
            col: d.bits()?,
            chain: dec_bits_list(&mut d)?,
        },
        5 => {
            let epoch = d.u64()?;
            let iteration = d.u64()?;
            let scenario = d.u64()?;
            let outcome = match d.u64()? {
                0 => Outcome::Solved {
                    value: d.f64()?,
                    alpha: d.f64s()?,
                    loss: d.f64s()?,
                    cut: d.cut()?,
                    warm_hit: d.bool()?,
                    dual_restart: d.bool()?,
                    lp_iterations: d.u64()?,
                    watchdog_restart: d.bool()?,
                    chain_reset: d.bool()?,
                },
                1 => Outcome::Poisoned { attempts: dec_u32(&mut d, "attempts")?, message: d.str()? },
                2 => Outcome::Failed { message: d.str()? },
                _ => return Err(CheckpointError::Malformed("outcome tag")),
            };
            Frame::Result { epoch, iteration, scenario, outcome }
        }
        6 => Frame::Retire { scenario: d.u64()? },
        7 => {
            let iteration = d.u64()?;
            let nc = d.len(1)?;
            let mut cuts = Vec::with_capacity(nc);
            for _ in 0..nc {
                cuts.push((d.u64()?, d.cut()?));
            }
            Frame::IterSync { iteration, cuts, penalty: d.f64()?, z: dec_bits_list(&mut d)? }
        }
        8 => Frame::Heartbeat { seq: d.u64()? },
        9 => Frame::Shutdown,
        _ => return Err(CheckpointError::Malformed("frame tag")),
    };
    if d.pos != payload.len() {
        return Err(CheckpointError::Malformed("unconsumed payload bytes"));
    }
    Ok(frame)
}

/// Parse and validate a full frame image (header + payload), the inverse
/// of [`encode_frame`]. Every header field is validated before the payload
/// is touched, and the payload checksum before it is decoded.
pub fn decode_frame(data: &[u8]) -> Result<Frame, CheckpointError> {
    if data.len() < 8 {
        return Err(CheckpointError::Truncated { needed: 8, have: data.len() });
    }
    if &data[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if data.len() < FRAME_HEADER_LEN {
        return Err(CheckpointError::Truncated { needed: FRAME_HEADER_LEN, have: data.len() });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FRAME_VERSION {
        return Err(CheckpointError::VersionMismatch { found: version, expected: FRAME_VERSION });
    }
    let plen = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    if plen > MAX_FRAME_LEN {
        return Err(CheckpointError::Malformed("frame length exceeds limit"));
    }
    let plen = plen as usize;
    let check = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    let have = data.len() - FRAME_HEADER_LEN;
    if have < plen {
        return Err(CheckpointError::Truncated { needed: FRAME_HEADER_LEN + plen, have: data.len() });
    }
    if have > plen {
        return Err(CheckpointError::Malformed("trailing bytes after payload"));
    }
    let payload = &data[FRAME_HEADER_LEN..];
    if fnv64(payload) != check {
        return Err(CheckpointError::ChecksumMismatch);
    }
    decode_payload(payload)
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Why a frame could not be read from a stream: transport failure, or a
/// frame that arrived but failed validation (corruption — the connection
/// can no longer be trusted to be in sync).
#[derive(Debug)]
pub(crate) enum FrameReadError {
    /// The underlying read failed (peer gone, timeout, reset).
    Io(std::io::Error),
    /// The frame failed header/checksum/payload validation.
    Corrupt(CheckpointError),
}

/// Read one frame from a stream. Header fields are validated before the
/// payload is allocated (the `MAX_FRAME_LEN` guard applies here too).
pub(crate) fn read_frame(r: &mut impl Read) -> Result<Frame, FrameReadError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header).map_err(FrameReadError::Io)?;
    if &header[..8] != MAGIC {
        return Err(FrameReadError::Corrupt(CheckpointError::BadMagic));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FRAME_VERSION {
        return Err(FrameReadError::Corrupt(CheckpointError::VersionMismatch {
            found: version,
            expected: FRAME_VERSION,
        }));
    }
    let plen = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if plen > MAX_FRAME_LEN {
        return Err(FrameReadError::Corrupt(CheckpointError::Malformed(
            "frame length exceeds limit",
        )));
    }
    let check = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; plen as usize];
    r.read_exact(&mut payload).map_err(FrameReadError::Io)?;
    if fnv64(&payload) != check {
        return Err(FrameReadError::Corrupt(CheckpointError::ChecksumMismatch));
    }
    decode_payload(&payload).map_err(FrameReadError::Corrupt)
}

/// Write one already-encoded frame image to a stream.
pub(crate) fn write_frame_bytes(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

/// Encode and write one frame to a stream.
pub(crate) fn write_frame(w: &mut impl Write, f: &Frame) -> std::io::Result<()> {
    write_frame_bytes(w, &encode_frame(f))
}
