//! Explicit class priority (§4.4): design high-priority traffic first,
//! then design lower classes around it.
//!
//! The weighted objective `Σ_k w_k α_k` already *favors* the high class,
//! but when "the PercLoss of low-priority traffic is subordinate even to
//! sending high-priority traffic in non-critical scenarios", the paper
//! prescribes a strict sequence:
//!
//! 1. determine critical flows minimizing PercLoss for the high class only;
//! 2. push as much (non-critical) high-priority traffic as possible in
//!    every scenario;
//! 3. design the lower class with the high class's per-scenario bandwidth
//!    pinned as a hard constraint.
//!
//! We realize step 3 by measuring the high class's per-arc usage in each
//! scenario (the same canonical-routing extraction the emulator uses) and
//! shrinking the scenario's capacity factors accordingly before running
//! the lower-class design. The approach generalizes to any number of
//! classes by folding each designed class into the residual capacities.

use crate::decomposition::{solve_flexile, FlexileDesign, FlexileOptions};
use crate::online::online_allocate;
use flexile_lp::Sense;
use flexile_scenario::{Scenario, ScenarioSet};
use flexile_te::alloc::ScenAlloc;
use flexile_traffic::{ClassConfig, Instance};

/// Result of the lexicographic design: one per-class [`FlexileDesign`]
/// (each over the single-class sub-instance) plus the combined per-flow
/// loss matrix in the original instance's flow indexing.
#[derive(Debug, Clone)]
pub struct LexicographicDesign {
    /// Per-class designs, highest priority first.
    pub designs: Vec<FlexileDesign>,
    /// Combined online losses, `loss[flow][scenario]`.
    pub loss: Vec<Vec<f64>>,
}

/// Extract a single class as a standalone instance.
fn class_instance(inst: &Instance, k: usize) -> Instance {
    Instance {
        topo: inst.topo.clone(),
        pairs: inst.pairs.clone(),
        classes: vec![ClassConfig { weight: 1.0, ..inst.classes[k].clone() }],
        tunnels: vec![inst.tunnels[k].clone()],
        demands: vec![inst.demands[k].clone()],
    }
}

/// Per-arc usage needed to realize `served` for the (single-class)
/// instance in `scen`, using the canonical short-path-preferring routing.
fn arc_usage(inst: &Instance, scen: &Scenario, served: &[f64]) -> Vec<f64> {
    let mut alloc = ScenAlloc::new(inst, scen, Sense::Max);
    let df = scen.demand_factor;
    let eps = alloc.model.add_var("eps", 0.0, 1.0, -1e6);
    for p in 0..inst.num_pairs() {
        let d = inst.demands[0][p] * df;
        if !alloc.pair_alive[0][p] || d <= 0.0 {
            continue;
        }
        let coeffs = alloc.served_coeffs(0, p);
        alloc.model.add_row_le(&coeffs, d);
        let mut floor = coeffs.clone();
        floor.push((eps, d));
        alloc.model.add_row_ge(&floor, (served[p] - 1e-7).max(0.0));
        for (t, &v) in alloc.x[0][p].iter().enumerate() {
            let hops = (inst.tunnels[0].tunnels[p][t].len() as f64).max(1.0);
            alloc.model.set_obj(v, -hops);
        }
    }
    let sol = alloc.model.solve().expect("elastic usage LP is feasible");
    let mut usage = vec![0.0; inst.num_arcs()];
    for p in 0..inst.num_pairs() {
        for (t, &v) in alloc.x[0][p].iter().enumerate() {
            let amt = sol.value(v);
            if amt > 0.0 {
                for a in inst.arc_ids(&inst.tunnels[0].tunnels[p][t]) {
                    usage[a] += amt;
                }
            }
        }
    }
    usage
}

/// Run the strict-priority design. Classes are processed in the instance's
/// order (highest priority first).
pub fn solve_flexile_lexicographic(
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
) -> LexicographicDesign {
    let nq = set.scenarios.len();
    let mut designs = Vec::with_capacity(inst.num_classes());
    let mut loss = vec![vec![0.0; nq]; inst.num_flows()];
    // Residual scenario set, shrunk as classes consume capacity.
    let mut residual_set = set.clone();

    for k in 0..inst.num_classes() {
        let sub = class_instance(inst, k);
        let design = solve_flexile(&sub, &residual_set, opts);
        // Step 2: per scenario, push as much class-k traffic as possible
        // (the online allocator with this class alone), record losses and
        // measure usage.
        let mut next_set = residual_set.clone();
        for (q, scen) in residual_set.scenarios.iter().enumerate() {
            let critical: Vec<bool> =
                (0..sub.num_flows()).map(|f| design.critical[f][q]).collect();
            let promised: Vec<f64> =
                (0..sub.num_flows()).map(|f| design.offline_loss[f][q]).collect();
            let l = online_allocate(&sub, scen, &critical, &promised);
            let served: Vec<f64> = (0..sub.num_pairs())
                .map(|p| (1.0 - l[p]).max(0.0) * sub.demands[0][p] * scen.demand_factor)
                .collect();
            for p in 0..sub.num_pairs() {
                loss[inst.flow_index(k, p)][q] = l[p];
            }
            if k + 1 < inst.num_classes() {
                let usage = arc_usage(&sub, scen, &served);
                let s = &mut next_set.scenarios[q];
                for l_idx in 0..inst.topo.num_links() {
                    let cap = inst
                        .topo
                        .link(flexile_topo::LinkId(l_idx as u32))
                        .capacity;
                    let used = usage[2 * l_idx].max(usage[2 * l_idx + 1]);
                    let left = (s.cap_factor[l_idx] * cap - used).max(0.0);
                    s.cap_factor[l_idx] = if cap > 0.0 { left / cap } else { 0.0 };
                }
            }
        }
        residual_set = next_set;
        designs.push(design);
    }
    LexicographicDesign { designs, loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexile_metrics::{perc_loss, LossMatrix};
    use flexile_scenario::{enumerate_scenarios, model::link_units, EnumOptions};
    use flexile_topo::{NodeId, Topology, TunnelClass, TunnelSet};

    fn two_class_triangle() -> (Instance, ScenarioSet) {
        let topo = Topology::new("fig1", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))];
        let hi = TunnelSet::build(&topo, &pairs, TunnelClass::HighPriority);
        let lo = TunnelSet::build(&topo, &pairs, TunnelClass::LowPriority);
        let mut hi_class = ClassConfig::interactive();
        hi_class.beta = 0.99;
        let mut lo_class = ClassConfig::elastic();
        lo_class.beta = 0.99;
        let inst = Instance {
            topo,
            pairs,
            classes: vec![hi_class, lo_class],
            tunnels: vec![hi, lo],
            demands: vec![vec![0.3, 0.3], vec![0.3, 0.3]],
        };
        let units = link_units(&inst.topo, &[0.01; 3]);
        let set = enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        );
        (inst, set)
    }

    #[test]
    fn high_class_designed_unencumbered() {
        let (inst, set) = two_class_triangle();
        let lex = solve_flexile_lexicographic(&inst, &set, &FlexileOptions::default());
        assert_eq!(lex.designs.len(), 2);
        // High class (0.3 per flow) fits its direct links even on single
        // failures via detours: zero PercLoss.
        assert!(lex.designs[0].penalty < 1e-6, "high penalty {}", lex.designs[0].penalty);
    }

    #[test]
    fn combined_losses_respect_priority() {
        let (inst, set) = two_class_triangle();
        let lex = solve_flexile_lexicographic(&inst, &set, &FlexileOptions::default());
        let m = LossMatrix::new(lex.loss.clone(), set.probs(), set.residual);
        let hi = perc_loss(&m, &inst.class_flows(0), 0.99);
        let lo = perc_loss(&m, &inst.class_flows(1), 0.99);
        assert!(hi < 1e-6, "high-priority PercLoss {hi}");
        // At 0.3+0.3 demand per flow the low class can still cover 99%:
        // its loss concentrates in the scenarios where the high class
        // needed the detour capacity, which the design marks non-critical.
        assert!(lo <= 0.35, "low-priority PercLoss {lo}");
        assert!(hi <= lo + 1e-9);
    }
}
