//! Crash-safe checkpointing of the Benders decomposition state.
//!
//! A checkpoint is a **versioned, checksummed, zero-dependency binary
//! snapshot** of everything [`crate::solve_flexile`] needs to continue a
//! run after process death: the proposed criticality `z`, the master's cut
//! pool, per-scenario caches and pruning flags, the best incumbent, the
//! per-iteration statistics, the bound trajectory, and — crucially — each
//! scenario's *solve-column history* (the sequence of criticality columns
//! its pooled template solved since its last cold start).
//!
//! **Warm bases are intentionally not persisted.** A basis snapshot is
//! large, engine-specific, and version-fragile. Instead the decomposition
//! is deterministic given each scenario's RHS chain: scenario `q`'s
//! template state depends only on its own solve sequence (templates are
//! never shared across scenarios — see [`crate::pool`]), so replaying the
//! checkpointed chain through a fresh template performs bit-for-bit the
//! same computation the uninterrupted run did and reconstructs the exact
//! warm basis. `decompose_resume` does this replay before continuing,
//! which is why resumed runs reach bit-identical final objectives (the
//! crash tests assert this via [`flexile_lp::Basis::fingerprint`]).
//!
//! The decomposition itself uses no RNG, so there is no random state to
//! persist; determinism is documented and tested in `tests/pool.rs`.
//!
//! ## Wire format (version 2, all little-endian)
//!
//! ```text
//! magic   8 B   "FLXCKPT\0"
//! version u32
//! len     u64   payload length in bytes
//! check   u64   FNV-1a-64 over the payload
//! payload len B
//! ```
//!
//! No trailing bytes are tolerated. Every length field is validated
//! against the remaining payload before allocation, so a corrupted or
//! hostile file yields a typed [`CheckpointError`] — never a panic, an
//! OOM, or silent garbage (property-tested in `tests/checkpoint.rs`).
//!
//! Writes are atomic: the snapshot goes to `<path>.tmp` and is renamed
//! over the target, so a crash *during checkpointing* leaves the previous
//! checkpoint intact.

use crate::decomposition::{FlexileOptions, IterationStat, PoolPolicy};
use crate::subproblem::Cut;
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::fmt;
use std::path::{Path, PathBuf};

/// Current wire-format version. Version 2 added component-resolved
/// fingerprints (`problem_parts` / `options_parts`) so a mismatch names
/// exactly which component diverged instead of reporting a bare mismatch.
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"FLXCKPT\0";

/// File name used inside a checkpoint directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("flexile.ckpt")
}

/// Why a checkpoint could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure, with the offending path and the OS error text.
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not [`CHECKPOINT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file ends before the declared payload (or header) does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, inconsistent shape, trailing
    /// bytes). The message says which field.
    Malformed(&'static str),
    /// The checkpoint belongs to a different instance/scenario set than the
    /// one being resumed. `component` names which part of the problem
    /// fingerprint diverged (see [`PROBLEM_COMPONENTS`], plus `"betas"` for
    /// the effective-β check) so the failure is diagnosable from one line.
    ProblemMismatch {
        /// Which problem-fingerprint component differs.
        component: &'static str,
    },
    /// The checkpoint was written under decomposition options that change
    /// the trajectory (iteration/pruning/γ knobs or the master
    /// configuration). `component` names which options-fingerprint
    /// component diverged (see [`OPTIONS_COMPONENTS`]).
    OptionsMismatch {
        /// Which options-fingerprint component differs.
        component: &'static str,
    },
    /// The checkpoint's pool configuration (scheduling policy/residency or
    /// batch width) differs from the resuming run's. Split from
    /// [`CheckpointError::OptionsMismatch`] because distributed handshakes
    /// negotiate exactly these knobs and need the typed rejection.
    PoolConfigMismatch {
        /// Which pool-config component differs (`"pool_policy"` or
        /// `"batch_width"`).
        component: &'static str,
    },
    /// Resume was requested but the options carry no checkpoint directory.
    NoCheckpointConfigured,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a Flexile checkpoint (bad magic)"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads \
                 version {expected}); re-run the decomposition from scratch"
            ),
            CheckpointError::Truncated { needed, have } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, have {have}")
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint payload checksum mismatch (file corrupted)")
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ProblemMismatch { component } => write!(
                f,
                "checkpoint was written for a different instance/scenario set \
                 (mismatched component: {component})"
            ),
            CheckpointError::OptionsMismatch { component } => write!(
                f,
                "checkpoint was written under different decomposition options \
                 (mismatched component: {component})"
            ),
            CheckpointError::PoolConfigMismatch { component } => write!(
                f,
                "checkpoint was written under a different pool configuration \
                 (mismatched component: {component})"
            ),
            CheckpointError::NoCheckpointConfigured => {
                write!(f, "resume requested but FlexileOptions.checkpoint_dir is unset")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The best incumbent found so far (penalty, criticality, offline losses,
/// per-class α) — mirrors the tuple the decomposition loop tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct BestIncumbent {
    /// Incumbent penalty `Σ_k w_k α_k`.
    pub penalty: f64,
    /// Criticality assignment `critical[f][q]`.
    pub critical: Vec<Vec<bool>>,
    /// Offline per-flow, per-scenario losses.
    pub loss: Vec<Vec<f64>>,
    /// Per-class achieved PercLoss.
    pub alpha: Vec<f64>,
}

/// A decoded (or to-be-encoded) snapshot of the decomposition at an
/// iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Component-resolved fingerprint of the instance + scenario set (see
    /// [`problem_fingerprint_parts`]); resume refuses a mismatch, naming
    /// the first diverging component.
    pub problem_parts: [u64; PROBLEM_COMPONENTS.len()],
    /// Component-resolved fingerprint of the trajectory-relevant options
    /// (see [`options_fingerprint_parts`]).
    pub options_parts: [u64; OPTIONS_COMPONENTS.len()],
    /// Number of flows.
    pub nf: usize,
    /// Number of scenarios.
    pub nq: usize,
    /// Number of arcs (cut `u` length).
    pub na: usize,
    /// Last *completed* iteration (1-based; the loop continues at `it+1`).
    pub it: usize,
    /// The run finished (converged or hit the iteration cap); resume just
    /// reconstructs the design without solving anything.
    pub done: bool,
    /// Criticality proposal for the next iteration, `z[f][q]`.
    pub z: Vec<Vec<bool>>,
    /// Master cut pool, `cuts[q]`.
    pub cuts: Vec<Vec<Cut>>,
    /// Per-scenario cached losses from the last successful solve.
    pub cached_loss: Vec<Option<Vec<f64>>>,
    /// Per-scenario cached subproblem values.
    pub cached_value: Vec<f64>,
    /// Per-scenario criticality column of the last solve (pruning state).
    pub last_z_col: Vec<Option<Vec<bool>>>,
    /// Perfect-scenario pruning flags.
    pub perfect: Vec<bool>,
    /// Pool LRU stamps (last iteration each template was used).
    pub stamps: Vec<u64>,
    /// Per-scenario solve-column history since the template's last cold
    /// start; replayed on resume to reconstruct warm bases exactly.
    pub chains: Vec<Vec<Vec<bool>>>,
    /// Best incumbent so far.
    pub best: Option<BestIncumbent>,
    /// Per-iteration statistics so far.
    pub iterations: Vec<IterationStat>,
    /// Master lower bound from the most recent master solve.
    pub last_bound: Option<f64>,
    /// Effective per-class β targets.
    pub betas: Vec<f64>,
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

pub(crate) fn fnv64(bs: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bs);
    h.0
}

/// Names of the problem-fingerprint components, aligned with the entries
/// of [`problem_fingerprint_parts`]. A mismatch is reported with the first
/// diverging component's name.
pub const PROBLEM_COMPONENTS: [&str; 5] =
    ["shape", "classes", "demands", "capacities", "scenarios"];

/// Names of the options-fingerprint components, aligned with the entries
/// of [`options_fingerprint_parts`]. The last two (`pool_policy`,
/// `batch_width`) are pool configuration and surface as
/// [`CheckpointError::PoolConfigMismatch`] rather than the generic
/// options mismatch.
pub const OPTIONS_COMPONENTS: [&str; 4] = ["search", "master", "pool_policy", "batch_width"];

/// Bit-exact component fingerprints of the problem a checkpoint belongs
/// to, in [`PROBLEM_COMPONENTS`] order: structural shape (flow/arc/class
/// counts), classes (β, weight), demands, arc capacities, and every
/// scenario's probability, capacity factors, demand factor, and failed
/// units.
pub fn problem_fingerprint_parts(
    inst: &Instance,
    set: &ScenarioSet,
) -> [u64; PROBLEM_COMPONENTS.len()] {
    let mut shape = Fnv::new();
    shape.u64(inst.num_flows() as u64);
    shape.u64(inst.num_arcs() as u64);
    shape.u64(inst.num_classes() as u64);

    let mut classes = Fnv::new();
    for c in &inst.classes {
        classes.f64(c.beta);
        classes.f64(c.weight);
    }

    let mut demands = Fnv::new();
    for row in &inst.demands {
        demands.u64(row.len() as u64);
        for &d in row {
            demands.f64(d);
        }
    }

    let mut capacities = Fnv::new();
    for a in 0..inst.num_arcs() {
        capacities.f64(inst.arc_capacity(a));
        capacities.u64(inst.arc_link(a) as u64);
    }

    let mut scenarios = Fnv::new();
    scenarios.u64(set.scenarios.len() as u64);
    scenarios.f64(set.residual);
    for s in &set.scenarios {
        scenarios.f64(s.prob);
        scenarios.f64(s.demand_factor);
        for &u in &s.failed_units {
            scenarios.u64(u as u64 + 1);
        }
        scenarios.u64(0); // terminator between scenarios
        for &cf in &s.cap_factor {
            scenarios.f64(cf);
        }
    }
    [shape.0, classes.0, demands.0, capacities.0, scenarios.0]
}

/// Combined problem fingerprint (FNV over the component parts). Kept for
/// call sites that only need a single opaque identity.
pub fn problem_fingerprint(inst: &Instance, set: &ScenarioSet) -> u64 {
    combine_parts(&problem_fingerprint_parts(inst, set))
}

/// Component fingerprints of the options that change the decomposition
/// *trajectory* (anything that would make continuation diverge from the
/// original run), in [`OPTIONS_COMPONENTS`] order: search knobs
/// (iteration cap, pruning, γ), master configuration, pool policy +
/// residency, and batch width. Thread count is deliberately excluded —
/// output is thread-invariant — as are the checkpointing knobs themselves
/// and the watchdog (wall-clock based, documented as best-effort).
pub fn options_fingerprint_parts(opts: &FlexileOptions) -> [u64; OPTIONS_COMPONENTS.len()] {
    let mut search = Fnv::new();
    search.u64(opts.max_iterations as u64);
    search.u64(opts.prune as u64);
    match opts.gamma {
        Some(g) => {
            search.u64(1);
            search.f64(g);
        }
        None => search.u64(0),
    }

    let mut master = Fnv::new();
    master.u64(opts.master.hamming_limit as u64);
    master.u64(opts.master.exact_threshold as u64);

    let mut pool_policy = Fnv::new();
    pool_policy.u64(match opts.pool {
        PoolPolicy::PerScenario => 0,
        PoolPolicy::LegacyStriped => 1,
        PoolPolicy::Cold => 2,
    });
    pool_policy.u64(opts.basis_residency as u64);

    let mut batch_width = Fnv::new();
    batch_width.u64(opts.batch_width as u64);

    [search.0, master.0, pool_policy.0, batch_width.0]
}

/// Combined options fingerprint (FNV over the component parts).
pub fn options_fingerprint(opts: &FlexileOptions) -> u64 {
    combine_parts(&options_fingerprint_parts(opts))
}

fn combine_parts(parts: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for &p in parts {
        h.u64(p);
    }
    h.0
}

/// Compare declared fingerprint parts against locally recomputed ones,
/// returning a typed error naming the first diverging component. Shared
/// by [`crate::decompose_resume`] and the distributed handshake, so a
/// coordinator/worker disagreement is diagnosable from one log line.
pub fn check_parts(
    declared_problem: &[u64; PROBLEM_COMPONENTS.len()],
    actual_problem: &[u64; PROBLEM_COMPONENTS.len()],
    declared_options: &[u64; OPTIONS_COMPONENTS.len()],
    actual_options: &[u64; OPTIONS_COMPONENTS.len()],
) -> Result<(), CheckpointError> {
    for (i, name) in PROBLEM_COMPONENTS.iter().enumerate() {
        if declared_problem[i] != actual_problem[i] {
            return Err(CheckpointError::ProblemMismatch { component: name });
        }
    }
    for (i, name) in OPTIONS_COMPONENTS.iter().enumerate() {
        if declared_options[i] != actual_options[i] {
            return Err(if *name == "pool_policy" || *name == "batch_width" {
                CheckpointError::PoolConfigMismatch { component: name }
            } else {
                CheckpointError::OptionsMismatch { component: name }
            });
        }
    }
    Ok(())
}

/// Validate that a checkpoint belongs to this problem + options, naming
/// the diverging component on mismatch. Shape (`nf`/`nq`/`na`) counts as
/// the `"shape"` problem component.
pub fn validate_fingerprints(
    ck: &CheckpointState,
    inst: &Instance,
    set: &ScenarioSet,
    opts: &FlexileOptions,
) -> Result<(), CheckpointError> {
    if ck.nf != inst.num_flows() || ck.nq != set.scenarios.len() || ck.na != inst.num_arcs() {
        return Err(CheckpointError::ProblemMismatch { component: "shape" });
    }
    check_parts(
        &ck.problem_parts,
        &problem_fingerprint_parts(inst, set),
        &ck.options_parts,
        &options_fingerprint_parts(opts),
    )
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc { buf: Vec::with_capacity(4096) }
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    /// A length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn bits(&mut self, bs: &[bool]) {
        self.u64(bs.len() as u64);
        let mut byte = 0u8;
        for (i, &b) in bs.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !bs.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    pub(crate) fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.buf.push(1);
                f(self, inner);
            }
            None => self.buf.push(0),
        }
    }
    pub(crate) fn cut(&mut self, c: &Cut) {
        self.f64s(&c.w);
        self.f64s(&c.u);
        self.f64(c.d_const);
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

pub(crate) struct Dec<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.len() - self.pos < n {
            Err(CheckpointError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }
    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A length-prefixed UTF-8 string (hostile lengths and invalid UTF-8
    /// are typed errors, like every other field).
    pub(crate) fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.len(1)?;
        self.need(n)?;
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + n])
            .map_err(|_| CheckpointError::Malformed("invalid UTF-8 string"))?
            .to_string();
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn bool(&mut self) -> Result<bool, CheckpointError> {
        self.need(1)?;
        let b = self.buf[self.pos];
        self.pos += 1;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool tag")),
        }
    }
    /// A length field, validated so that `len * elem_bytes` fits in the
    /// remaining payload (prevents attacker-controlled allocations).
    pub(crate) fn len(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes.max(1) as u64).is_none_or(|need| need > remaining) {
            return Err(CheckpointError::Malformed("length field exceeds payload"));
        }
        Ok(n as usize)
    }
    pub(crate) fn bits(&mut self) -> Result<Vec<bool>, CheckpointError> {
        let n = self.u64()? as usize;
        let bytes = n.div_ceil(8);
        self.need(bytes)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.buf[self.pos + i / 8] >> (i % 8) & 1 == 1);
        }
        // Padding bits must be zero so every payload has one encoding.
        if !n.is_multiple_of(8) && self.buf[self.pos + bytes - 1] >> (n % 8) != 0 {
            return Err(CheckpointError::Malformed("nonzero bit padding"));
        }
        self.pos += bytes;
        Ok(out)
    }
    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    pub(crate) fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CheckpointError>,
    ) -> Result<Option<T>, CheckpointError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
    pub(crate) fn cut(&mut self) -> Result<Cut, CheckpointError> {
        Ok(Cut { w: self.f64s()?, u: self.f64s()?, d_const: self.f64()? })
    }
}

// ---------------------------------------------------------------------------
// State <-> bytes
// ---------------------------------------------------------------------------

/// Serialize a state to the full file image (header + payload).
pub fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut e = Enc::new();
    for &p in &state.problem_parts {
        e.u64(p);
    }
    for &p in &state.options_parts {
        e.u64(p);
    }
    e.u64(state.nf as u64);
    e.u64(state.nq as u64);
    e.u64(state.na as u64);
    e.u64(state.it as u64);
    e.bool(state.done);
    for row in &state.z {
        e.bits(row);
    }
    for qcuts in &state.cuts {
        e.u64(qcuts.len() as u64);
        for c in qcuts {
            e.cut(c);
        }
    }
    for l in &state.cached_loss {
        e.opt(l, |e, v| e.f64s(v));
    }
    e.f64s(&state.cached_value);
    for c in &state.last_z_col {
        e.opt(c, |e, v| e.bits(v));
    }
    e.bits(&state.perfect);
    e.u64(state.stamps.len() as u64);
    for &s in &state.stamps {
        e.u64(s);
    }
    for chain in &state.chains {
        e.u64(chain.len() as u64);
        for col in chain {
            e.bits(col);
        }
    }
    e.opt(&state.best, |e, b| {
        e.f64(b.penalty);
        for row in &b.critical {
            e.bits(row);
        }
        for row in &b.loss {
            e.f64s(row);
        }
        e.f64s(&b.alpha);
    });
    e.u64(state.iterations.len() as u64);
    for s in &state.iterations {
        e.u64(s.iteration as u64);
        e.f64(s.penalty);
        e.u64(s.solved as u64);
        e.u64(s.pruned as u64);
        e.u64(s.lp_iterations as u64);
        e.u64(s.warm_hits as u64);
        e.u64(s.dual_restarts as u64);
    }
    e.opt(&state.last_bound, |e, &b| e.f64(b));
    e.f64s(&state.betas);

    let payload = e.buf;
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse and validate a full file image.
pub fn decode(data: &[u8]) -> Result<CheckpointState, CheckpointError> {
    if data.len() < 8 {
        return Err(CheckpointError::Truncated { needed: 8, have: data.len() });
    }
    if &data[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if data.len() < 28 {
        return Err(CheckpointError::Truncated { needed: 28, have: data.len() });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let plen = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes")) as usize;
    let check = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    let have = data.len() - 28;
    if have < plen {
        return Err(CheckpointError::Truncated { needed: 28 + plen, have: data.len() });
    }
    if have > plen {
        return Err(CheckpointError::Malformed("trailing bytes after payload"));
    }
    let payload = &data[28..];
    if fnv64(payload) != check {
        return Err(CheckpointError::ChecksumMismatch);
    }

    let mut d = Dec { buf: payload, pos: 0 };
    let mut problem_parts = [0u64; PROBLEM_COMPONENTS.len()];
    for p in &mut problem_parts {
        *p = d.u64()?;
    }
    let mut options_parts = [0u64; OPTIONS_COMPONENTS.len()];
    for p in &mut options_parts {
        *p = d.u64()?;
    }
    let nf = d.len(0)?;
    let nq = d.len(0)?;
    let na = d.len(0)?;
    // Shape sanity: every per-flow/per-scenario structure below is bounded
    // by these, and each row costs at least one length byte, so cap them
    // against the payload size before trusting them in loops.
    if nf > payload.len() || nq > payload.len() || na > payload.len() {
        return Err(CheckpointError::Malformed("dimensions exceed payload"));
    }
    let it = d.u64()? as usize;
    let done = d.bool()?;
    let expect_bits = |v: Vec<bool>, n: usize, what: &'static str| {
        if v.len() == n {
            Ok(v)
        } else {
            Err(CheckpointError::Malformed(what))
        }
    };
    let expect_f64s = |v: Vec<f64>, n: usize, what: &'static str| {
        if v.len() == n {
            Ok(v)
        } else {
            Err(CheckpointError::Malformed(what))
        }
    };
    let mut z = Vec::with_capacity(nf);
    for _ in 0..nf {
        z.push(expect_bits(d.bits()?, nq, "z row length")?);
    }
    let mut cuts = Vec::with_capacity(nq);
    for _ in 0..nq {
        let ncuts = d.len(1)?;
        let mut qcuts = Vec::with_capacity(ncuts);
        for _ in 0..ncuts {
            let c = d.cut()?;
            if c.w.len() != nf || c.u.len() != na {
                return Err(CheckpointError::Malformed("cut dimensions"));
            }
            qcuts.push(c);
        }
        cuts.push(qcuts);
    }
    let mut cached_loss = Vec::with_capacity(nq);
    for _ in 0..nq {
        let l = d.opt(|d| d.f64s())?;
        cached_loss.push(match l {
            Some(v) => Some(expect_f64s(v, nf, "cached_loss row length")?),
            None => None,
        });
    }
    let cached_value = expect_f64s(d.f64s()?, nq, "cached_value length")?;
    let mut last_z_col = Vec::with_capacity(nq);
    for _ in 0..nq {
        let c = d.opt(|d| d.bits())?;
        last_z_col.push(match c {
            Some(v) => Some(expect_bits(v, nf, "last_z_col length")?),
            None => None,
        });
    }
    let perfect = expect_bits(d.bits()?, nq, "perfect length")?;
    let nstamps = d.len(8)?;
    if nstamps != nq {
        return Err(CheckpointError::Malformed("stamps length"));
    }
    let mut stamps = Vec::with_capacity(nq);
    for _ in 0..nq {
        stamps.push(d.u64()?);
    }
    let mut chains = Vec::with_capacity(nq);
    for _ in 0..nq {
        let n = d.len(1)?;
        let mut chain = Vec::with_capacity(n);
        for _ in 0..n {
            chain.push(expect_bits(d.bits()?, nf, "chain column length")?);
        }
        chains.push(chain);
    }
    let best = d.opt(|d| {
        let penalty = d.f64()?;
        let mut critical = Vec::with_capacity(nf);
        for _ in 0..nf {
            critical.push(expect_bits(d.bits()?, nq, "best.critical row length")?);
        }
        let mut loss = Vec::with_capacity(nf);
        for _ in 0..nf {
            loss.push(expect_f64s(d.f64s()?, nq, "best.loss row length")?);
        }
        let alpha = d.f64s()?;
        Ok(BestIncumbent { penalty, critical, loss, alpha })
    })?;
    let niters = d.len(1)?;
    let mut iterations = Vec::with_capacity(niters);
    for _ in 0..niters {
        iterations.push(IterationStat {
            iteration: d.u64()? as usize,
            penalty: d.f64()?,
            solved: d.u64()? as usize,
            pruned: d.u64()? as usize,
            lp_iterations: d.u64()? as usize,
            warm_hits: d.u64()? as usize,
            dual_restarts: d.u64()? as usize,
        });
    }
    let last_bound = d.opt(|d| d.f64())?;
    let betas = d.f64s()?;
    if d.pos != payload.len() {
        return Err(CheckpointError::Malformed("unconsumed payload bytes"));
    }
    Ok(CheckpointState {
        problem_parts,
        options_parts,
        nf,
        nq,
        na,
        it,
        done,
        z,
        cuts,
        cached_loss,
        cached_value,
        last_z_col,
        perfect,
        stamps,
        chains,
        best,
        iterations,
        last_bound,
        betas,
    })
}

// ---------------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{}: {e}", path.display()))
}

/// Atomically write a checkpoint: encode, write to `<path>.tmp`, fsync,
/// rename over `path`. Returns the file size in bytes.
pub fn write_checkpoint(path: &Path, state: &CheckpointState) -> Result<u64, CheckpointError> {
    let _sp = flexile_obs::span("flexile.checkpoint_write", "flexile")
        .field("iteration", state.it)
        .field("done", state.done as u64);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
    }
    let bytes = encode(state);
    let tmp = path.with_extension("ckpt.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    flexile_obs::add("flexile.checkpoint_write", 1);
    flexile_obs::observe("flexile.checkpoint_bytes", bytes.len() as f64);
    Ok(bytes.len() as u64)
}

/// Read and validate a checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointState, CheckpointError> {
    let _sp = flexile_obs::span("flexile.checkpoint_restore", "flexile");
    let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let state = decode(&data)?;
    flexile_obs::add("flexile.checkpoint_restore", 1);
    Ok(state)
}
