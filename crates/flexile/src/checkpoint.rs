//! Crash-safe checkpointing of the Benders decomposition state.
//!
//! A checkpoint is a **versioned, checksummed, zero-dependency binary
//! snapshot** of everything [`crate::solve_flexile`] needs to continue a
//! run after process death: the proposed criticality `z`, the master's cut
//! pool, per-scenario caches and pruning flags, the best incumbent, the
//! per-iteration statistics, the bound trajectory, and — crucially — each
//! scenario's *solve-column history* (the sequence of criticality columns
//! its pooled template solved since its last cold start).
//!
//! **Warm bases are intentionally not persisted.** A basis snapshot is
//! large, engine-specific, and version-fragile. Instead the decomposition
//! is deterministic given each scenario's RHS chain: scenario `q`'s
//! template state depends only on its own solve sequence (templates are
//! never shared across scenarios — see [`crate::pool`]), so replaying the
//! checkpointed chain through a fresh template performs bit-for-bit the
//! same computation the uninterrupted run did and reconstructs the exact
//! warm basis. `decompose_resume` does this replay before continuing,
//! which is why resumed runs reach bit-identical final objectives (the
//! crash tests assert this via [`flexile_lp::Basis::fingerprint`]).
//!
//! The decomposition itself uses no RNG, so there is no random state to
//! persist; determinism is documented and tested in `tests/pool.rs`.
//!
//! ## Wire format (version 1, all little-endian)
//!
//! ```text
//! magic   8 B   "FLXCKPT\0"
//! version u32
//! len     u64   payload length in bytes
//! check   u64   FNV-1a-64 over the payload
//! payload len B
//! ```
//!
//! No trailing bytes are tolerated. Every length field is validated
//! against the remaining payload before allocation, so a corrupted or
//! hostile file yields a typed [`CheckpointError`] — never a panic, an
//! OOM, or silent garbage (property-tested in `tests/checkpoint.rs`).
//!
//! Writes are atomic: the snapshot goes to `<path>.tmp` and is renamed
//! over the target, so a crash *during checkpointing* leaves the previous
//! checkpoint intact.

use crate::decomposition::{FlexileOptions, IterationStat, PoolPolicy};
use crate::subproblem::Cut;
use flexile_scenario::ScenarioSet;
use flexile_traffic::Instance;
use std::fmt;
use std::path::{Path, PathBuf};

/// Current wire-format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"FLXCKPT\0";

/// File name used inside a checkpoint directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("flexile.ckpt")
}

/// Why a checkpoint could not be read (or written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure, with the offending path and the OS error text.
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not [`CHECKPOINT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file ends before the declared payload (or header) does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The FNV-1a checksum over the payload does not match the header.
    ChecksumMismatch,
    /// Structurally invalid payload (bad tag, inconsistent shape, trailing
    /// bytes). The message says which field.
    Malformed(&'static str),
    /// The checkpoint belongs to a different instance/scenario set than the
    /// one being resumed.
    ProblemMismatch,
    /// The checkpoint was written under decomposition options that change
    /// the trajectory (master knobs, pruning, residency, policy, γ).
    OptionsMismatch,
    /// Resume was requested but the options carry no checkpoint directory.
    NoCheckpointConfigured,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a Flexile checkpoint (bad magic)"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads \
                 version {expected}); re-run the decomposition from scratch"
            ),
            CheckpointError::Truncated { needed, have } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, have {have}")
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint payload checksum mismatch (file corrupted)")
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ProblemMismatch => write!(
                f,
                "checkpoint was written for a different instance/scenario set"
            ),
            CheckpointError::OptionsMismatch => write!(
                f,
                "checkpoint was written under different decomposition options"
            ),
            CheckpointError::NoCheckpointConfigured => {
                write!(f, "resume requested but FlexileOptions.checkpoint_dir is unset")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The best incumbent found so far (penalty, criticality, offline losses,
/// per-class α) — mirrors the tuple the decomposition loop tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct BestIncumbent {
    /// Incumbent penalty `Σ_k w_k α_k`.
    pub penalty: f64,
    /// Criticality assignment `critical[f][q]`.
    pub critical: Vec<Vec<bool>>,
    /// Offline per-flow, per-scenario losses.
    pub loss: Vec<Vec<f64>>,
    /// Per-class achieved PercLoss.
    pub alpha: Vec<f64>,
}

/// A decoded (or to-be-encoded) snapshot of the decomposition at an
/// iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Fingerprint of the instance + scenario set (see
    /// [`problem_fingerprint`]); resume refuses a mismatch.
    pub problem_fp: u64,
    /// Fingerprint of the trajectory-relevant options (see
    /// [`options_fingerprint`]).
    pub options_fp: u64,
    /// Number of flows.
    pub nf: usize,
    /// Number of scenarios.
    pub nq: usize,
    /// Number of arcs (cut `u` length).
    pub na: usize,
    /// Last *completed* iteration (1-based; the loop continues at `it+1`).
    pub it: usize,
    /// The run finished (converged or hit the iteration cap); resume just
    /// reconstructs the design without solving anything.
    pub done: bool,
    /// Criticality proposal for the next iteration, `z[f][q]`.
    pub z: Vec<Vec<bool>>,
    /// Master cut pool, `cuts[q]`.
    pub cuts: Vec<Vec<Cut>>,
    /// Per-scenario cached losses from the last successful solve.
    pub cached_loss: Vec<Option<Vec<f64>>>,
    /// Per-scenario cached subproblem values.
    pub cached_value: Vec<f64>,
    /// Per-scenario criticality column of the last solve (pruning state).
    pub last_z_col: Vec<Option<Vec<bool>>>,
    /// Perfect-scenario pruning flags.
    pub perfect: Vec<bool>,
    /// Pool LRU stamps (last iteration each template was used).
    pub stamps: Vec<u64>,
    /// Per-scenario solve-column history since the template's last cold
    /// start; replayed on resume to reconstruct warm bases exactly.
    pub chains: Vec<Vec<Vec<bool>>>,
    /// Best incumbent so far.
    pub best: Option<BestIncumbent>,
    /// Per-iteration statistics so far.
    pub iterations: Vec<IterationStat>,
    /// Master lower bound from the most recent master solve.
    pub last_bound: Option<f64>,
    /// Effective per-class β targets.
    pub betas: Vec<f64>,
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn fnv64(bs: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bs);
    h.0
}

/// Bit-exact fingerprint of the problem a checkpoint belongs to: flows,
/// classes (β, weight), demands, arc capacities, and every scenario's
/// probability, capacity factors, demand factor, and failed units.
pub fn problem_fingerprint(inst: &Instance, set: &ScenarioSet) -> u64 {
    let mut h = Fnv::new();
    h.u64(inst.num_flows() as u64);
    h.u64(inst.num_arcs() as u64);
    h.u64(inst.num_classes() as u64);
    for c in &inst.classes {
        h.f64(c.beta);
        h.f64(c.weight);
    }
    for row in &inst.demands {
        h.u64(row.len() as u64);
        for &d in row {
            h.f64(d);
        }
    }
    for a in 0..inst.num_arcs() {
        h.f64(inst.arc_capacity(a));
        h.u64(inst.arc_link(a) as u64);
    }
    h.u64(set.scenarios.len() as u64);
    h.f64(set.residual);
    for s in &set.scenarios {
        h.f64(s.prob);
        h.f64(s.demand_factor);
        for &u in &s.failed_units {
            h.u64(u as u64 + 1);
        }
        h.u64(0); // terminator between scenarios
        for &cf in &s.cap_factor {
            h.f64(cf);
        }
    }
    h.0
}

/// Fingerprint of the options that change the decomposition *trajectory*
/// (anything that would make continuation diverge from the original run).
/// Thread count is deliberately excluded — output is thread-invariant —
/// as are the checkpointing knobs themselves and the watchdog (wall-clock
/// based, documented as best-effort).
pub fn options_fingerprint(opts: &FlexileOptions) -> u64 {
    let mut h = Fnv::new();
    h.u64(opts.max_iterations as u64);
    h.u64(opts.master.hamming_limit as u64);
    h.u64(opts.master.exact_threshold as u64);
    h.u64(opts.prune as u64);
    h.u64(match opts.pool {
        PoolPolicy::PerScenario => 0,
        PoolPolicy::LegacyStriped => 1,
        PoolPolicy::Cold => 2,
    });
    h.u64(opts.basis_residency as u64);
    h.u64(opts.batch_width as u64);
    match opts.gamma {
        Some(g) => {
            h.u64(1);
            h.f64(g);
        }
        None => h.u64(0),
    }
    h.0
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::with_capacity(4096) }
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn bits(&mut self, bs: &[bool]) {
        self.u64(bs.len() as u64);
        let mut byte = 0u8;
        for (i, &b) in bs.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !bs.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.buf.push(1);
                f(self, inner);
            }
            None => self.buf.push(0),
        }
    }
    fn cut(&mut self, c: &Cut) {
        self.f64s(&c.w);
        self.f64s(&c.u);
        self.f64(c.d_const);
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.len() - self.pos < n {
            Err(CheckpointError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, CheckpointError> {
        self.need(1)?;
        let b = self.buf[self.pos];
        self.pos += 1;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool tag")),
        }
    }
    /// A length field, validated so that `len * elem_bytes` fits in the
    /// remaining payload (prevents attacker-controlled allocations).
    fn len(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes.max(1) as u64).is_none_or(|need| need > remaining) {
            return Err(CheckpointError::Malformed("length field exceeds payload"));
        }
        Ok(n as usize)
    }
    fn bits(&mut self) -> Result<Vec<bool>, CheckpointError> {
        let n = self.u64()? as usize;
        let bytes = n.div_ceil(8);
        self.need(bytes)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.buf[self.pos + i / 8] >> (i % 8) & 1 == 1);
        }
        // Padding bits must be zero so every payload has one encoding.
        if !n.is_multiple_of(8) && self.buf[self.pos + bytes - 1] >> (n % 8) != 0 {
            return Err(CheckpointError::Malformed("nonzero bit padding"));
        }
        self.pos += bytes;
        Ok(out)
    }
    fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CheckpointError>,
    ) -> Result<Option<T>, CheckpointError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
    fn cut(&mut self) -> Result<Cut, CheckpointError> {
        Ok(Cut { w: self.f64s()?, u: self.f64s()?, d_const: self.f64()? })
    }
}

// ---------------------------------------------------------------------------
// State <-> bytes
// ---------------------------------------------------------------------------

/// Serialize a state to the full file image (header + payload).
pub fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(state.problem_fp);
    e.u64(state.options_fp);
    e.u64(state.nf as u64);
    e.u64(state.nq as u64);
    e.u64(state.na as u64);
    e.u64(state.it as u64);
    e.bool(state.done);
    for row in &state.z {
        e.bits(row);
    }
    for qcuts in &state.cuts {
        e.u64(qcuts.len() as u64);
        for c in qcuts {
            e.cut(c);
        }
    }
    for l in &state.cached_loss {
        e.opt(l, |e, v| e.f64s(v));
    }
    e.f64s(&state.cached_value);
    for c in &state.last_z_col {
        e.opt(c, |e, v| e.bits(v));
    }
    e.bits(&state.perfect);
    e.u64(state.stamps.len() as u64);
    for &s in &state.stamps {
        e.u64(s);
    }
    for chain in &state.chains {
        e.u64(chain.len() as u64);
        for col in chain {
            e.bits(col);
        }
    }
    e.opt(&state.best, |e, b| {
        e.f64(b.penalty);
        for row in &b.critical {
            e.bits(row);
        }
        for row in &b.loss {
            e.f64s(row);
        }
        e.f64s(&b.alpha);
    });
    e.u64(state.iterations.len() as u64);
    for s in &state.iterations {
        e.u64(s.iteration as u64);
        e.f64(s.penalty);
        e.u64(s.solved as u64);
        e.u64(s.pruned as u64);
        e.u64(s.lp_iterations as u64);
        e.u64(s.warm_hits as u64);
        e.u64(s.dual_restarts as u64);
    }
    e.opt(&state.last_bound, |e, &b| e.f64(b));
    e.f64s(&state.betas);

    let payload = e.buf;
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse and validate a full file image.
pub fn decode(data: &[u8]) -> Result<CheckpointState, CheckpointError> {
    if data.len() < 8 {
        return Err(CheckpointError::Truncated { needed: 8, have: data.len() });
    }
    if &data[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if data.len() < 28 {
        return Err(CheckpointError::Truncated { needed: 28, have: data.len() });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let plen = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes")) as usize;
    let check = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    let have = data.len() - 28;
    if have < plen {
        return Err(CheckpointError::Truncated { needed: 28 + plen, have: data.len() });
    }
    if have > plen {
        return Err(CheckpointError::Malformed("trailing bytes after payload"));
    }
    let payload = &data[28..];
    if fnv64(payload) != check {
        return Err(CheckpointError::ChecksumMismatch);
    }

    let mut d = Dec { buf: payload, pos: 0 };
    let problem_fp = d.u64()?;
    let options_fp = d.u64()?;
    let nf = d.len(0)?;
    let nq = d.len(0)?;
    let na = d.len(0)?;
    // Shape sanity: every per-flow/per-scenario structure below is bounded
    // by these, and each row costs at least one length byte, so cap them
    // against the payload size before trusting them in loops.
    if nf > payload.len() || nq > payload.len() || na > payload.len() {
        return Err(CheckpointError::Malformed("dimensions exceed payload"));
    }
    let it = d.u64()? as usize;
    let done = d.bool()?;
    let expect_bits = |v: Vec<bool>, n: usize, what: &'static str| {
        if v.len() == n {
            Ok(v)
        } else {
            Err(CheckpointError::Malformed(what))
        }
    };
    let expect_f64s = |v: Vec<f64>, n: usize, what: &'static str| {
        if v.len() == n {
            Ok(v)
        } else {
            Err(CheckpointError::Malformed(what))
        }
    };
    let mut z = Vec::with_capacity(nf);
    for _ in 0..nf {
        z.push(expect_bits(d.bits()?, nq, "z row length")?);
    }
    let mut cuts = Vec::with_capacity(nq);
    for _ in 0..nq {
        let ncuts = d.len(1)?;
        let mut qcuts = Vec::with_capacity(ncuts);
        for _ in 0..ncuts {
            let c = d.cut()?;
            if c.w.len() != nf || c.u.len() != na {
                return Err(CheckpointError::Malformed("cut dimensions"));
            }
            qcuts.push(c);
        }
        cuts.push(qcuts);
    }
    let mut cached_loss = Vec::with_capacity(nq);
    for _ in 0..nq {
        let l = d.opt(|d| d.f64s())?;
        cached_loss.push(match l {
            Some(v) => Some(expect_f64s(v, nf, "cached_loss row length")?),
            None => None,
        });
    }
    let cached_value = expect_f64s(d.f64s()?, nq, "cached_value length")?;
    let mut last_z_col = Vec::with_capacity(nq);
    for _ in 0..nq {
        let c = d.opt(|d| d.bits())?;
        last_z_col.push(match c {
            Some(v) => Some(expect_bits(v, nf, "last_z_col length")?),
            None => None,
        });
    }
    let perfect = expect_bits(d.bits()?, nq, "perfect length")?;
    let nstamps = d.len(8)?;
    if nstamps != nq {
        return Err(CheckpointError::Malformed("stamps length"));
    }
    let mut stamps = Vec::with_capacity(nq);
    for _ in 0..nq {
        stamps.push(d.u64()?);
    }
    let mut chains = Vec::with_capacity(nq);
    for _ in 0..nq {
        let n = d.len(1)?;
        let mut chain = Vec::with_capacity(n);
        for _ in 0..n {
            chain.push(expect_bits(d.bits()?, nf, "chain column length")?);
        }
        chains.push(chain);
    }
    let best = d.opt(|d| {
        let penalty = d.f64()?;
        let mut critical = Vec::with_capacity(nf);
        for _ in 0..nf {
            critical.push(expect_bits(d.bits()?, nq, "best.critical row length")?);
        }
        let mut loss = Vec::with_capacity(nf);
        for _ in 0..nf {
            loss.push(expect_f64s(d.f64s()?, nq, "best.loss row length")?);
        }
        let alpha = d.f64s()?;
        Ok(BestIncumbent { penalty, critical, loss, alpha })
    })?;
    let niters = d.len(1)?;
    let mut iterations = Vec::with_capacity(niters);
    for _ in 0..niters {
        iterations.push(IterationStat {
            iteration: d.u64()? as usize,
            penalty: d.f64()?,
            solved: d.u64()? as usize,
            pruned: d.u64()? as usize,
            lp_iterations: d.u64()? as usize,
            warm_hits: d.u64()? as usize,
            dual_restarts: d.u64()? as usize,
        });
    }
    let last_bound = d.opt(|d| d.f64())?;
    let betas = d.f64s()?;
    if d.pos != payload.len() {
        return Err(CheckpointError::Malformed("unconsumed payload bytes"));
    }
    Ok(CheckpointState {
        problem_fp,
        options_fp,
        nf,
        nq,
        na,
        it,
        done,
        z,
        cuts,
        cached_loss,
        cached_value,
        last_z_col,
        perfect,
        stamps,
        chains,
        best,
        iterations,
        last_bound,
        betas,
    })
}

// ---------------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{}: {e}", path.display()))
}

/// Atomically write a checkpoint: encode, write to `<path>.tmp`, fsync,
/// rename over `path`. Returns the file size in bytes.
pub fn write_checkpoint(path: &Path, state: &CheckpointState) -> Result<u64, CheckpointError> {
    let _sp = flexile_obs::span("flexile.checkpoint_write", "flexile")
        .field("iteration", state.it)
        .field("done", state.done as u64);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
    }
    let bytes = encode(state);
    let tmp = path.with_extension("ckpt.tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    flexile_obs::add("flexile.checkpoint_write", 1);
    flexile_obs::observe("flexile.checkpoint_bytes", bytes.len() as f64);
    Ok(bytes.len() as u64)
}

/// Read and validate a checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<CheckpointState, CheckpointError> {
    let _sp = flexile_obs::span("flexile.checkpoint_restore", "flexile");
    let data = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let state = decode(&data)?;
    flexile_obs::add("flexile.checkpoint_restore", 1);
    Ok(state)
}
