//! Stress and cross-validation tests for the LP/MIP solver: random models
//! checked against brute force, classic hard cases, and the lazy-row
//! driver under adversarial oracles.

use flexile_lp::{solve_mip, solve_with_rowgen, MipOptions, MipStatus, Model, RowGenOptions, RowSpec, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bounded LP feasibility/optimality check: every returned solution
/// must be feasible, and no corner of a coarse sample grid may beat it.
#[test]
fn random_lps_beat_sampled_points() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..40 {
        let n = rng.random_range(2..5);
        let mut m = Model::new(Sense::Max);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(&format!("x{i}"), 0.0, rng.random_range(1.0..4.0), rng.random_range(-1.0..3.0)))
            .collect();
        let nrows = rng.random_range(1..4);
        for _ in 0..nrows {
            let mut coeffs: Vec<(flexile_lp::VarId, f64)> = Vec::new();
            for &v in &vars {
                if rng.random_range(0.0..1.0) > 0.3 {
                    coeffs.push((v, rng.random_range(0.2..2.0)));
                }
            }
            if coeffs.is_empty() {
                continue;
            }
            m.add_row_le(&coeffs, rng.random_range(1.0..5.0));
        }
        let sol = m.solve().unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(m.max_violation(&sol.x) < 1e-6, "trial {trial} infeasible");
        // Random feasible samples must not beat the optimum.
        for _ in 0..200 {
            let x: Vec<f64> = (0..n).map(|j| rng.random_range(0.0..1.0) * m.bounds(vars[j]).1).collect();
            if m.max_violation(&x) < 1e-9 {
                let obj = m.eval_objective(&x);
                assert!(
                    obj <= sol.objective + 1e-6,
                    "trial {trial}: sampled {obj} beats optimum {}",
                    sol.objective
                );
            }
        }
    }
}

/// Random binary MIPs checked against exhaustive enumeration.
#[test]
fn random_mips_match_bruteforce() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..25 {
        let n = rng.random_range(2..7usize);
        let mut m = Model::new(Sense::Max);
        let costs: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..5.0)).collect();
        let vars: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_binary(&format!("b{i}"), c))
            .collect();
        let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..3.0)).collect();
        let cap = rng.random_range(1.0..6.0);
        let coeffs: Vec<_> = vars.iter().zip(w.iter()).map(|(&v, &wi)| (v, wi)).collect();
        m.add_row_le(&coeffs, cap);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal, "trial {trial}");
        // Brute force.
        let mut best = f64::NEG_INFINITY;
        for mask in 0..(1u32 << n) {
            let weight: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| w[i]).sum();
            if weight <= cap + 1e-12 {
                let val: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| costs[i]).sum();
                best = best.max(val);
            }
        }
        assert!(
            (r.objective - best).abs() < 1e-6,
            "trial {trial}: mip {} vs brute force {best}",
            r.objective
        );
    }
}

/// The classic Klee–Minty-flavored worst case still terminates quickly at
/// this size and returns the known optimum.
#[test]
fn klee_minty_cube() {
    let n = 8;
    let mut m = Model::new(Sense::Max);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(&format!("x{i}"), 0.0, f64::INFINITY, 2f64.powi((n - 1 - i) as i32)))
        .collect();
    for i in 0..n {
        let mut coeffs = Vec::new();
        for (j, &v) in vars.iter().enumerate().take(i) {
            coeffs.push((v, 2f64.powi((i - j) as i32 + 1)));
        }
        coeffs.push((vars[i], 1.0));
        m.add_row_le(&coeffs, 5f64.powi(i as i32 + 1));
    }
    let sol = m.solve().unwrap();
    assert!((sol.objective - 5f64.powi(n as i32)).abs() / 5f64.powi(n as i32) < 1e-9);
}

/// Degenerate transportation problem with many ties.
#[test]
fn degenerate_assignment() {
    let n = 6;
    let mut m = Model::new(Sense::Min);
    let mut vars = Vec::new();
    for i in 0..n {
        for j in 0..n {
            vars.push(m.add_var(&format!("x{i}{j}"), 0.0, 1.0, ((i + j) % 3) as f64));
        }
    }
    for i in 0..n {
        let coeffs: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
        m.add_row_eq(&coeffs, 1.0);
    }
    for j in 0..n {
        let coeffs: Vec<_> = (0..n).map(|i| (vars[i * n + j], 1.0)).collect();
        m.add_row_eq(&coeffs, 1.0);
    }
    let sol = m.solve().unwrap();
    // All-zero-cost assignment exists: pick j = (3 - i) mod 3 pattern.
    assert!(sol.objective < 1e-9, "objective {}", sol.objective);
}

/// Lazy rows against an oracle that reveals many constraints gradually.
#[test]
fn rowgen_converges_on_polytope_approximation() {
    // Approximate the disc x² + y² <= 1 by tangent cuts; maximize x + y.
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", -2.0, 2.0, 1.0);
    let y = m.add_var("y", -2.0, 2.0, 1.0);
    let res = solve_with_rowgen(
        &mut m,
        &RowGenOptions { max_rounds: 100, rows_per_round: 0, ..Default::default() },
        |sol| {
            let (vx, vy) = (sol.x[0], sol.x[1]);
            let norm = (vx * vx + vy * vy).sqrt();
            if norm > 1.0 + 1e-7 {
                // Tangent at the projection: (vx/n) x + (vy/n) y <= 1.
                vec![RowSpec::le(vec![(x, vx / norm), (y, vy / norm)], 1.0)]
            } else {
                Vec::new()
            }
        },
    )
    .unwrap();
    assert!(res.converged);
    let expect = 2f64.sqrt();
    assert!(
        (res.solution.objective - expect).abs() < 1e-4,
        "objective {} vs sqrt(2)",
        res.solution.objective
    );
}

/// Warm starts across objective changes give the same optimum.
#[test]
fn warm_start_objective_change() {
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    let y = m.add_var("y", 0.0, 10.0, 1.0);
    m.add_row_le(&[(x, 1.0), (y, 2.0)], 14.0);
    m.add_row_le(&[(x, 3.0), (y, 1.0)], 18.0);
    let s1 = m.solve().unwrap();
    m.set_obj(x, 5.0);
    let warm = m
        .solve_with(&flexile_lp::SimplexOptions::default(), Some(&s1.basis))
        .unwrap();
    let cold = m.solve().unwrap();
    assert!((warm.objective - cold.objective).abs() < 1e-8);
}

/// Infeasible MIP subtree handling: branching into emptiness terminates.
#[test]
fn mip_with_conflicting_parity() {
    // b1 + b2 + b3 = 2 and b1 = b2 = b3 (all equal) has no 0/1 solution.
    let mut m = Model::new(Sense::Max);
    let b: Vec<_> = (0..3).map(|i| m.add_binary(&format!("b{i}"), 1.0)).collect();
    m.add_row_eq(&[(b[0], 1.0), (b[1], 1.0), (b[2], 1.0)], 2.0);
    m.add_row_eq(&[(b[0], 1.0), (b[1], -1.0)], 0.0);
    m.add_row_eq(&[(b[1], 1.0), (b[2], -1.0)], 0.0);
    let r = solve_mip(&m, &MipOptions::default()).unwrap();
    assert_eq!(r.status, MipStatus::Infeasible);
}
