//! Differential testing: the sparse LU basis engine against the dense
//! explicit-inverse oracle on randomized bounded LPs.
//!
//! Every generated model is feasible by construction (the RHS is derived
//! from a random interior point) and bounded (every variable is boxed), so
//! both engines must return `Ok` and agree on the optimal value. Primal
//! iterates are validated through the model (feasibility within tolerance)
//! rather than componentwise, because degenerate LPs have multiple optimal
//! vertices and the two engines may legitimately pick different ones.

use flexile_lp::{Cmp, EngineKind, LpError, Model, Sense, SimplexOptions, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts(engine: EngineKind) -> SimplexOptions {
    SimplexOptions { engine, ..SimplexOptions::default() }
}

/// Random bounded-variable LP, feasible by construction. Returns the model
/// and its row ids (for RHS perturbation).
fn random_lp(seed: u64) -> (Model, Vec<flexile_lp::RowId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(3..14usize);
    let nrows = rng.random_range(2..12usize);
    let sense = if rng.random_range(0..2u32) == 0 { Sense::Min } else { Sense::Max };
    let mut m = Model::new(sense);
    let mut vars = Vec::with_capacity(n);
    let mut interior = Vec::with_capacity(n);
    for j in 0..n {
        let lb = if rng.random_range(0.0..1.0) < 0.3 { rng.random_range(-5.0..0.0) } else { 0.0 };
        let ub = lb + rng.random_range(1.0..10.0);
        let obj = rng.random_range(-5.0..5.0);
        vars.push(m.add_var(&format!("v{j}"), lb, ub, obj));
        // Strictly interior point the row RHS is anchored to.
        interior.push(lb + (ub - lb) * rng.random_range(0.2..0.8));
    }
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let mut coeffs = Vec::new();
        let mut lhs = 0.0;
        for (j, &v) in vars.iter().enumerate() {
            if rng.random_range(0.0..1.0) < 0.45 {
                // 0/1-heavy coefficients mirror the network LPs this solver
                // exists for — and exercise exact cancellation in the LU.
                let c = if rng.random_range(0.0..1.0) < 0.6 {
                    1.0
                } else {
                    rng.random_range(-2.0..2.0)
                };
                if c != 0.0 {
                    coeffs.push((v, c));
                    lhs += c * interior[j];
                }
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        let margin = rng.random_range(0.0..3.0);
        rows.push(match rng.random_range(0..3u32) {
            0 => m.add_row(&coeffs, Cmp::Le, lhs + margin),
            1 => m.add_row(&coeffs, Cmp::Ge, lhs - margin),
            _ => m.add_row(&coeffs, Cmp::Eq, lhs),
        });
    }
    (m, rows)
}

fn assert_engines_agree(m: &Model, seed: u64) -> (Solution, Solution) {
    let dense = m.solve_with(&opts(EngineKind::Dense), None);
    let lu = m.solve_with(&opts(EngineKind::SparseLu), None);
    let (dense, lu) = match (dense, lu) {
        (Ok(d), Ok(l)) => (d, l),
        (d, l) => panic!("seed {seed}: engines disagree on solvability: dense {d:?} lu {l:?}"),
    };
    let tol = 1e-9 * (1.0 + dense.objective.abs());
    assert!(
        (dense.objective - lu.objective).abs() <= tol,
        "seed {seed}: objective dense {} vs lu {}",
        dense.objective,
        lu.objective
    );
    for (label, sol) in [("dense", &dense), ("lu", &lu)] {
        assert!(
            m.max_violation(&sol.x) <= 1e-7,
            "seed {seed}: {label} solution infeasible by {}",
            m.max_violation(&sol.x)
        );
        let re = m.eval_objective(&sol.x);
        assert!(
            (re - sol.objective).abs() <= 1e-6 * (1.0 + re.abs()),
            "seed {seed}: {label} objective inconsistent with x"
        );
    }
    (dense, lu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Cold solves: both engines find the same optimal value, and each
    /// engine's primal iterate is feasible for the original model.
    #[test]
    fn engines_agree_on_random_lps(seed in 0u64..100_000) {
        let (m, _) = random_lp(seed);
        assert_engines_agree(&m, seed);
    }

    /// Dual warm restart: solve, perturb every RHS slightly (the
    /// cross-scenario warm-start pattern), re-solve from the previous basis
    /// with both engines. Optimal values must still agree.
    #[test]
    fn engines_agree_after_warm_restart_with_perturbed_rhs(seed in 0u64..100_000) {
        let (mut m, rows) = random_lp(seed);
        let (dense, lu) = assert_engines_agree(&m, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for &r in &rows {
            m.set_rhs(r, m.rhs_of(r) + rng.random_range(-1e-3..1e-3));
        }
        let wd = m.solve_with(&opts(EngineKind::Dense), Some(&dense.basis));
        let wl = m.solve_with(&opts(EngineKind::SparseLu), Some(&lu.basis));
        let (wd, wl) = match (wd, wl) {
            (Ok(d), Ok(l)) => (d, l),
            // A 1e-3 RHS nudge can push a tight model infeasible; that is a
            // property of the instance, not of either engine — but both
            // engines must agree that it happened.
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => return Ok(()),
            (d, l) => panic!("seed {seed}: warm restarts disagree: dense {d:?} lu {l:?}"),
        };
        let tol = 1e-9 * (1.0 + wd.objective.abs());
        prop_assert!(
            (wd.objective - wl.objective).abs() <= tol,
            "seed {seed}: warm objective dense {} vs lu {}",
            wd.objective,
            wl.objective
        );
        prop_assert!(m.max_violation(&wl.x) <= 1e-7);
    }
}

/// The tier-1 fixture LPs solved by both engines, compared componentwise —
/// these have unique optima, so `x` and the duals must match, not just the
/// objective.
#[test]
fn engines_agree_on_fixture_lps() {
    let mut fixtures: Vec<Model> = Vec::new();

    // max x + 2y  s.t.  x + y <= 4, y <= 3  (the crate doc example).
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
    m.add_row_le(&[(x, 1.0), (y, 1.0)], 4.0);
    m.add_row_le(&[(y, 1.0)], 3.0);
    fixtures.push(m);

    // Degenerate-ish transport LP with equality rows (phase-1 heavy).
    let mut m = Model::new(Sense::Min);
    let f: Vec<_> = (0..6)
        .map(|i| m.add_var(&format!("f{i}"), 0.0, 20.0, 1.0 + (i as f64) * 0.31))
        .collect();
    m.add_row_eq(&[(f[0], 1.0), (f[1], 1.0), (f[2], 1.0)], 10.0);
    m.add_row_eq(&[(f[3], 1.0), (f[4], 1.0), (f[5], 1.0)], 8.0);
    m.add_row_le(&[(f[0], 1.0), (f[3], 1.0)], 6.0);
    m.add_row_le(&[(f[1], 1.0), (f[4], 1.0)], 7.0);
    m.add_row_le(&[(f[2], 1.0), (f[5], 1.0)], 9.0);
    fixtures.push(m);

    // Mini min-MLU shape: equality demand rows + arc rows with a shared
    // dense `mlu` column.
    let mut m = Model::new(Sense::Min);
    let mlu = m.add_var("mlu", 0.0, f64::INFINITY, 1.0);
    let t: Vec<_> = (0..4).map(|i| m.add_var(&format!("t{i}"), 0.0, f64::INFINITY, 0.0)).collect();
    m.add_row_eq(&[(t[0], 1.0), (t[1], 1.0)], 3.0);
    m.add_row_eq(&[(t[2], 1.0), (t[3], 1.0)], 2.0);
    m.add_row_le(&[(t[0], 1.0), (t[2], 1.0), (mlu, -4.0)], 0.0);
    m.add_row_le(&[(t[1], 1.0), (t[3], 1.0), (mlu, -5.0)], 0.0);
    fixtures.push(m);

    for (k, m) in fixtures.iter().enumerate() {
        let d = m.solve_with(&opts(EngineKind::Dense), None).unwrap();
        let l = m.solve_with(&opts(EngineKind::SparseLu), None).unwrap();
        assert!(
            (d.objective - l.objective).abs() <= 1e-9,
            "fixture {k}: objective {} vs {}",
            d.objective,
            l.objective
        );
        for j in 0..m.num_vars() {
            assert!(
                (d.x[j] - l.x[j]).abs() <= 1e-9,
                "fixture {k} var {j}: {} vs {}",
                d.x[j],
                l.x[j]
            );
        }
        for i in 0..m.num_rows() {
            assert!(
                (d.duals[i] - l.duals[i]).abs() <= 1e-9,
                "fixture {k} dual {i}: {} vs {}",
                d.duals[i],
                l.duals[i]
            );
        }
    }
}
