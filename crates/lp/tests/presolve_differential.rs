//! Differential testing for the cold-start accelerators: presolve on vs
//! off, and devex vs Dantzig pricing, on randomized bounded LPs.
//!
//! Every generated model is feasible by construction (the RHS is derived
//! from a random interior point) and bounded (every variable is boxed), so
//! every configuration must return `Ok` and agree on the optimal value.
//! Primal iterates are validated through the model (feasibility within
//! tolerance) rather than componentwise, because degenerate LPs have
//! multiple optimal vertices and different pivot orders may legitimately
//! pick different ones. Duals are validated by KKT conditions against the
//! *full* model — the exactness contract of the postsolve — not by
//! comparison against the presolve-off dual vector, which need not be
//! unique either.

use flexile_lp::{Cmp, LpError, Model, Pricing, Sense, SimplexOptions, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bounded-variable LP, feasible by construction, biased toward the
/// structures presolve targets: fixed columns, singleton rows, and
/// all-positive `≤` capacity-style rows over boxed columns.
fn random_lp(seed: u64) -> (Model, Vec<flexile_lp::RowId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(3..14usize);
    let nrows = rng.random_range(2..12usize);
    let sense = if rng.random_range(0..2u32) == 0 { Sense::Min } else { Sense::Max };
    let mut m = Model::new(sense);
    let mut vars = Vec::with_capacity(n);
    let mut interior = Vec::with_capacity(n);
    for j in 0..n {
        let lb = if rng.random_range(0.0..1.0) < 0.3 { rng.random_range(-5.0..0.0) } else { 0.0 };
        // ~15% fixed columns: the branch-and-bound pattern presolve's
        // fixed-column elimination exists for.
        let ub = if rng.random_range(0.0..1.0) < 0.15 {
            lb
        } else {
            lb + rng.random_range(1.0..10.0)
        };
        let obj = rng.random_range(-5.0..5.0);
        vars.push(m.add_var(&format!("v{j}"), lb, ub, obj));
        interior.push(lb + (ub - lb) * rng.random_range(0.2..0.8));
    }
    let mut rows = Vec::new();
    for _ in 0..nrows {
        // ~25% singleton rows (they become bounds in presolve).
        if rng.random_range(0.0..1.0) < 0.25 {
            let j = rng.random_range(0..n);
            let c = if rng.random_range(0..2u32) == 0 { 1.0 } else { rng.random_range(0.5..2.0) };
            let lhs = c * interior[j];
            let margin = rng.random_range(0.1..3.0);
            rows.push(if rng.random_range(0..2u32) == 0 {
                m.add_row(&[(vars[j], c)], Cmp::Le, lhs + margin)
            } else {
                m.add_row(&[(vars[j], c)], Cmp::Ge, lhs - margin)
            });
            continue;
        }
        let mut coeffs = Vec::new();
        let mut lhs = 0.0;
        // ~40% all-positive rows: the capacity pattern bound tightening
        // keys on.
        let all_pos = rng.random_range(0.0..1.0) < 0.4;
        for (j, &v) in vars.iter().enumerate() {
            if rng.random_range(0.0..1.0) < 0.45 {
                let c = if all_pos || rng.random_range(0.0..1.0) < 0.6 {
                    1.0
                } else {
                    rng.random_range(-2.0..2.0)
                };
                if c != 0.0 {
                    coeffs.push((v, c));
                    lhs += c * interior[j];
                }
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        let margin = rng.random_range(0.0..3.0);
        rows.push(match rng.random_range(0..3u32) {
            0 => m.add_row(&coeffs, Cmp::Le, lhs + margin),
            1 => m.add_row(&coeffs, Cmp::Ge, lhs - margin),
            _ => m.add_row(&coeffs, Cmp::Eq, lhs),
        });
    }
    (m, rows)
}

/// Full-space KKT check of a solution: primal feasibility, dual sign
/// feasibility per row sense, and stationarity of every column.
fn assert_kkt(m: &Model, sol: &Solution, label: &str, seed: u64) {
    assert!(
        m.max_violation(&sol.x) <= 1e-6,
        "seed {seed}: {label} primal violation {}",
        m.max_violation(&sol.x)
    );
    let sign = match m.sense() {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    for i in 0..m.num_rows() {
        let y_min = sign * sol.duals[i];
        match m.row_sense(i) {
            Cmp::Le => assert!(y_min <= 1e-6, "seed {seed}: {label} row {i} dual sign {y_min}"),
            Cmp::Ge => assert!(y_min >= -1e-6, "seed {seed}: {label} row {i} dual sign {y_min}"),
            Cmp::Eq => {}
        }
    }
    for j in 0..m.num_vars() {
        let (lb, ub) = m.var_bounds(j);
        let mut d = sign * m.objective_coeff(j);
        for (i, a) in m.col_entries(j) {
            d -= a * sign * sol.duals[i];
        }
        let xj = sol.x[j];
        let at_lb = lb.is_finite() && (xj - lb).abs() <= 1e-6;
        let at_ub = ub.is_finite() && (xj - ub).abs() <= 1e-6;
        if at_lb && !at_ub {
            assert!(d >= -1e-5, "seed {seed}: {label} col {j} at lb needs d >= 0, got {d}");
        } else if at_ub && !at_lb {
            assert!(d <= 1e-5, "seed {seed}: {label} col {j} at ub needs d <= 0, got {d}");
        } else if !at_lb && !at_ub {
            assert!(d.abs() <= 1e-5, "seed {seed}: {label} interior col {j} needs d = 0, got {d}");
        }
    }
}

fn solve_pair(m: &Model, a: &SimplexOptions, b: &SimplexOptions, seed: u64) -> (Solution, Solution) {
    let sa = m.solve_with(a, None);
    let sb = m.solve_with(b, None);
    let (sa, sb) = match (sa, sb) {
        (Ok(x), Ok(y)) => (x, y),
        (x, y) => panic!("seed {seed}: configs disagree on solvability: {x:?} vs {y:?}"),
    };
    let tol = 1e-9 * (1.0 + sa.objective.abs());
    assert!(
        (sa.objective - sb.objective).abs() <= tol,
        "seed {seed}: objective {} vs {}",
        sa.objective,
        sb.objective
    );
    (sa, sb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Presolve on vs off: same optimal value, both primal feasible, and
    /// the postsolved duals satisfy full-space KKT exactly.
    #[test]
    fn presolve_matches_direct_solve(seed in 0u64..100_000) {
        let (m, _) = random_lp(seed);
        let on = SimplexOptions::default();
        let off = SimplexOptions { presolve: false, ..Default::default() };
        let (son, soff) = solve_pair(&m, &on, &off, seed);
        assert_kkt(&m, &son, "presolve-on", seed);
        assert_kkt(&m, &soff, "presolve-off", seed);
    }

    /// Devex vs Dantzig pricing: identical optimal values on the same
    /// corpus (pivot sequences differ, optima must not).
    #[test]
    fn devex_matches_dantzig(seed in 0u64..100_000) {
        let (m, _) = random_lp(seed);
        let devex = SimplexOptions { pricing: Pricing::Devex, ..Default::default() };
        let dantzig = SimplexOptions { pricing: Pricing::Dantzig, ..Default::default() };
        solve_pair(&m, &devex, &dantzig, seed);
    }

    /// The basis returned by a presolved solve must warm-start a
    /// presolve-off re-solve of the *full* model after an RHS nudge — the
    /// postsolve's warm-basis contract.
    #[test]
    fn presolved_basis_warm_starts_after_rhs_change(seed in 0u64..100_000) {
        let (mut m, rows) = random_lp(seed);
        let s1 = match m.solve_with(&SimplexOptions::default(), None) {
            Ok(s) => s,
            Err(LpError::Infeasible | LpError::Unbounded) => return Ok(()),
            Err(e) => panic!("seed {seed}: {e:?}"),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        for &r in &rows {
            m.set_rhs(r, m.rhs_of(r) + rng.random_range(-1e-4..1e-4));
        }
        let off = SimplexOptions { presolve: false, ..Default::default() };
        let warm = match m.solve_with(&off, Some(&s1.basis)) {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Ok(()), // nudge may cut off the box
            Err(e) => panic!("seed {seed}: warm restart failed: {e:?}"),
        };
        let cold = m.solve_with(&off, None).expect("cold reference");
        let tol = 1e-8 * (1.0 + cold.objective.abs());
        prop_assert!(
            (warm.objective - cold.objective).abs() <= tol,
            "seed {seed}: warm {} vs cold {}", warm.objective, cold.objective
        );
    }
}
