//! Telemetry integration for the LP solver.
//!
//! The load-bearing guarantee: instrumentation is purely observational, so
//! solver output with the sink *disabled* must be bit-identical to an
//! instrumented run, and the disabled path must not buffer anything.
//!
//! The sink is process-global; tests in this binary serialize on a mutex.

use flexile_lp::{Model, RobustOptions, Sense};
use std::sync::Mutex;

static SINK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    flexile_obs::disable();
    let _ = flexile_obs::drain();
    guard
}

/// A model that exercises phase 1, bounded variables and a few pivots:
/// min 2x + 3y + z s.t. x+y+z >= 10, x - y <= 2, y+z = 6, bounds.
fn interesting_model() -> Model {
    let mut m = Model::new(Sense::Min);
    let x = m.add_var("x", 0.0, 8.0, 2.0);
    let y = m.add_var("y", 0.0, 5.0, 3.0);
    let z = m.add_var("z", 0.0, 4.0, 1.0);
    m.add_row_ge(&[(x, 1.0), (y, 1.0), (z, 1.0)], 10.0);
    m.add_row_le(&[(x, 1.0), (y, -1.0)], 2.0);
    m.add_row_eq(&[(y, 1.0), (z, 1.0)], 6.0);
    m
}

fn solution_bits(s: &flexile_lp::Solution) -> (Vec<u64>, Vec<u64>, u64, usize) {
    (
        s.x.iter().map(|v| v.to_bits()).collect(),
        s.duals.iter().map(|v| v.to_bits()).collect(),
        s.objective.to_bits(),
        s.iterations,
    )
}

#[test]
fn enabled_sink_leaves_solver_output_bit_identical() {
    let _g = exclusive();
    let m = interesting_model();

    // Disabled run IS the uninstrumented behavior (no obs call does work).
    let plain = m.solve().expect("disabled-mode solve");
    assert!(flexile_obs::drain().is_empty(), "disabled mode must not buffer");

    flexile_obs::enable();
    let traced = m.solve().expect("instrumented solve");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(solution_bits(&plain), solution_bits(&traced));

    // The instrumented run actually produced telemetry.
    assert!(t.events_named("lp.solve").next().is_some(), "lp.solve span");
    assert!(t.counters.get("lp.pivots.phase2").copied().unwrap_or(0) > 0);
    assert!(t.counters.get("lp.refactorizations").copied().unwrap_or(0) > 0);
    let span = t.events_named("lp.solve").next().unwrap();
    assert_eq!(span.num_field("rows"), Some(3.0));
    assert_eq!(span.num_field("iterations"), Some(traced.iterations as f64));
    assert_eq!(t.hists["lp.solve_us"].count(), 1);
}

#[test]
fn warm_restart_hit_and_rung_events_are_recorded() {
    let _g = exclusive();
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
    m.add_row_le(&[(x, 1.0)], 4.0);
    let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
    m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);

    flexile_obs::enable();
    let s1 = m.solve().expect("cold solve");
    // Tighten hard enough that the recomputed basic values go infeasible
    // (row-3 forces x past its row-1 slack), exercising the dual restart.
    m.set_rhs(r2, 2.0);
    let _s2 = m
        .solve_with(&flexile_lp::SimplexOptions::default(), Some(&s1.basis))
        .expect("warm solve");
    let out = flexile_lp::solve_robust(&m, &RobustOptions::default(), None);
    out.result.expect("robust solve");
    flexile_obs::disable();
    let t = flexile_obs::drain();

    assert_eq!(t.counters.get("lp.warm.hit").copied().unwrap_or(0), 1);
    assert_eq!(t.counters.get("lp.dual_restarts").copied().unwrap_or(0), 1);
    let rungs: Vec<_> = t.events_named("lp.rung").collect();
    assert_eq!(rungs.len(), 1, "clean robust solve = one rung event");
    assert_eq!(
        rungs[0].field("rung"),
        Some(&flexile_obs::Value::Str("warm".to_string()))
    );
    assert_eq!(rungs[0].field("ok"), Some(&flexile_obs::Value::Bool(true)));
    assert!(rungs[0].num_field("iterations").unwrap_or(0.0) > 0.0);
}
