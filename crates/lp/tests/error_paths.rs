//! Terminal error paths: every failure mode must surface as the right
//! `LpError` variant through both `Model::solve` and `solve_robust`,
//! and must never panic.

use flexile_lp::fault::{self, FaultInjector, FaultKind};
use flexile_lp::{
    solve_robust, LpError, Model, RobustOptions, Sense, SimplexOptions, SolveBudget,
};
use std::time::{Duration, Instant};

/// max x + y s.t. x + y <= 10 — bounded, feasible.
fn healthy_model() -> Model {
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", 0.0, 8.0, 1.0);
    let y = m.add_var("y", 0.0, 8.0, 1.0);
    m.add_row_le(&[(x, 1.0), (y, 1.0)], 10.0);
    m
}

#[test]
fn infeasible_model_reports_infeasible() {
    let mut m = Model::new(Sense::Min);
    let x = m.add_var("x", 0.0, 5.0, 1.0);
    let y = m.add_var("y", 0.0, 5.0, 1.0);
    m.add_row_ge(&[(x, 1.0), (y, 1.0)], 20.0);
    assert!(matches!(m.solve(), Err(LpError::Infeasible)));
}

#[test]
fn unbounded_model_reports_unbounded() {
    let mut m = Model::new(Sense::Max);
    let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
    m.add_row_ge(&[(x, 1.0), (y, -1.0)], 0.0);
    assert!(matches!(m.solve(), Err(LpError::Unbounded)));
}

#[test]
fn tiny_iteration_cap_reports_iteration_limit() {
    // Enough structure that one pivot cannot finish.
    let mut m = Model::new(Sense::Max);
    let vars: Vec<_> =
        (0..20).map(|i| m.add_var(&format!("x{i}"), 0.0, 1.0, 1.0 + i as f64)).collect();
    for w in vars.windows(2) {
        m.add_row_le(&[(w[0], 1.0), (w[1], 1.0)], 1.0);
    }
    let opts = SimplexOptions { max_iters: 1, ..Default::default() };
    assert!(matches!(m.solve_with(&opts, None), Err(LpError::IterationLimit)));
}

#[test]
fn elapsed_deadline_reports_deadline_exceeded() {
    let m = healthy_model();
    let opts = SimplexOptions {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..Default::default()
    };
    assert!(matches!(m.solve_with(&opts, None), Err(LpError::DeadlineExceeded)));
}

#[test]
fn expired_budget_fails_robust_ladder_with_deadline() {
    let m = healthy_model();
    let opts = RobustOptions {
        budget: SolveBudget::with_timeout(Duration::ZERO),
        ..Default::default()
    };
    std::thread::sleep(Duration::from_millis(2));
    let out = solve_robust(&m, &opts, None);
    assert!(matches!(out.result, Err(LpError::DeadlineExceeded)));
    // Deadline exhaustion is terminal: no pointless escalation.
    assert_eq!(out.report.attempts.len(), 1);
}

#[test]
fn injected_numerical_surfaces_right_variant_through_solve() {
    let m = healthy_model();
    // Model::solve retries once internally; fault both attempts.
    let (res, used) = fault::with_injector(FaultInjector::always(FaultKind::Numerical), || {
        m.solve()
    });
    assert!(matches!(res, Err(LpError::Numerical(_))));
    assert_eq!(used.calls(), 2, "solve() is exactly two attempts");
}

#[test]
fn injected_singular_basis_never_panics() {
    let m = healthy_model();
    for idx in 0..4 {
        let inj = FaultInjector::new().at(idx, FaultKind::SingularBasis);
        let (out, _) = fault::with_injector(inj, || {
            solve_robust(&m, &RobustOptions::default(), None)
        });
        // A single fault anywhere in the ladder is always absorbed.
        let sol = out.result.expect("one fault must be recoverable");
        assert!((sol.objective - 10.0).abs() < 1e-6);
    }
}

#[test]
fn every_fault_kind_surfaces_as_its_error_through_solve() {
    let m = healthy_model();
    for kind in FaultKind::ALL {
        let (res, _) = fault::with_injector(FaultInjector::always(kind), || m.solve());
        let err = res.expect_err("always-faulting solve cannot succeed");
        assert_eq!(
            std::mem::discriminant(&err),
            std::mem::discriminant(&kind.to_error()),
            "fault {kind:?} surfaced as {err:?}"
        );
    }
}
