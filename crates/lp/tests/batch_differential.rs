//! Differential testing: `solve_rhs_batch` against sequential
//! `solve_rhs_restart` calls.
//!
//! The batch kernel's contract is *bit-identity*, not mere agreement: for
//! any member list, batch widths, and mixture of warm bases, the returned
//! solutions (primal values, duals, objective, iteration counts, basis
//! fingerprints, restart kinds — and errors) must be exactly what the
//! scalar loop produces, because the decomposition's cut generation and
//! checkpoint fingerprints hash these bits.

use flexile_lp::{Basis, Model, RhsBatchMember, Sense, SimplexOptions, SolveScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bounded-variable LP, feasible by construction (RHS anchored to a
/// random interior point), plus its row ids for RHS perturbation.
fn random_lp(seed: u64) -> (Model, Vec<flexile_lp::RowId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(3..14usize);
    let nrows = rng.random_range(2..12usize);
    let sense = if rng.random_range(0..2u32) == 0 { Sense::Min } else { Sense::Max };
    let mut m = Model::new(sense);
    let mut vars = Vec::with_capacity(n);
    let mut interior = Vec::with_capacity(n);
    for j in 0..n {
        let lb = if rng.random_range(0.0..1.0) < 0.3 { rng.random_range(-5.0..0.0) } else { 0.0 };
        let ub = lb + rng.random_range(1.0..10.0);
        let obj = rng.random_range(-5.0..5.0);
        vars.push(m.add_var(&format!("v{j}"), lb, ub, obj));
        interior.push(lb + (ub - lb) * rng.random_range(0.2..0.8));
    }
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let mut coeffs = Vec::new();
        let mut lhs = 0.0;
        for (j, &v) in vars.iter().enumerate() {
            if rng.random_range(0.0..1.0) < 0.45 {
                let c = if rng.random_range(0.0..1.0) < 0.6 {
                    1.0
                } else {
                    rng.random_range(-2.0..2.0)
                };
                if c != 0.0 {
                    coeffs.push((v, c));
                    lhs += c * interior[j];
                }
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        let margin = rng.random_range(0.0..3.0);
        rows.push(match rng.random_range(0..3u32) {
            0 => m.add_row_le(&coeffs, lhs + margin),
            1 => m.add_row_ge(&coeffs, lhs - margin),
            _ => m.add_row_eq(&coeffs, lhs),
        });
    }
    (m, rows)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Scalar oracle: install each member's RHS and restart sequentially.
fn scalar_sequence(
    model: &mut Model,
    opts: &SimplexOptions,
    rhss: &[Vec<f64>],
    warms: &[Basis],
) -> Vec<Result<(flexile_lp::Solution, flexile_lp::RestartKind), String>> {
    let entry: Vec<f64> = model.rhs_values().to_vec();
    let mut out = Vec::new();
    for (rhs, warm) in rhss.iter().zip(warms.iter()) {
        model.set_rhs_values(rhs);
        out.push(model.solve_rhs_restart(opts, warm).map_err(|e| format!("{e:?}")));
    }
    model.set_rhs_values(&entry);
    out
}

/// Batched run at a given width, chunking the member list.
fn batch_sequence(
    model: &mut Model,
    opts: &SimplexOptions,
    rhss: &[Vec<f64>],
    warms: &[Basis],
    width: usize,
) -> Vec<Result<(flexile_lp::Solution, flexile_lp::RestartKind), String>> {
    let mut scratch = SolveScratch::new();
    let mut out = Vec::new();
    for chunk in (0..rhss.len()).collect::<Vec<_>>().chunks(width) {
        let members: Vec<RhsBatchMember<'_>> = chunk
            .iter()
            .map(|&i| RhsBatchMember { rhs: &rhss[i], warm: &warms[i] })
            .collect();
        out.extend(
            model
                .solve_rhs_batch(opts, &members, &mut scratch)
                .into_iter()
                .map(|r| r.map_err(|e| format!("{e:?}"))),
        );
    }
    out
}

fn assert_bit_identical(
    seed: u64,
    width: usize,
    scalar: &[Result<(flexile_lp::Solution, flexile_lp::RestartKind), String>],
    batch: &[Result<(flexile_lp::Solution, flexile_lp::RestartKind), String>],
) {
    assert_eq!(scalar.len(), batch.len(), "seed {seed} width {width}: result count");
    for (i, (s, b)) in scalar.iter().zip(batch.iter()).enumerate() {
        match (s, b) {
            (Ok((ss, sk)), Ok((bs, bk))) => {
                assert_eq!(sk, bk, "seed {seed} width {width} member {i}: restart kind");
                assert_eq!(
                    bits(&ss.x),
                    bits(&bs.x),
                    "seed {seed} width {width} member {i}: primal bits"
                );
                assert_eq!(
                    bits(&ss.duals),
                    bits(&bs.duals),
                    "seed {seed} width {width} member {i}: dual bits"
                );
                assert_eq!(
                    ss.objective.to_bits(),
                    bs.objective.to_bits(),
                    "seed {seed} width {width} member {i}: objective bits"
                );
                assert_eq!(
                    ss.iterations, bs.iterations,
                    "seed {seed} width {width} member {i}: iterations"
                );
                assert_eq!(
                    ss.basis.fingerprint(),
                    bs.basis.fingerprint(),
                    "seed {seed} width {width} member {i}: basis fingerprint"
                );
            }
            (Err(se), Err(be)) => {
                assert_eq!(se, be, "seed {seed} width {width} member {i}: error kind");
            }
            (s, b) => panic!("seed {seed} width {width} member {i}: {s:?} vs {b:?}"),
        }
    }
}

/// Shared driver: build the member list for `seed` and compare widths
/// {1, 4, 16} against the scalar loop.
fn check_seed(seed: u64, perturb: f64) {
    let (mut m, rows) = random_lp(seed);
    let Ok(cold) = m.solve() else {
        return; // vanishingly rare numerically-nasty instance; skip
    };
    let nrows = m.num_rows();
    let base_rhs: Vec<f64> = m.rhs_values().to_vec();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);

    // A second, genuinely different warm basis (re-solve after a kick) so
    // the batch has to bucket members rather than assume one shared basis.
    let warm_b = {
        for &r in &rows {
            m.set_rhs(r, m.rhs_of(r) + rng.random_range(-0.5..0.5));
        }
        let wb = m.solve_with(&SimplexOptions::default(), Some(&cold.basis))
            .map(|s| s.basis)
            .unwrap_or_else(|_| cold.basis.clone());
        m.set_rhs_values(&base_rhs);
        wb
    };

    let members = 16usize;
    let mut rhss: Vec<Vec<f64>> = Vec::with_capacity(members);
    let mut warms: Vec<Basis> = Vec::with_capacity(members);
    for k in 0..members {
        let mut rhs = base_rhs.clone();
        for v in rhs.iter_mut().take(nrows) {
            *v += rng.random_range(-perturb..perturb);
        }
        rhss.push(rhs);
        warms.push(if k % 3 == 2 { warm_b.clone() } else { cold.basis.clone() });
    }

    let opts = SimplexOptions::default();
    let scalar = scalar_sequence(&mut m, &opts, &rhss, &warms);
    for width in [1usize, 4, 16] {
        let batch = batch_sequence(&mut m, &opts, &rhss, &warms, width);
        assert_bit_identical(seed, width, &scalar, &batch);
    }
    // The batch entry must leave the model's RHS untouched.
    assert_eq!(bits(m.rhs_values()), bits(&base_rhs), "seed {seed}: rhs restored");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Small perturbations: most members stay in the warm basis's
    /// optimality cone, so this exercises the joint fast path (and its
    /// bitwise extraction) heavily.
    #[test]
    fn batch_matches_scalar_on_small_perturbations(seed in 0u64..100_000) {
        check_seed(seed, 1e-3);
    }

    /// Large perturbations: members routinely go primal infeasible (dual
    /// restarts) or infeasible outright, exercising per-member divergence
    /// fallback, whole-bucket bailout, and error propagation.
    #[test]
    fn batch_matches_scalar_on_large_perturbations(seed in 0u64..100_000) {
        check_seed(seed, 2.0);
    }
}
