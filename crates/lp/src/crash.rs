//! CRASH(LTSF)-style bound-shift crash basis.
//!
//! The cold-start path of the simplex begins from the all-slack basis with
//! every structural column at the bound nearest zero. For Flexile's models
//! that point is badly infeasible: every demand row starts violated, each
//! violated row gets an artificial column, and phase 1 spends thousands of
//! pivots driving those artificials out. The fix used by production solvers
//! is a *crash basis*: pick a cheap starting point that is already close to
//! feasible so phase 1 has almost nothing to do.
//!
//! This module implements the safest possible crash: instead of guessing a
//! non-trivial basis matrix (which risks singularity and expensive
//! factorization), it keeps the all-slack basis `B = I` and shifts nonbasic
//! doubly-bounded structural columns to whichever of their two bounds
//! reduces slack-bound infeasibility — the "lowest total slack feasibility"
//! greedy of CRASH(LTSF). Each row whose slack lands back inside its bounds
//! is one artificial column (and at least one phase-1 pivot) that never gets
//! created. The procedure is deterministic: columns are scanned in index
//! order for a fixed number of passes, and a flip is accepted only if it
//! strictly reduces the (violated-row-count, violation-magnitude) pair
//! lexicographically.

use crate::model::Model;

/// Violation threshold matching the simplex feasibility tolerance.
const VIOL_TOL: f64 = 1e-7;
/// Greedy passes over the columns. Two passes catch the common
/// chained-flip patterns (e.g. a loss variable fixing a demand row and the
/// scenario's criticality variable then fixing the rows the first flip
/// disturbed); more passes show no further wins on the Flexile fixtures.
const MAX_PASSES: usize = 4;

/// Outcome of a crash pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashStats {
    /// Structural columns flipped to their other bound.
    pub flips: usize,
    /// Rows that were slack-infeasible before the crash and feasible after:
    /// each one is an artificial column phase 1 no longer has to price out.
    pub rows_fixed: usize,
}

/// Slack-bound violation of slack value `s` with bounds `[sl, su]`.
#[inline]
fn violation(s: f64, sl: f64, su: f64) -> f64 {
    (sl - s).max(s - su).max(0.0)
}

/// Greedy bound-shift crash. `lb`/`ub` are the working column bounds
/// (structurals then slacks, length `n + m`); `at_upper[j]` says whether
/// structural `j` currently sits at its upper bound and is updated in place
/// with the chosen sides. Only doubly-finite columns with a positive range
/// are ever flipped, so the resulting point is always within bounds.
pub(crate) fn bound_shift(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    at_upper: &mut [bool],
) -> CrashStats {
    let n = model.num_vars();
    let m = model.num_rows();
    debug_assert_eq!(at_upper.len(), n);

    // Nonbasic value of structural j under the current sides.
    let value = |j: usize, up: bool| -> f64 {
        match (lb[j].is_finite(), ub[j].is_finite()) {
            (true, true) => {
                if up {
                    ub[j]
                } else {
                    lb[j]
                }
            }
            (true, false) => lb[j],
            (false, true) => ub[j],
            (false, false) => 0.0,
        }
    };

    // Slack values s_i = b_i - Σ_j a_ij x_j for the current point.
    let mut s: Vec<f64> = model.rhs.clone();
    for j in 0..n {
        let v = value(j, at_upper[j]);
        if v != 0.0 {
            for (r, a) in model.cols.col(j).iter() {
                s[r] -= a * v;
            }
        }
    }

    let violated_rows = |s: &[f64]| -> usize {
        (0..m).filter(|&i| violation(s[i], lb[n + i], ub[n + i]) > VIOL_TOL).count()
    };
    let before = violated_rows(&s);
    if before == 0 {
        return CrashStats::default();
    }

    let mut flips = 0usize;
    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        for j in 0..n {
            let range = ub[j] - lb[j];
            if !range.is_finite() || range <= 0.0 {
                continue;
            }
            // Moving j to its other bound shifts slack i by -a_ij · dx.
            let dx = if at_upper[j] { -range } else { range };
            let mut count_delta = 0isize;
            let mut mag_delta = 0.0f64;
            for (i, a) in model.cols.col(j).iter() {
                let (sl, su) = (lb[n + i], ub[n + i]);
                let old = violation(s[i], sl, su);
                let new = violation(s[i] - a * dx, sl, su);
                mag_delta += new - old;
                count_delta += (new > VIOL_TOL) as isize - (old > VIOL_TOL) as isize;
            }
            if count_delta < 0 || (count_delta == 0 && mag_delta < -1e-9) {
                for (i, a) in model.cols.col(j).iter() {
                    s[i] -= a * dx;
                }
                at_upper[j] = !at_upper[j];
                flips += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let after = violated_rows(&s);
    CrashStats { flips, rows_fixed: before.saturating_sub(after) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn crash_fixes_demand_style_rows() {
        // min Σx s.t. x1 + x2 >= 8 with x in [0, 5]²: the all-lower start
        // violates the row; flipping either column to 5 still violates it,
        // flipping both fixes it.
        let mut m = Model::new(Sense::Min);
        let x1 = m.add_var("x1", 0.0, 5.0, 1.0);
        let x2 = m.add_var("x2", 0.0, 5.0, 1.0);
        m.add_row_ge(&[(x1, 1.0), (x2, 1.0)], 8.0);
        // Working bounds: structurals then the Ge slack (-inf, 0].
        let lb = vec![0.0, 0.0, f64::NEG_INFINITY];
        let ub = vec![5.0, 5.0, 0.0];
        let mut up = vec![false, false];
        let stats = bound_shift(&m, &lb, &ub, &mut up);
        assert_eq!(stats.rows_fixed, 1);
        assert!(stats.flips >= 1);
        // The chosen point must satisfy the row.
        let total = up.iter().zip([5.0, 5.0]).map(|(&u, b)| if u { b } else { 0.0 }).sum::<f64>();
        assert!(total >= 8.0 - 1e-9);
    }

    #[test]
    fn neutral_flips_are_rejected() {
        // A row that is already feasible: no flip should happen.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        m.add_row_le(&[(x, 1.0)], 10.0);
        let lb = vec![0.0, 0.0];
        let ub = vec![5.0, f64::INFINITY];
        let mut up = vec![false];
        let stats = bound_shift(&m, &lb, &ub, &mut up);
        assert_eq!(stats.flips, 0);
        assert!(!up[0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let mut m = Model::new(Sense::Min);
        let vars: Vec<_> =
            (0..6).map(|j| m.add_var(&format!("x{j}"), 0.0, 3.0, 1.0)).collect();
        m.add_row_ge(&[(vars[0], 1.0), (vars[1], 2.0), (vars[2], 1.0)], 7.0);
        m.add_row_ge(&[(vars[3], 1.0), (vars[4], 1.0)], 4.0);
        m.add_row_le(&[(vars[5], 1.0)], 2.0);
        let mut lb = vec![0.0; 6];
        let mut ub = vec![3.0; 6];
        lb.extend([f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0]);
        ub.extend([0.0, 0.0, f64::INFINITY]);
        let mut up1 = vec![false; 6];
        let mut up2 = vec![false; 6];
        let s1 = bound_shift(&m, &lb, &ub, &mut up1);
        let s2 = bound_shift(&m, &lb, &ub, &mut up2);
        assert_eq!(up1, up2);
        assert_eq!(s1.flips, s2.flips);
        assert_eq!(s1.rows_fixed, s2.rows_fixed);
        assert_eq!(s1.rows_fixed, 2);
    }
}
