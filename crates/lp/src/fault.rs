//! Deterministic solver fault injection.
//!
//! Robustness of everything downstream of the LP solver (the online
//! controller above all) hinges on behavior *when a solve fails* — a path
//! that healthy models essentially never exercise. This module makes those
//! failures reproducible: a [`FaultInjector`] installed on the current
//! thread forces a chosen [`FaultKind`] at chosen solve-attempt indices,
//! and every low-level simplex attempt polls it on entry.
//!
//! Granularity: one poll per *solve attempt* (each escalation rung of
//! [`crate::solve_robust`] and each internal retry of [`crate::Model::solve`]
//! is its own attempt). A fault scheduled at index `i` therefore kills
//! exactly one attempt; later rungs see later indices, which is what lets
//! chaos tests drive each rung of the degradation ladder in turn, or use
//! [`FaultInjector::always`] to push a failure all the way to terminal.
//!
//! The injector is thread-local: tests running in parallel cannot perturb
//! each other, and production code on other threads is never affected.

use crate::error::LpError;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// The kinds of solver fault that can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Numerical failure (as from feasibility drift in the eta file).
    Numerical,
    /// Iteration-limit exhaustion.
    IterationLimit,
    /// Wall-clock deadline exhaustion.
    DeadlineExceeded,
    /// A basis matrix that fails to factorize.
    SingularBasis,
}

impl FaultKind {
    /// The error an injected fault of this kind surfaces as.
    pub fn to_error(self) -> LpError {
        match self {
            FaultKind::Numerical => LpError::Numerical("injected fault: numerical".into()),
            FaultKind::IterationLimit => LpError::IterationLimit,
            FaultKind::DeadlineExceeded => LpError::DeadlineExceeded,
            FaultKind::SingularBasis => {
                LpError::Numerical("injected fault: singular basis".into())
            }
        }
    }

    /// All four kinds, for exhaustive chaos sweeps.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Numerical,
        FaultKind::IterationLimit,
        FaultKind::DeadlineExceeded,
        FaultKind::SingularBasis,
    ];
}

/// A deterministic schedule of faults, counted per solve attempt.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    schedule: BTreeMap<u64, FaultKind>,
    every: Option<FaultKind>,
    random: Option<RandomFaults>,
    calls: u64,
    injected: Vec<(u64, FaultKind)>,
}

/// Seeded Bernoulli fault stream (for soak-style chaos runs).
#[derive(Debug, Clone)]
struct RandomFaults {
    state: u64,
    prob: f64,
    kind: FaultKind,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// An injector with no faults scheduled (useful as a call counter).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Schedule `kind` at solve-attempt index `index` (0-based, counted
    /// from installation). Builder-style; may be chained.
    pub fn at(mut self, index: u64, kind: FaultKind) -> Self {
        self.schedule.insert(index, kind);
        self
    }

    /// Fault every attempt with `kind` — drives any escalation ladder to
    /// terminal failure.
    pub fn always(kind: FaultKind) -> Self {
        FaultInjector { every: Some(kind), ..Default::default() }
    }

    /// Seeded Bernoulli injection: each attempt faults with probability
    /// `prob`. Deterministic for a given seed.
    pub fn random(seed: u64, prob: f64, kind: FaultKind) -> Self {
        FaultInjector {
            random: Some(RandomFaults { state: seed, prob, kind }),
            ..Default::default()
        }
    }

    /// Solve attempts observed since installation.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Log of faults actually injected: `(attempt index, kind)`.
    pub fn injected(&self) -> &[(u64, FaultKind)] {
        &self.injected
    }

    fn decide(&mut self) -> Option<FaultKind> {
        let idx = self.calls;
        self.calls += 1;
        let kind = if let Some(k) = self.every {
            Some(k)
        } else if let Some(k) = self.schedule.get(&idx) {
            Some(*k)
        } else if let Some(r) = self.random.as_mut() {
            let u = (splitmix64(&mut r.state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (u < r.prob).then_some(r.kind)
        } else {
            None
        };
        if let Some(k) = kind {
            self.injected.push((idx, k));
        }
        kind
    }
}

thread_local! {
    static INJECTOR: RefCell<Option<FaultInjector>> = const { RefCell::new(None) };
    static ATTEMPTS: Cell<u64> = const { Cell::new(0) };
}

/// Install `inj` on the current thread, replacing (and returning) any
/// previously installed injector.
pub fn install(inj: FaultInjector) -> Option<FaultInjector> {
    INJECTOR.with(|i| i.borrow_mut().replace(inj))
}

/// Remove and return the current thread's injector (with its injection log).
pub fn clear() -> Option<FaultInjector> {
    INJECTOR.with(|i| i.borrow_mut().take())
}

/// Run `f` with `inj` installed; returns `f`'s output and the injector
/// (inspect [`FaultInjector::injected`] for what actually fired). The
/// previous injector, if any, is restored afterwards — even on panic.
pub fn with_injector<R>(inj: FaultInjector, f: impl FnOnce() -> R) -> (R, FaultInjector) {
    struct Restore(Option<FaultInjector>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INJECTOR.with(|i| *i.borrow_mut() = self.0.take());
        }
    }
    let restore = Restore(install(inj));
    let out = f();
    let used = clear().expect("injector vanished mid-scope");
    drop(restore);
    (out, used)
}

/// Total solve attempts observed on this thread (with or without an
/// installed injector). Pair with [`reset_attempts`] to measure a region.
pub fn attempts() -> u64 {
    ATTEMPTS.with(|a| a.get())
}

/// Reset the thread's attempt counter to zero.
pub fn reset_attempts() {
    ATTEMPTS.with(|a| a.set(0));
}

/// Solver-internal hook: called once at the start of every solve attempt.
pub(crate) fn poll() -> Option<FaultKind> {
    ATTEMPTS.with(|a| a.set(a.get() + 1));
    INJECTOR.with(|i| i.borrow_mut().as_mut().and_then(|inj| inj.decide()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_fault_fires_at_index() {
        let mut inj = FaultInjector::new().at(1, FaultKind::Numerical);
        assert_eq!(inj.decide(), None);
        assert_eq!(inj.decide(), Some(FaultKind::Numerical));
        assert_eq!(inj.decide(), None);
        assert_eq!(inj.calls(), 3);
        assert_eq!(inj.injected(), &[(1, FaultKind::Numerical)]);
    }

    #[test]
    fn always_faults_every_call() {
        let mut inj = FaultInjector::always(FaultKind::DeadlineExceeded);
        for _ in 0..5 {
            assert_eq!(inj.decide(), Some(FaultKind::DeadlineExceeded));
        }
        assert_eq!(inj.injected().len(), 5);
    }

    #[test]
    fn random_mode_is_seed_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::random(seed, 0.3, FaultKind::IterationLimit);
            (0..100).map(|_| inj.decide().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        let hits = run(9).iter().filter(|&&b| b).count();
        assert!((10..60).contains(&hits), "p=0.3 of 100 gave {hits}");
    }

    #[test]
    fn with_injector_restores_previous() {
        install(FaultInjector::new().at(0, FaultKind::Numerical));
        let ((), used) = with_injector(FaultInjector::always(FaultKind::SingularBasis), || {
            assert_eq!(poll(), Some(FaultKind::SingularBasis));
        });
        assert_eq!(used.calls(), 1);
        // The outer injector is back and still has its scheduled fault.
        assert_eq!(poll(), Some(FaultKind::Numerical));
        clear();
    }

    #[test]
    fn kinds_map_to_errors() {
        assert_eq!(FaultKind::IterationLimit.to_error(), LpError::IterationLimit);
        assert_eq!(FaultKind::DeadlineExceeded.to_error(), LpError::DeadlineExceeded);
        assert!(matches!(FaultKind::Numerical.to_error(), LpError::Numerical(_)));
        assert!(matches!(FaultKind::SingularBasis.to_error(), LpError::Numerical(_)));
    }
}
