//! # flexile-lp — linear and mixed-integer programming substrate
//!
//! A self-contained LP/MIP solver used by every optimization model in the
//! Flexile reproduction. The paper solves its models with Gurobi; no
//! full-featured pure-Rust LP solver is available offline, so this crate
//! implements one from scratch:
//!
//! * [`Model`] — a row/column model builder with per-variable bounds,
//!   `≤ / ≥ / =` rows and a linear objective.
//! * [`simplex`] — a bounded-variable two-phase revised simplex method over a
//!   pluggable [`basis`] engine: by default a sparse Markowitz LU
//!   factorization with product-form eta-file updates and periodic
//!   refactorization (the original dense explicit inverse remains selectable
//!   as a differential-testing oracle via [`EngineKind::Dense`]),
//!   devex candidate-list pricing with Dantzig and Bland fallbacks, a
//!   bound-flipping long-step dual ratio test, and warm starts from a
//!   previously optimal basis.
//! * [`presolve`] / [`crash`] — the cold-start accelerators: a reduce /
//!   postsolve pass (fixed- and free-column elimination, empty/singleton-row
//!   removal, bound tightening) with exact primal+dual recovery, and a
//!   CRASH(LTSF)-style bound-shift crash that starts phase 1 near-feasible.
//! * [`mip`] — a best-first branch-and-bound solver for models with binary /
//!   integer variables, with a fix-and-dive rounding heuristic for incumbents.
//! * [`rowgen`] — a lazy-constraint driver: repeatedly solve, ask an oracle
//!   for violated rows, add them, and warm-start the next solve. Used for the
//!   large scenario-bundled LPs (Teavar, CVaR variants) whose full row set
//!   would dwarf the active set.
//! * [`budget`] / [`robust`] / [`fault`] — the robustness layer: iteration +
//!   wall-clock [`SolveBudget`]s, the [`solve_robust`] escalation ladder
//!   (warm → cold refactor → Bland safe mode → bound perturbation) with an
//!   auditable [`SolveReport`], and a deterministic [`FaultInjector`] for
//!   chaos-testing every failure path.
//!
//! The solver is exact up to a configurable feasibility/optimality tolerance
//! (default `1e-7`). With the sparse LU basis engine the per-pivot cost
//! scales with the factor fill rather than O(m²), so the basis dimension can
//! reach the low thousands; very large scenario-bundled LPs still go through
//! [`rowgen`] to keep the active row set small.
//!
//! ## Quick example
//!
//! ```
//! use flexile_lp::{Model, Sense};
//!
//! // max x + 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0
//! let mut m = Model::new(Sense::Max);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
//! m.add_row_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! m.add_row_le(&[(y, 1.0)], 3.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 7.0).abs() < 1e-6); // x=1, y=3
//! ```

#![warn(missing_docs)]

pub mod basis;
pub mod budget;
pub mod crash;
pub mod error;
pub mod fault;
pub mod mip;
pub mod model;
pub mod presolve;
pub mod robust;
pub mod rowgen;
pub mod simplex;
pub mod sparse;

pub use basis::{BasisEngine, EngineKind};
pub use budget::SolveBudget;
pub use error::LpError;
pub use fault::{FaultInjector, FaultKind};
pub use mip::{solve_mip, MipOptions, MipResult, MipStatus};
pub use model::{Cmp, Model, RowId, Sense, VarId};
pub use robust::{solve_robust, RobustOptions, RobustOutcome, Rung, RungAttempt, SolveReport};
pub use rowgen::{solve_with_rowgen, RowGenOptions, RowGenResult, RowSpec};
pub use simplex::{
    solve_rhs_batch, solve_rhs_restart, solve_rhs_restart_with, Basis, Pricing, RestartKind,
    RhsBatchMember, SimplexOptions, Solution, SolveScratch, SolveStatus,
};
pub use sparse::RhsBlock;

/// Default feasibility / optimality tolerance used across the workspace.
pub const TOL: f64 = 1e-7;

/// Default integrality tolerance for the MIP solver.
pub const INT_TOL: f64 = 1e-6;
