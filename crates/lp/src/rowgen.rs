//! Lazy-constraint (row-generation) driver.
//!
//! The scenario-bundled LPs in this workspace (Teavar and the CVaR variants
//! of §5) have `O(|pairs| · |scenarios|)` rows, of which only a handful bind
//! at the optimum. Solving them with every row materialized would blow up
//! the dense basis inverse, so we solve a relaxation with a small active row
//! set, ask a caller-supplied *oracle* which constraints the tentative
//! solution violates, add those, and re-solve warm-started from the previous
//! basis — converging to the optimum of the full model because every added
//! row is a valid constraint of it.

use crate::basis::EngineKind;
use crate::budget::SolveBudget;
use crate::error::LpError;
use crate::model::{Cmp, Model, VarId};
use crate::simplex::{Basis, Solution};

/// A row produced by a violation oracle.
#[derive(Debug, Clone)]
pub struct RowSpec {
    /// Sparse coefficients.
    pub coeffs: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

impl RowSpec {
    /// Convenience `≥` row.
    pub fn ge(coeffs: Vec<(VarId, f64)>, rhs: f64) -> Self {
        RowSpec { coeffs, cmp: Cmp::Ge, rhs }
    }
    /// Convenience `≤` row.
    pub fn le(coeffs: Vec<(VarId, f64)>, rhs: f64) -> Self {
        RowSpec { coeffs, cmp: Cmp::Le, rhs }
    }
}

/// Options for the row-generation loop.
#[derive(Debug, Clone)]
pub struct RowGenOptions {
    /// Maximum solve/oracle rounds before giving up.
    pub max_rounds: usize,
    /// Cap on rows added per round (the oracle may return more; the most
    /// violated are kept). `0` means unlimited.
    pub rows_per_round: usize,
    /// Work budget. The iteration cap applies per solve; the deadline (an
    /// absolute instant) bounds the whole loop — a round that starts past
    /// it fails with [`LpError::DeadlineExceeded`].
    pub budget: SolveBudget,
    /// Basis engine used for every round's solve.
    pub engine: EngineKind,
}

impl Default for RowGenOptions {
    fn default() -> Self {
        RowGenOptions {
            max_rounds: 200,
            rows_per_round: 0,
            budget: SolveBudget::unlimited(),
            engine: EngineKind::default(),
        }
    }
}

/// Result of a row-generation run.
#[derive(Debug)]
pub struct RowGenResult {
    /// Final solution (optimal for the full model if `converged`).
    pub solution: Solution,
    /// Whether the oracle reported no violations at the end.
    pub converged: bool,
    /// Rounds performed.
    pub rounds: usize,
    /// Total rows added.
    pub rows_added: usize,
}

/// Iteratively solve `model`, adding rows returned by `oracle` until the
/// oracle is satisfied. The oracle receives the current solution and should
/// return *violated* rows (rows the solution does not satisfy); returning an
/// empty vector ends the loop.
///
/// The model is mutated: generated rows remain in it, which lets callers
/// re-solve or inspect duals afterwards.
pub fn solve_with_rowgen<F>(
    model: &mut Model,
    opts: &RowGenOptions,
    mut oracle: F,
) -> Result<RowGenResult, LpError>
where
    F: FnMut(&Solution) -> Vec<RowSpec>,
{
    let mut simplex_opts = opts.budget.simplex_options();
    simplex_opts.engine = opts.engine;
    let mut warm: Option<Basis> = None;
    let mut rows_added = 0usize;
    for round in 1..=opts.max_rounds {
        if opts.budget.expired() {
            return Err(LpError::DeadlineExceeded);
        }
        let sol = model.solve_with(&simplex_opts, warm.as_ref())?;
        let mut violated = oracle(&sol);
        if violated.is_empty() {
            return Ok(RowGenResult { solution: sol, converged: true, rounds: round, rows_added });
        }
        if opts.rows_per_round > 0 && violated.len() > opts.rows_per_round {
            // Keep the most violated rows.
            violated.sort_by(|a, b| {
                let va = violation(model, &sol, a);
                let vb = violation(model, &sol, b);
                vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal)
            });
            violated.truncate(opts.rows_per_round);
        }
        for r in &violated {
            model.add_row(&r.coeffs, r.cmp, r.rhs);
            rows_added += 1;
        }
        // A grown model invalidates the basis shape; the simplex warm-start
        // path requires identical dimensions, so only the statuses carry
        // over via a fresh cold start. (Kept simple: cold start each round.)
        warm = None;
    }
    // Out of rounds: return the last relaxation solution, flagged.
    let sol = model.solve_with(&simplex_opts, None)?;
    Ok(RowGenResult {
        solution: sol,
        converged: false,
        rounds: opts.max_rounds,
        rows_added,
    })
}

fn violation(_model: &Model, sol: &Solution, row: &RowSpec) -> f64 {
    let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * sol.x[v.index()]).sum();
    match row.cmp {
        Cmp::Le => lhs - row.rhs,
        Cmp::Ge => row.rhs - lhs,
        Cmp::Eq => (lhs - row.rhs).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn rowgen_reaches_full_model_optimum() {
        // max x + y with lazily revealed constraints x + y <= 4, x <= 2.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let res = solve_with_rowgen(&mut m, &RowGenOptions::default(), |sol| {
            let mut v = Vec::new();
            if sol.x[x.index()] + sol.x[y.index()] > 4.0 + 1e-9 {
                v.push(RowSpec::le(vec![(x, 1.0), (y, 1.0)], 4.0));
            }
            if sol.x[x.index()] > 2.0 + 1e-9 {
                v.push(RowSpec::le(vec![(x, 1.0)], 2.0));
            }
            v
        })
        .unwrap();
        assert!(res.converged);
        assert!((res.solution.objective - 4.0).abs() < 1e-6);
        assert!(res.solution.x[x.index()] <= 2.0 + 1e-7);
    }

    #[test]
    fn rowgen_no_violations_is_single_round() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 1.0, 5.0, 1.0);
        let _ = x;
        let res = solve_with_rowgen(&mut m, &RowGenOptions::default(), |_| Vec::new()).unwrap();
        assert!(res.converged);
        assert_eq!(res.rounds, 1);
        assert_eq!(res.rows_added, 0);
    }

    #[test]
    fn rows_per_round_cap() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let mut revealed = false;
        let opts = RowGenOptions { max_rounds: 10, rows_per_round: 1, ..Default::default() };
        let res = solve_with_rowgen(&mut m, &opts, |sol| {
            if sol.x[x.index()] > 3.0 + 1e-9 && !revealed {
                revealed = true;
                vec![
                    RowSpec::le(vec![(x, 1.0)], 5.0),
                    RowSpec::le(vec![(x, 1.0)], 3.0),
                ]
            } else if sol.x[x.index()] > 3.0 + 1e-9 {
                vec![RowSpec::le(vec![(x, 1.0)], 3.0)]
            } else {
                Vec::new()
            }
        })
        .unwrap();
        assert!(res.converged);
        assert!((res.solution.objective - 3.0).abs() < 1e-6);
    }
}
