//! Minimal sparse linear-algebra helpers for the simplex engine.
//!
//! The constraint matrix is stored column-major ([`ColMatrix`]) because the
//! revised simplex method consumes columns: pricing needs `y · a_j` per
//! column and FTRAN needs the entering column itself. Two basis
//! representations live here:
//!
//! * [`DenseMat`] — an explicit dense inverse (Gauss–Jordan refactorization,
//!   dense rank-1 eta updates). Simple, exact, O(m²) per pivot; kept as the
//!   differential-testing oracle behind `basis::DenseEngine`.
//! * [`LuFactors`] — a sparse LU factorization `P B Q = L U` with Markowitz
//!   ordering and threshold partial pivoting, plus permuted sparse
//!   triangular solves for FTRAN/BTRAN. This is the default engine: on the
//!   hypersparse bases that the Flexile LPs produce the factor nnz stays
//!   near the basis nnz, so refactorization and both solves run in roughly
//!   O(nnz) instead of O(m²)/O(m³).

/// Column supplier used by factorization: `col_of(j, out)` pushes the
/// `(row, value)` entries of column `j` into `out` (already cleared).
pub type ColSource<'a> = dyn FnMut(usize, &mut Vec<(u32, f64)>) + 'a;

/// A sparse column: parallel `(row, value)` arrays, rows strictly increasing.
#[derive(Debug, Clone, Default)]
pub struct SparseCol {
    /// Row indices with non-zero coefficients, strictly increasing.
    pub rows: Vec<u32>,
    /// Coefficients, parallel to `rows`.
    pub vals: Vec<f64>,
}

impl SparseCol {
    /// Build from an unsorted coefficient list; duplicate rows are summed and
    /// exact zeros dropped.
    pub fn from_entries(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|e| e.0);
        let mut rows = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for (r, v) in entries {
            if let (Some(&lr), Some(lv)) = (rows.last(), vals.last_mut()) {
                if lr == r {
                    *lv += v;
                    continue;
                }
            }
            rows.push(r);
            vals.push(v);
        }
        // Drop entries that cancelled to zero.
        let mut col = SparseCol { rows, vals };
        col.compact();
        col
    }

    fn compact(&mut self) {
        let mut w = 0;
        for i in 0..self.rows.len() {
            if self.vals[i] != 0.0 {
                self.rows[w] = self.rows[i];
                self.vals[w] = self.vals[i];
                w += 1;
            }
        }
        self.rows.truncate(w);
        self.vals.truncate(w);
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Iterate `(row, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rows.iter().zip(self.vals.iter()).map(|(&r, &v)| (r as usize, v))
    }

    /// Sparse dot product with a dense vector.
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (r, v) in self.iter() {
            acc += dense[r] * v;
        }
        acc
    }
}

/// Column-major sparse matrix: one [`SparseCol`] per structural variable.
#[derive(Debug, Clone, Default)]
pub struct ColMatrix {
    cols: Vec<SparseCol>,
    nrows: usize,
}

impl ColMatrix {
    /// Empty matrix with `nrows` rows and no columns.
    pub fn new(nrows: usize) -> Self {
        ColMatrix { cols: Vec::new(), nrows }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Grow the row dimension (existing columns keep their entries).
    pub fn grow_rows(&mut self, nrows: usize) {
        debug_assert!(nrows >= self.nrows);
        self.nrows = nrows;
    }

    /// Append a column, returning its index.
    pub fn push_col(&mut self, col: SparseCol) -> usize {
        debug_assert!(col.rows.iter().all(|&r| (r as usize) < self.nrows));
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Add `value` at `(row, col)`, extending the column entry list.
    pub fn add_entry(&mut self, row: usize, col: usize, value: f64) {
        if value == 0.0 {
            return;
        }
        debug_assert!(row < self.nrows);
        let c = &mut self.cols[col];
        // Fast path: append in row order (typical when building row by row).
        match c.rows.last() {
            Some(&last) if (last as usize) < row => {
                c.rows.push(row as u32);
                c.vals.push(value);
            }
            None => {
                c.rows.push(row as u32);
                c.vals.push(value);
            }
            _ => {
                // Out-of-order insert or duplicate: merge properly.
                match c.rows.binary_search(&(row as u32)) {
                    Ok(pos) => c.vals[pos] += value,
                    Err(pos) => {
                        c.rows.insert(pos, row as u32);
                        c.vals.insert(pos, value);
                    }
                }
            }
        }
    }

    /// Borrow a column.
    pub fn col(&self, j: usize) -> &SparseCol {
        &self.cols[j]
    }

    /// Total number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(|c| c.nnz()).sum()
    }
}

/// Dense square matrix stored row-major, used for the basis inverse.
#[derive(Debug, Clone)]
pub struct DenseMat {
    /// Row-major data, length `n * n`.
    pub data: Vec<f64>,
    /// Dimension.
    pub n: usize,
}

impl DenseMat {
    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        DenseMat { data, n }
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// `out = self * sparse_col` (FTRAN against a sparse column).
    pub fn mul_sparse(&self, col: &SparseCol, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let n = self.n;
        for (r, v) in col.iter() {
            // Column access of a row-major matrix: stride n.
            let mut idx = r;
            for o in out.iter_mut() {
                *o += v * self.data[idx];
                idx += n;
            }
        }
    }

    /// `out = vec^T * self` (BTRAN against a dense row vector).
    pub fn pre_mul_dense(&self, vec: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for (i, &c) in vec.iter().enumerate() {
            if c != 0.0 {
                let row = self.row(i);
                for (o, &r) in out.iter_mut().zip(row.iter()) {
                    *o += c * r;
                }
            }
        }
    }

    /// Gauss–Jordan inversion with partial pivoting, writing the inverse of
    /// the matrix whose columns are provided by `col_of`. Returns `false` if
    /// the matrix is numerically singular.
    pub fn invert_from_columns<F>(&mut self, n: usize, mut col_of: F) -> bool
    where
        F: FnMut(usize, &mut [f64]),
    {
        // Build the dense matrix B (column j = col_of(j)) in `work`, and run
        // Gauss–Jordan on [B | I], leaving the inverse in self.data.
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
        let mut b = vec![0.0; n * n]; // row-major copy of B
        let mut scratch = vec![0.0; n];
        for j in 0..n {
            scratch.iter_mut().for_each(|v| *v = 0.0);
            col_of(j, &mut scratch);
            for i in 0..n {
                b[i * n + j] = scratch[i];
            }
        }
        for k in 0..n {
            // Partial pivot.
            let mut piv = k;
            let mut best = b[k * n + k].abs();
            for i in (k + 1)..n {
                let a = b[i * n + k].abs();
                if a > best {
                    best = a;
                    piv = i;
                }
            }
            if best < 1e-11 {
                return false;
            }
            if piv != k {
                for j in 0..n {
                    b.swap(k * n + j, piv * n + j);
                    self.data.swap(k * n + j, piv * n + j);
                }
            }
            let d = b[k * n + k];
            let inv = 1.0 / d;
            for j in 0..n {
                b[k * n + j] *= inv;
                self.data[k * n + j] *= inv;
            }
            for i in 0..n {
                if i == k {
                    continue;
                }
                let f = b[i * n + k];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    b[i * n + j] -= f * b[k * n + j];
                    self.data[i * n + j] -= f * self.data[k * n + j];
                }
            }
        }
        true
    }

    /// Eta update after a basis change: the entering column's FTRAN image is
    /// `w` and the leaving basic position is `r`. Applies `E · self` where
    /// `E` is the elementary matrix for the pivot.
    pub fn eta_update(&mut self, w: &[f64], r: usize) {
        let n = self.n;
        let wr = w[r];
        debug_assert!(wr.abs() > 1e-12);
        let inv = 1.0 / wr;
        // Row r := row r / w_r
        for j in 0..n {
            self.data[r * n + j] *= inv;
        }
        // Row i := row i - w_i * row r (i != r)
        // Split borrows: copy row r (n is small enough that this is cheap).
        let row_r: Vec<f64> = self.row(r).to_vec();
        for i in 0..n {
            if i == r {
                continue;
            }
            let wi = w[i];
            if wi == 0.0 {
                continue;
            }
            let row_i = self.row_mut(i);
            for (a, &b) in row_i.iter_mut().zip(row_r.iter()) {
                *a -= wi * b;
            }
        }
    }
}

/// Threshold for Markowitz partial pivoting: an entry is an acceptable pivot
/// only if its magnitude is at least this fraction of the largest entry in
/// its column. Smaller values favour sparsity, larger values stability; 0.1
/// is the classical compromise.
const MARKOWITZ_TAU: f64 = 0.1;
/// Column-max magnitude below which the basis is declared singular (matches
/// the dense Gauss–Jordan pivot tolerance).
const LU_SINGULAR_TOL: f64 = 1e-11;
/// Active columns examined per pivot step, in ascending active-count order.
const MARKOWITZ_CANDIDATES: usize = 8;

/// Sparse LU factorization of a square basis matrix, `P B Q = L U`, built
/// with Markowitz ordering (minimize `(r_i − 1)(c_j − 1)` fill estimate)
/// under threshold partial pivoting.
///
/// `L` is unit lower triangular (strictly-lower part stored column-wise in
/// pivot order); `U` is upper triangular with its strictly-upper part stored
/// both row-wise (for transposed solves) and column-wise (for forward
/// solves). `rowperm[k]` / `colperm[k]` give the original row / column index
/// pivoted at step `k`.
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    m: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    u_diag: Vec<f64>,
    u_rowptr: Vec<usize>,
    u_cols: Vec<u32>,
    u_rvals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rows: Vec<u32>,
    u_cvals: Vec<f64>,
    rowperm: Vec<u32>,
    colperm: Vec<u32>,
}

impl LuFactors {
    /// Empty factorization (dimension 0).
    pub fn new() -> Self {
        LuFactors::default()
    }

    /// Factored dimension.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Structural non-zeros in `L + U` (including the unit/diagonal entries).
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_rvals.len() + 2 * self.m
    }

    /// Factorize the `m × m` matrix whose column `j` is supplied by
    /// `col_of(j, out)` as pushed `(row, value)` entries. Returns `false` if
    /// the matrix is numerically singular.
    pub fn factorize(
        &mut self,
        m: usize,
        col_of: &mut ColSource<'_>,
    ) -> bool {
        self.m = m;
        // Active submatrix: rows carry values; columns are (lazily stale)
        // lists of candidate rows. Counts are maintained exactly so the
        // Markowitz scan never needs to validate a whole column up front.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for j in 0..m {
            entries.clear();
            col_of(j, &mut entries);
            for &(r, v) in &entries {
                if v != 0.0 {
                    rows[r as usize].push((j as u32, v));
                    col_rows[j].push(r);
                }
            }
        }
        let mut row_count: Vec<u32> = rows.iter().map(|r| r.len() as u32).collect();
        let mut col_count: Vec<u32> = col_rows.iter().map(|c| c.len() as u32).collect();
        let mut row_done = vec![false; m];
        let mut col_done = vec![false; m];

        // Per-step factors in *original* indices; remapped to pivot order
        // once the permutations are complete.
        let mut l_steps: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        let mut u_steps: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
        self.u_diag.clear();
        self.rowperm.clear();
        self.colperm.clear();

        let mut scratch = vec![0.0f64; m];
        let mut mark = vec![false; m];
        let mut pattern: Vec<u32> = Vec::new();
        let mut cvals: Vec<(u32, f64)> = Vec::new();
        let mut pivot_entries: Vec<(u32, f64)> = Vec::new();
        let mut cand: Vec<u32> = Vec::new();

        for _step in 0..m {
            // The few active columns with the smallest counts, ascending
            // (ties keep the lower column index, so the order — and hence
            // the whole factorization — is deterministic).
            cand.clear();
            for j in 0..m {
                if col_done[j] {
                    continue;
                }
                let c = col_count[j];
                let pos = cand.iter().position(|&k| c < col_count[k as usize]);
                match pos {
                    Some(p) => {
                        cand.insert(p, j as u32);
                        if cand.len() > MARKOWITZ_CANDIDATES {
                            cand.pop();
                        }
                    }
                    None => {
                        if cand.len() < MARKOWITZ_CANDIDATES {
                            cand.push(j as u32);
                        }
                    }
                }
            }

            // Markowitz cost over the candidates, restricted to entries that
            // pass the stability threshold against their column max.
            let mut best: Option<(u32, u32, f64, u64)> = None; // (col, row, val, cost)
            for &jc in &cand {
                let j = jc as usize;
                // Validate + compact the stale row list, collecting values.
                // The list can hold a row twice (entry exactly cancelled,
                // then re-created by fill-in), so dedupe with the `mark`
                // scratch — a duplicate here would later eliminate that row
                // twice and silently corrupt the factors.
                cvals.clear();
                {
                    let cr = &mut col_rows[j];
                    let mut w = 0;
                    for idx in 0..cr.len() {
                        let r = cr[idx];
                        if row_done[r as usize] || mark[r as usize] {
                            continue;
                        }
                        if let Some(&(_, v)) =
                            rows[r as usize].iter().find(|&&(c, _)| c == jc)
                        {
                            mark[r as usize] = true;
                            cr[w] = r;
                            w += 1;
                            cvals.push((r, v));
                        }
                    }
                    cr.truncate(w);
                    for &(r, _) in &cvals {
                        mark[r as usize] = false;
                    }
                }
                col_count[j] = cvals.len() as u32;
                if cvals.is_empty() {
                    return false; // structurally empty active column
                }
                let colmax = cvals.iter().fold(0.0f64, |a, &(_, v)| a.max(v.abs()));
                if colmax < LU_SINGULAR_TOL {
                    return false;
                }
                let cc = (cvals.len() - 1) as u64;
                for &(r, v) in &cvals {
                    if v.abs() < MARKOWITZ_TAU * colmax {
                        continue;
                    }
                    let cost = (row_count[r as usize].saturating_sub(1)) as u64 * cc;
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bcost)) => {
                            cost < bcost || (cost == bcost && v.abs() > bv.abs())
                        }
                    };
                    if better {
                        best = Some((jc, r, v, cost));
                    }
                }
            }
            let (pc, pr, apq, _) = match best {
                Some(b) => b,
                None => return false,
            };
            let (pcu, pru) = (pc as usize, pr as usize);
            self.rowperm.push(pr);
            self.colperm.push(pc);
            self.u_diag.push(apq);
            row_done[pru] = true;
            col_done[pcu] = true;

            // Rows to eliminate: the pivot column's live entries (list was
            // just compacted while evaluating the candidate).
            pivot_entries.clear();
            for &r in &col_rows[pcu] {
                if r == pr {
                    continue;
                }
                if let Some(&(_, v)) = rows[r as usize].iter().find(|&&(c, _)| c == pc) {
                    pivot_entries.push((r, v));
                }
            }

            let prow = std::mem::take(&mut rows[pru]);
            let mut urow: Vec<(u32, f64)> = Vec::with_capacity(prow.len());
            for &(c, v) in &prow {
                if c != pc {
                    urow.push((c, v));
                    col_count[c as usize] -= 1; // pivot row leaves column c
                }
            }

            let inv_apq = 1.0 / apq;
            let mut lstep: Vec<(u32, f64)> = Vec::with_capacity(pivot_entries.len());
            for &(r, arv) in &pivot_entries {
                let ru = r as usize;
                let l = arv * inv_apq;
                lstep.push((r, l));
                // row_r ← row_r − l · pivot_row, dropping the pivot-column
                // entry exactly (no float cancellation residue).
                pattern.clear();
                for &(c, v) in &rows[ru] {
                    if c == pc {
                        continue;
                    }
                    let cu = c as usize;
                    scratch[cu] = v;
                    mark[cu] = true;
                    pattern.push(c);
                }
                for &(c, v) in &urow {
                    let cu = c as usize;
                    if !mark[cu] {
                        mark[cu] = true;
                        scratch[cu] = 0.0;
                        pattern.push(c);
                        col_rows[cu].push(r); // fill-in
                        col_count[cu] += 1;
                    }
                    scratch[cu] -= l * v;
                }
                let row = &mut rows[ru];
                row.clear();
                for &c in &pattern {
                    let cu = c as usize;
                    mark[cu] = false;
                    let v = scratch[cu];
                    scratch[cu] = 0.0;
                    if v != 0.0 {
                        row.push((c, v));
                    } else {
                        col_count[cu] -= 1; // exact cancellation
                    }
                }
                row_count[ru] = row.len() as u32;
            }
            l_steps.push(lstep);
            u_steps.push(urow);
        }

        // Remap original row/column ids to pivot-order positions.
        let mut row_pos = vec![0u32; m];
        let mut col_pos = vec![0u32; m];
        for k in 0..m {
            row_pos[self.rowperm[k] as usize] = k as u32;
            col_pos[self.colperm[k] as usize] = k as u32;
        }
        self.l_colptr.clear();
        self.l_rows.clear();
        self.l_vals.clear();
        self.l_colptr.push(0);
        for lstep in &l_steps {
            for &(r, l) in lstep {
                self.l_rows.push(row_pos[r as usize]);
                self.l_vals.push(l);
            }
            self.l_colptr.push(self.l_rows.len());
        }
        self.u_rowptr.clear();
        self.u_cols.clear();
        self.u_rvals.clear();
        self.u_rowptr.push(0);
        for ustep in &u_steps {
            for &(c, v) in ustep {
                self.u_cols.push(col_pos[c as usize]);
                self.u_rvals.push(v);
            }
            self.u_rowptr.push(self.u_cols.len());
        }
        // Column-wise copy of U via counting sort (rows stay ascending).
        let unnz = self.u_cols.len();
        let mut count = vec![0usize; m + 1];
        for &c in &self.u_cols {
            count[c as usize + 1] += 1;
        }
        for k in 0..m {
            count[k + 1] += count[k];
        }
        self.u_colptr.clone_from(&count);
        self.u_rows.clear();
        self.u_rows.resize(unnz, 0);
        self.u_cvals.clear();
        self.u_cvals.resize(unnz, 0.0);
        let mut next = count;
        for k in 0..m {
            for idx in self.u_rowptr[k]..self.u_rowptr[k + 1] {
                let c = self.u_cols[idx] as usize;
                let p = next[c];
                self.u_rows[p] = k as u32;
                self.u_cvals[p] = self.u_rvals[idx];
                next[c] += 1;
            }
        }
        true
    }

    /// In-place FTRAN: on entry `x` holds the right-hand side `a` (indexed
    /// by original row); on exit it holds `B⁻¹ a` (indexed by original
    /// column / basis position). `scratch` must be `m` zeros and is returned
    /// zeroed. Both triangular solves skip zero positions, so the cost
    /// scales with the solution's fill, not with `m`.
    pub fn ftran_in_place(&self, x: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            scratch[k] = x[self.rowperm[k] as usize];
        }
        // L solve, forward column saxpy.
        for k in 0..m {
            let v = scratch[k];
            if v != 0.0 {
                for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                    scratch[self.l_rows[idx] as usize] -= self.l_vals[idx] * v;
                }
            }
        }
        // U solve, backward column saxpy.
        for k in (0..m).rev() {
            let v = scratch[k];
            if v != 0.0 {
                let v = v / self.u_diag[k];
                scratch[k] = v;
                for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                    scratch[self.u_rows[idx] as usize] -= self.u_cvals[idx] * v;
                }
            }
        }
        for k in 0..m {
            x[self.colperm[k] as usize] = scratch[k];
            scratch[k] = 0.0;
        }
    }

    /// Block FTRAN over a whole [`RhsBlock`]: every lane gets exactly the
    /// scalar [`Self::ftran_in_place`] treatment, bit for bit, but the
    /// L/U factor entries and the row/column permutations are walked **once**
    /// for the block instead of once per lane. Lanes are contiguous in
    /// memory, so the per-factor-entry inner loop is a k-wide strided-free
    /// saxpy that autovectorizes.
    ///
    /// Bit-identity with the scalar kernel requires mirroring its zero
    /// guards exactly: the U-solve division is *guarded* on the pre-division
    /// value, and the saxpy that follows runs for precisely the lanes whose
    /// pre-division value was nonzero (a division can underflow to zero, and
    /// `x - (-0.0)` is not a no-op for `x = -0.0`).
    ///
    /// `scratch` is resized to `m·k` and left dirty.
    pub fn ftran_block(&self, x: &mut RhsBlock, scratch: &mut Vec<f64>) {
        let m = self.m;
        let k = x.width();
        debug_assert_eq!(x.rows(), m);
        scratch.clear();
        scratch.resize(m * k, 0.0);
        for p in 0..m {
            scratch[p * k..(p + 1) * k].copy_from_slice(x.row(self.rowperm[p] as usize));
        }
        // L solve, forward column saxpy. Every L entry of pivot column p
        // sits strictly below p in pivot order, so splitting at the pivot
        // row separates the source lanes from every destination row.
        for p in 0..m {
            let (head, rest) = scratch.split_at_mut((p + 1) * k);
            let piv = &head[p * k..];
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for idx in self.l_colptr[p]..self.l_colptr[p + 1] {
                let r = self.l_rows[idx] as usize;
                let a = self.l_vals[idx];
                let dst = &mut rest[(r - p - 1) * k..(r - p) * k];
                for (d, &v) in dst.iter_mut().zip(piv.iter()) {
                    if v != 0.0 {
                        *d -= a * v;
                    }
                }
            }
        }
        // U solve, backward column saxpy. U column entries sit strictly
        // above the pivot row.
        let mut pre = vec![0.0f64; k];
        for p in (0..m).rev() {
            let (rest, piv_part) = scratch.split_at_mut(p * k);
            let piv = &mut piv_part[..k];
            pre.copy_from_slice(piv);
            let d = self.u_diag[p];
            let mut any = false;
            for v in piv.iter_mut() {
                if *v != 0.0 {
                    *v /= d;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            for idx in self.u_colptr[p]..self.u_colptr[p + 1] {
                let r = self.u_rows[idx] as usize;
                let a = self.u_cvals[idx];
                let dst = &mut rest[r * k..(r + 1) * k];
                for lane in 0..k {
                    // Guard on the pre-division value, like the scalar path.
                    if pre[lane] != 0.0 {
                        dst[lane] -= a * piv[lane];
                    }
                }
            }
        }
        for p in 0..m {
            x.row_mut(self.colperm[p] as usize).copy_from_slice(&scratch[p * k..(p + 1) * k]);
        }
    }

    /// Block BTRAN: the lane-wise mirror of [`Self::btran_in_place`], same
    /// amortization as [`Self::ftran_block`]. The scalar BTRAN divides by
    /// the U diagonal *unconditionally* and its Lᵀ accumulation has no zero
    /// guard at all; both quirks are preserved here so each lane is bitwise
    /// identical to a scalar call.
    pub fn btran_block(&self, x: &mut RhsBlock, scratch: &mut Vec<f64>) {
        let m = self.m;
        let k = x.width();
        debug_assert_eq!(x.rows(), m);
        scratch.clear();
        scratch.resize(m * k, 0.0);
        for p in 0..m {
            scratch[p * k..(p + 1) * k].copy_from_slice(x.row(self.colperm[p] as usize));
        }
        // Uᵀ solve, forward: row entries of U sit strictly right of the
        // diagonal, i.e. strictly below p in pivot order.
        for p in 0..m {
            let (head, rest) = scratch.split_at_mut((p + 1) * k);
            let piv = &mut head[p * k..];
            let d = self.u_diag[p];
            for v in piv.iter_mut() {
                *v /= d;
            }
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for idx in self.u_rowptr[p]..self.u_rowptr[p + 1] {
                let c = self.u_cols[idx] as usize;
                let a = self.u_rvals[idx];
                let dst = &mut rest[(c - p - 1) * k..(c - p) * k];
                for (dv, &v) in dst.iter_mut().zip(piv.iter()) {
                    if v != 0.0 {
                        *dv -= a * v;
                    }
                }
            }
        }
        // Lᵀ solve, backward dot over column p of L — unguarded, exactly
        // like the scalar kernel.
        for p in (0..m).rev() {
            let (head, rest) = scratch.split_at_mut((p + 1) * k);
            let piv = &mut head[p * k..];
            for idx in self.l_colptr[p]..self.l_colptr[p + 1] {
                let r = self.l_rows[idx] as usize;
                let a = self.l_vals[idx];
                let src = &rest[(r - p - 1) * k..(r - p) * k];
                for (dv, &v) in piv.iter_mut().zip(src.iter()) {
                    *dv -= a * v;
                }
            }
        }
        for p in 0..m {
            x.row_mut(self.rowperm[p] as usize).copy_from_slice(&scratch[p * k..(p + 1) * k]);
        }
    }

    /// In-place BTRAN: on entry `x` holds `c` (indexed by basis position);
    /// on exit it holds `y` with `yᵀB = cᵀ` (indexed by original row).
    /// `scratch` must be `m` zeros and is returned zeroed.
    pub fn btran_in_place(&self, x: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            scratch[k] = x[self.colperm[k] as usize];
        }
        // Uᵀ solve, forward: once z_k is known, push it across row k of U.
        for k in 0..m {
            let v = scratch[k] / self.u_diag[k];
            scratch[k] = v;
            if v != 0.0 {
                for idx in self.u_rowptr[k]..self.u_rowptr[k + 1] {
                    scratch[self.u_cols[idx] as usize] -= self.u_rvals[idx] * v;
                }
            }
        }
        // Lᵀ solve, backward dot over column k of L.
        for k in (0..m).rev() {
            let mut acc = scratch[k];
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                acc -= self.l_vals[idx] * scratch[self.l_rows[idx] as usize];
            }
            scratch[k] = acc;
        }
        for k in 0..m {
            x[self.rowperm[k] as usize] = scratch[k];
            scratch[k] = 0.0;
        }
    }
}

/// A block of `k` right-hand sides over `m` rows, stored SoA with the lane
/// index contiguous (`data[r·k + lane]`): all `k` values of one row sit next
/// to each other, so the block triangular solves touch each factor entry
/// once and stream through the lanes with unit stride.
#[derive(Debug, Clone, Default)]
pub struct RhsBlock {
    m: usize,
    k: usize,
    data: Vec<f64>,
}

impl RhsBlock {
    /// A zeroed `m × k` block.
    pub fn new(m: usize, k: usize) -> Self {
        RhsBlock { m, k, data: vec![0.0; m * k] }
    }

    /// Reset to a zeroed `m × k` block, reusing the allocation.
    pub fn reset(&mut self, m: usize, k: usize) {
        self.m = m;
        self.k = k;
        self.data.clear();
        self.data.resize(m * k, 0.0);
    }

    /// Number of rows `m`.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of lanes (right-hand sides) `k`.
    pub fn width(&self) -> usize {
        self.k
    }

    /// All `k` lane values of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.k..(r + 1) * self.k]
    }

    /// Mutable lane values of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.k..(r + 1) * self.k]
    }

    /// Value at `(row, lane)`.
    pub fn get(&self, r: usize, lane: usize) -> f64 {
        self.data[r * self.k + lane]
    }

    /// Overwrite the value at `(row, lane)`.
    pub fn set(&mut self, r: usize, lane: usize, v: f64) {
        self.data[r * self.k + lane] = v;
    }

    /// Scatter a dense `m`-vector into lane `lane`.
    pub fn load_lane(&mut self, lane: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.m);
        for (r, &x) in v.iter().enumerate() {
            self.data[r * self.k + lane] = x;
        }
    }

    /// Gather lane `lane` into a dense `m`-vector.
    pub fn store_lane(&self, lane: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.m);
        for (r, x) in out.iter_mut().enumerate() {
            *x = self.data[r * self.k + lane];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_col_merges_duplicates_and_drops_zeros() {
        let c = SparseCol::from_entries(vec![(3, 1.0), (1, 2.0), (3, -1.0), (0, 5.0)]);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(0, 5.0), (1, 2.0)]);
    }

    #[test]
    fn sparse_dot() {
        let c = SparseCol::from_entries(vec![(0, 2.0), (2, 3.0)]);
        assert_eq!(c.dot(&[1.0, 10.0, 4.0]), 14.0);
    }

    #[test]
    fn dense_invert_2x2() {
        let mut m = DenseMat::identity(2);
        // B = [[2, 1], [1, 1]]; inverse = [[1, -1], [-1, 2]]
        let ok = m.invert_from_columns(2, |j, out| {
            if j == 0 {
                out[0] = 2.0;
                out[1] = 1.0;
            } else {
                out[0] = 1.0;
                out[1] = 1.0;
            }
        });
        assert!(ok);
        assert!((m.data[0] - 1.0).abs() < 1e-12);
        assert!((m.data[1] + 1.0).abs() < 1e-12);
        assert!((m.data[2] + 1.0).abs() < 1e-12);
        assert!((m.data[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_invert_singular_detected() {
        let mut m = DenseMat::identity(2);
        let ok = m.invert_from_columns(2, |_j, out| {
            out[0] = 1.0;
            out[1] = 1.0;
        });
        assert!(!ok);
    }

    #[test]
    fn eta_update_matches_reinversion() {
        // Start with B = I, replace column 1 with a = (1, 3)^T.
        let mut m = DenseMat::identity(2);
        let a = SparseCol::from_entries(vec![(0, 1.0), (1, 3.0)]);
        let mut w = vec![0.0; 2];
        m.mul_sparse(&a, &mut w);
        m.eta_update(&w, 1);
        // New basis = [e0, a]; inverse should satisfy inv * a = e1.
        let mut img = vec![0.0; 2];
        m.mul_sparse(&a, &mut img);
        assert!((img[0] - 0.0).abs() < 1e-12);
        assert!((img[1] - 1.0).abs() < 1e-12);
    }

    /// Deterministic pseudo-random sparse nonsingular matrix for LU tests:
    /// diagonally dominant with ~3 off-diagonal entries per column.
    fn test_matrix(m: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 // in [0, 1)
        };
        let mut cols = Vec::with_capacity(m);
        for j in 0..m {
            let mut col = vec![(j as u32, 4.0 + next())];
            for _ in 0..3 {
                let r = (next() * m as f64) as usize % m;
                if r != j && !col.iter().any(|&(rr, _)| rr as usize == r) {
                    col.push((r as u32, next() * 2.0 - 1.0));
                }
            }
            cols.push(col);
        }
        cols
    }

    #[test]
    fn lu_ftran_btran_match_dense_inverse() {
        let m = 40;
        let cols = test_matrix(m, 7);
        let mut lu = LuFactors::new();
        assert!(lu.factorize(m, &mut |j, out| out.extend_from_slice(&cols[j])));
        let mut inv = DenseMat::identity(m);
        assert!(inv.invert_from_columns(m, |j, out| {
            for &(r, v) in &cols[j] {
                out[r as usize] += v;
            }
        }));
        let mut scratch = vec![0.0; m];
        // FTRAN against a sparse RHS.
        let rhs = SparseCol::from_entries(vec![(3, 1.0), (17, -2.5), (31, 0.75)]);
        let mut dense_x = vec![0.0; m];
        inv.mul_sparse(&rhs, &mut dense_x);
        let mut lu_x = vec![0.0; m];
        for (r, v) in rhs.iter() {
            lu_x[r] = v;
        }
        lu.ftran_in_place(&mut lu_x, &mut scratch);
        for i in 0..m {
            assert!((lu_x[i] - dense_x[i]).abs() < 1e-9, "ftran row {i}");
        }
        // BTRAN against a dense cost vector.
        let c: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut dense_y = vec![0.0; m];
        inv.pre_mul_dense(&c, &mut dense_y);
        let mut lu_y = c.clone();
        lu.btran_in_place(&mut lu_y, &mut scratch);
        for i in 0..m {
            assert!((lu_y[i] - dense_y[i]).abs() < 1e-9, "btran row {i}");
        }
        assert!(scratch.iter().all(|&v| v == 0.0), "scratch handed back zeroed");
    }

    /// Block FTRAN/BTRAN must be **bitwise** identical to per-lane scalar
    /// solves, at every width, on RHS vectors that mix dense, sparse,
    /// exactly-zero and negative-zero rows.
    #[test]
    fn lu_block_kernels_match_scalar_bitwise() {
        for &m in &[1usize, 7, 40, 90] {
            let cols = test_matrix(m, 11 + m as u64);
            let mut lu = LuFactors::new();
            assert!(lu.factorize(m, &mut |j, out| out.extend_from_slice(&cols[j])));
            let mut scratch = vec![0.0; m];
            let mut block_scratch = Vec::new();
            for &k in &[1usize, 4, 16] {
                // Deterministic lane patterns: lane 0 dense, lane 1 sparse,
                // lane 2 all zeros, lane 3 holds -0.0 entries, rest mixed.
                let mut lanes: Vec<Vec<f64>> = Vec::new();
                for lane in 0..k {
                    let v: Vec<f64> = (0..m)
                        .map(|r| match lane % 4 {
                            0 => ((r * 13 + lane * 7) as f64 * 0.31).sin(),
                            1 if r % 5 == 0 => (r as f64 + 1.0) * 0.25 - 1.0,
                            1 => 0.0,
                            2 => 0.0,
                            _ if r % 3 == 0 => -0.0,
                            _ => (r as f64 * 0.11 + lane as f64).cos(),
                        })
                        .collect();
                    lanes.push(v);
                }
                // FTRAN.
                let mut blk = RhsBlock::new(m, k);
                for (lane, v) in lanes.iter().enumerate() {
                    blk.load_lane(lane, v);
                }
                lu.ftran_block(&mut blk, &mut block_scratch);
                for (lane, v) in lanes.iter().enumerate() {
                    let mut x = v.clone();
                    lu.ftran_in_place(&mut x, &mut scratch);
                    for r in 0..m {
                        assert_eq!(
                            blk.get(r, lane).to_bits(),
                            x[r].to_bits(),
                            "ftran m={m} k={k} lane={lane} row={r}"
                        );
                    }
                }
                // BTRAN.
                let mut blk = RhsBlock::new(m, k);
                for (lane, v) in lanes.iter().enumerate() {
                    blk.load_lane(lane, v);
                }
                lu.btran_block(&mut blk, &mut block_scratch);
                for (lane, v) in lanes.iter().enumerate() {
                    let mut x = v.clone();
                    lu.btran_in_place(&mut x, &mut scratch);
                    for r in 0..m {
                        assert_eq!(
                            blk.get(r, lane).to_bits(),
                            x[r].to_bits(),
                            "btran m={m} k={k} lane={lane} row={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lu_identity_has_no_fill() {
        let m = 16;
        let mut lu = LuFactors::new();
        assert!(lu.factorize(m, &mut |j, out| out.push((j as u32, 1.0))));
        assert_eq!(lu.nnz(), 2 * m, "identity factors carry only diagonals");
        let mut scratch = vec![0.0; m];
        let mut x = vec![0.0; m];
        x[5] = 3.0;
        lu.ftran_in_place(&mut x, &mut scratch);
        assert_eq!(x[5], 3.0);
        assert_eq!(x.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn lu_detects_singular_matrix() {
        // Duplicate columns: rank m−1.
        let m = 6;
        let mut lu = LuFactors::new();
        let ok = lu.factorize(m, &mut |j, out| {
            let jj = if j == m - 1 { 0 } else { j };
            out.push((jj as u32, 1.0));
            out.push((((jj + 1) % m) as u32, 1.0));
        });
        assert!(!ok, "rank-deficient matrix must be rejected");
        // An exactly-zero column as well.
        let mut lu2 = LuFactors::new();
        let ok2 = lu2.factorize(3, &mut |j, out| {
            if j != 1 {
                out.push((j as u32, 1.0));
            }
        });
        assert!(!ok2, "empty column must be rejected");
    }

    #[test]
    fn lu_survives_exact_cancellation_then_fill_in() {
        // 0/1-valued network-style bases produce *exact* cancellations during
        // elimination; a later fill-in at the same position used to leave the
        // row listed twice in the column's candidate list, which eliminated
        // that row twice and corrupted the factors. Sweep many small random
        // 0/1-heavy matrices against the dense inverse.
        let mut checked = 0usize;
        for seed in 0..400u64 {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            };
            let m = 4 + (next() * 14.0) as usize;
            let mut cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(m);
            for _ in 0..m {
                let mut col: Vec<(u32, f64)> = Vec::new();
                let nnz = 1 + (next() * 4.0) as usize;
                for _ in 0..nnz {
                    let r = (next() * m as f64) as usize % m;
                    if !col.iter().any(|&(rr, _)| rr as usize == r) {
                        // Mostly exact 1.0s so eliminations cancel exactly.
                        let v = if next() < 0.85 { 1.0 } else { next() * 2.0 - 1.0 };
                        col.push((r as u32, v));
                    }
                }
                col.sort_by_key(|&(r, _)| r);
                cols.push(col);
            }
            let mut inv = DenseMat::identity(m);
            let ok_dense = inv.invert_from_columns(m, |j, out| {
                for &(r, v) in &cols[j] {
                    out[r as usize] += v;
                }
            });
            let mut lu = LuFactors::new();
            let ok_lu = lu.factorize(m, &mut |j, out| out.extend_from_slice(&cols[j]));
            assert_eq!(ok_dense, ok_lu, "singularity disagreement at seed {seed}");
            if !ok_dense {
                continue;
            }
            checked += 1;
            let mut scratch = vec![0.0; m];
            let rhs: Vec<f64> = (0..m).map(|i| ((i + 1) as f64 * 0.61).sin()).collect();
            let mut dense_x = vec![0.0; m];
            for (i, out) in dense_x.iter_mut().enumerate() {
                *out = (0..m).map(|k| inv.data[i * m + k] * rhs[k]).sum();
            }
            let mut lu_x = rhs.clone();
            lu.ftran_in_place(&mut lu_x, &mut scratch);
            for i in 0..m {
                assert!(
                    (lu_x[i] - dense_x[i]).abs() < 1e-8,
                    "seed {seed} ftran row {i}: lu {} dense {}",
                    lu_x[i],
                    dense_x[i]
                );
            }
        }
        assert!(checked > 30, "sweep must exercise many nonsingular bases, got {checked}");
    }

    #[test]
    fn lu_permuted_diagonal() {
        // A permutation matrix with mixed signs exercises the row/col perms.
        let m = 9;
        let mut lu = LuFactors::new();
        assert!(lu.factorize(m, &mut |j, out| {
            let r = (j + 4) % m;
            let s = if j % 2 == 0 { 1.0 } else { -2.0 };
            out.push((r as u32, s));
        }));
        let mut scratch = vec![0.0; m];
        for j in 0..m {
            let mut x = vec![0.0; m];
            let r = (j + 4) % m;
            let s = if j % 2 == 0 { 1.0 } else { -2.0 };
            x[r] = s;
            lu.ftran_in_place(&mut x, &mut scratch);
            for (i, &v) in x.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12, "col {j} row {i}: {v}");
            }
        }
    }

    #[test]
    fn col_matrix_out_of_order_insert() {
        let mut m = ColMatrix::new(4);
        let j = m.push_col(SparseCol::default());
        m.add_entry(2, j, 1.0);
        m.add_entry(0, j, 3.0);
        m.add_entry(2, j, 1.5);
        let entries: Vec<_> = m.col(j).iter().collect();
        assert_eq!(entries, vec![(0, 3.0), (2, 2.5)]);
    }
}
