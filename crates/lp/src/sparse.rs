//! Minimal sparse linear-algebra helpers for the simplex engine.
//!
//! The constraint matrix is stored column-major ([`ColMatrix`]) because the
//! revised simplex method consumes columns: pricing needs `y · a_j` per
//! column and FTRAN needs the entering column itself. The basis inverse is a
//! dense row-major square matrix (see `simplex`); for the model sizes in this
//! workspace (rows in the hundreds to low thousands) dense is both simpler
//! and faster than a sparse LU.

/// A sparse column: parallel `(row, value)` arrays, rows strictly increasing.
#[derive(Debug, Clone, Default)]
pub struct SparseCol {
    /// Row indices with non-zero coefficients, strictly increasing.
    pub rows: Vec<u32>,
    /// Coefficients, parallel to `rows`.
    pub vals: Vec<f64>,
}

impl SparseCol {
    /// Build from an unsorted coefficient list; duplicate rows are summed and
    /// exact zeros dropped.
    pub fn from_entries(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|e| e.0);
        let mut rows = Vec::with_capacity(entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(entries.len());
        for (r, v) in entries {
            if let (Some(&lr), Some(lv)) = (rows.last(), vals.last_mut()) {
                if lr == r {
                    *lv += v;
                    continue;
                }
            }
            rows.push(r);
            vals.push(v);
        }
        // Drop entries that cancelled to zero.
        let mut col = SparseCol { rows, vals };
        col.compact();
        col
    }

    fn compact(&mut self) {
        let mut w = 0;
        for i in 0..self.rows.len() {
            if self.vals[i] != 0.0 {
                self.rows[w] = self.rows[i];
                self.vals[w] = self.vals[i];
                w += 1;
            }
        }
        self.rows.truncate(w);
        self.vals.truncate(w);
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Iterate `(row, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rows.iter().zip(self.vals.iter()).map(|(&r, &v)| (r as usize, v))
    }

    /// Sparse dot product with a dense vector.
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (r, v) in self.iter() {
            acc += dense[r] * v;
        }
        acc
    }
}

/// Column-major sparse matrix: one [`SparseCol`] per structural variable.
#[derive(Debug, Clone, Default)]
pub struct ColMatrix {
    cols: Vec<SparseCol>,
    nrows: usize,
}

impl ColMatrix {
    /// Empty matrix with `nrows` rows and no columns.
    pub fn new(nrows: usize) -> Self {
        ColMatrix { cols: Vec::new(), nrows }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Grow the row dimension (existing columns keep their entries).
    pub fn grow_rows(&mut self, nrows: usize) {
        debug_assert!(nrows >= self.nrows);
        self.nrows = nrows;
    }

    /// Append a column, returning its index.
    pub fn push_col(&mut self, col: SparseCol) -> usize {
        debug_assert!(col.rows.iter().all(|&r| (r as usize) < self.nrows));
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Add `value` at `(row, col)`, extending the column entry list.
    pub fn add_entry(&mut self, row: usize, col: usize, value: f64) {
        if value == 0.0 {
            return;
        }
        debug_assert!(row < self.nrows);
        let c = &mut self.cols[col];
        // Fast path: append in row order (typical when building row by row).
        match c.rows.last() {
            Some(&last) if (last as usize) < row => {
                c.rows.push(row as u32);
                c.vals.push(value);
            }
            None => {
                c.rows.push(row as u32);
                c.vals.push(value);
            }
            _ => {
                // Out-of-order insert or duplicate: merge properly.
                match c.rows.binary_search(&(row as u32)) {
                    Ok(pos) => c.vals[pos] += value,
                    Err(pos) => {
                        c.rows.insert(pos, row as u32);
                        c.vals.insert(pos, value);
                    }
                }
            }
        }
    }

    /// Borrow a column.
    pub fn col(&self, j: usize) -> &SparseCol {
        &self.cols[j]
    }

    /// Total number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(|c| c.nnz()).sum()
    }
}

/// Dense square matrix stored row-major, used for the basis inverse.
#[derive(Debug, Clone)]
pub struct DenseMat {
    /// Row-major data, length `n * n`.
    pub data: Vec<f64>,
    /// Dimension.
    pub n: usize,
}

impl DenseMat {
    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        DenseMat { data, n }
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// `out = self * sparse_col` (FTRAN against a sparse column).
    pub fn mul_sparse(&self, col: &SparseCol, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let n = self.n;
        for (r, v) in col.iter() {
            // Column access of a row-major matrix: stride n.
            let mut idx = r;
            for o in out.iter_mut() {
                *o += v * self.data[idx];
                idx += n;
            }
        }
    }

    /// `out = vec^T * self` (BTRAN against a dense row vector).
    pub fn pre_mul_dense(&self, vec: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for (i, &c) in vec.iter().enumerate() {
            if c != 0.0 {
                let row = self.row(i);
                for (o, &r) in out.iter_mut().zip(row.iter()) {
                    *o += c * r;
                }
            }
        }
    }

    /// Gauss–Jordan inversion with partial pivoting, writing the inverse of
    /// the matrix whose columns are provided by `col_of`. Returns `false` if
    /// the matrix is numerically singular.
    pub fn invert_from_columns<F>(&mut self, n: usize, col_of: F) -> bool
    where
        F: Fn(usize, &mut [f64]),
    {
        // Build the dense matrix B (column j = col_of(j)) in `work`, and run
        // Gauss–Jordan on [B | I], leaving the inverse in self.data.
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
        let mut b = vec![0.0; n * n]; // row-major copy of B
        let mut scratch = vec![0.0; n];
        for j in 0..n {
            scratch.iter_mut().for_each(|v| *v = 0.0);
            col_of(j, &mut scratch);
            for i in 0..n {
                b[i * n + j] = scratch[i];
            }
        }
        for k in 0..n {
            // Partial pivot.
            let mut piv = k;
            let mut best = b[k * n + k].abs();
            for i in (k + 1)..n {
                let a = b[i * n + k].abs();
                if a > best {
                    best = a;
                    piv = i;
                }
            }
            if best < 1e-11 {
                return false;
            }
            if piv != k {
                for j in 0..n {
                    b.swap(k * n + j, piv * n + j);
                    self.data.swap(k * n + j, piv * n + j);
                }
            }
            let d = b[k * n + k];
            let inv = 1.0 / d;
            for j in 0..n {
                b[k * n + j] *= inv;
                self.data[k * n + j] *= inv;
            }
            for i in 0..n {
                if i == k {
                    continue;
                }
                let f = b[i * n + k];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    b[i * n + j] -= f * b[k * n + j];
                    self.data[i * n + j] -= f * self.data[k * n + j];
                }
            }
        }
        true
    }

    /// Eta update after a basis change: the entering column's FTRAN image is
    /// `w` and the leaving basic position is `r`. Applies `E · self` where
    /// `E` is the elementary matrix for the pivot.
    pub fn eta_update(&mut self, w: &[f64], r: usize) {
        let n = self.n;
        let wr = w[r];
        debug_assert!(wr.abs() > 1e-12);
        let inv = 1.0 / wr;
        // Row r := row r / w_r
        for j in 0..n {
            self.data[r * n + j] *= inv;
        }
        // Row i := row i - w_i * row r (i != r)
        // Split borrows: copy row r (n is small enough that this is cheap).
        let row_r: Vec<f64> = self.row(r).to_vec();
        for i in 0..n {
            if i == r {
                continue;
            }
            let wi = w[i];
            if wi == 0.0 {
                continue;
            }
            let row_i = self.row_mut(i);
            for (a, &b) in row_i.iter_mut().zip(row_r.iter()) {
                *a -= wi * b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_col_merges_duplicates_and_drops_zeros() {
        let c = SparseCol::from_entries(vec![(3, 1.0), (1, 2.0), (3, -1.0), (0, 5.0)]);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(0, 5.0), (1, 2.0)]);
    }

    #[test]
    fn sparse_dot() {
        let c = SparseCol::from_entries(vec![(0, 2.0), (2, 3.0)]);
        assert_eq!(c.dot(&[1.0, 10.0, 4.0]), 14.0);
    }

    #[test]
    fn dense_invert_2x2() {
        let mut m = DenseMat::identity(2);
        // B = [[2, 1], [1, 1]]; inverse = [[1, -1], [-1, 2]]
        let ok = m.invert_from_columns(2, |j, out| {
            if j == 0 {
                out[0] = 2.0;
                out[1] = 1.0;
            } else {
                out[0] = 1.0;
                out[1] = 1.0;
            }
        });
        assert!(ok);
        assert!((m.data[0] - 1.0).abs() < 1e-12);
        assert!((m.data[1] + 1.0).abs() < 1e-12);
        assert!((m.data[2] + 1.0).abs() < 1e-12);
        assert!((m.data[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_invert_singular_detected() {
        let mut m = DenseMat::identity(2);
        let ok = m.invert_from_columns(2, |_j, out| {
            out[0] = 1.0;
            out[1] = 1.0;
        });
        assert!(!ok);
    }

    #[test]
    fn eta_update_matches_reinversion() {
        // Start with B = I, replace column 1 with a = (1, 3)^T.
        let mut m = DenseMat::identity(2);
        let a = SparseCol::from_entries(vec![(0, 1.0), (1, 3.0)]);
        let mut w = vec![0.0; 2];
        m.mul_sparse(&a, &mut w);
        m.eta_update(&w, 1);
        // New basis = [e0, a]; inverse should satisfy inv * a = e1.
        let mut img = vec![0.0; 2];
        m.mul_sparse(&a, &mut img);
        assert!((img[0] - 0.0).abs() < 1e-12);
        assert!((img[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn col_matrix_out_of_order_insert() {
        let mut m = ColMatrix::new(4);
        let j = m.push_col(SparseCol::default());
        m.add_entry(2, j, 1.0);
        m.add_entry(0, j, 3.0);
        m.add_entry(2, j, 1.5);
        let entries: Vec<_> = m.col(j).iter().collect();
        assert_eq!(entries, vec![(0, 3.0), (2, 2.5)]);
    }
}
