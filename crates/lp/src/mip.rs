//! Best-first branch-and-bound for mixed-integer programs.
//!
//! The Flexile formulation (I) and the decomposition master problem are MIPs
//! over binary `z_fq` variables. This module provides an exact solver for
//! small/medium instances: LP relaxation at every node, branching on the most
//! fractional integer variable, best-bound node selection, plus a
//! fix-and-resolve rounding heuristic to find incumbents early. Node and time
//! budgets make it safe to call on larger instances, in which case the result
//! reports the achieved bound and the incumbent (`MipStatus::Feasible`).

use crate::basis::EngineKind;
use crate::error::LpError;
use crate::model::{Model, Sense, VarId};
use crate::simplex::{SimplexOptions, Solution};
use crate::INT_TOL;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Options for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Maximum number of explored nodes.
    pub max_nodes: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Stop when `|incumbent - bound| <= abs_gap`.
    pub abs_gap: f64,
    /// Stop when the relative gap falls below this value.
    pub rel_gap: f64,
    /// Basis engine used for every node LP relaxation.
    pub engine: EngineKind,
    /// Run the LP presolve on every node relaxation. Pays off in
    /// branch-and-bound specifically: branching fixes binary columns, and
    /// the presolve's fixed-column elimination shrinks each node LP before
    /// the simplex sees it.
    pub presolve: bool,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            max_nodes: 20_000,
            time_limit: Duration::from_secs(60),
            abs_gap: 1e-6,
            rel_gap: 1e-6,
            engine: EngineKind::default(),
            presolve: true,
        }
    }
}

/// Terminal status of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Incumbent proven optimal within the gap tolerances.
    Optimal,
    /// An incumbent exists but optimality was not proven (budget ran out).
    Feasible,
    /// No integer-feasible point exists.
    Infeasible,
    /// Budget ran out before any incumbent was found.
    Unknown,
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MipResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Best integer-feasible point found (structural variables).
    pub x: Vec<f64>,
    /// Objective of the incumbent (in the model's sense).
    pub objective: f64,
    /// Best proven bound on the optimum (lower bound for Min, upper for Max).
    pub bound: f64,
    /// Nodes explored.
    pub nodes: usize,
}

#[derive(Clone)]
struct Node {
    /// Bound overrides for integer variables: `(var, lb, ub)`.
    fixes: Vec<(VarId, f64, f64)>,
}

struct HeapEntry {
    bound_min: f64,
    seq: usize,
    node: Node,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound_min == other.bound_min && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest minimization bound
        // first, so reverse. Tie-break on insertion order (DFS-ish).
        other
            .bound_min
            .partial_cmp(&self.bound_min)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Solve a MIP by branch and bound. The `model`'s integer variables are
/// those marked via [`Model::add_binary`]/[`Model::set_integer`].
pub fn solve_mip(model: &Model, opts: &MipOptions) -> Result<MipResult, LpError> {
    let ints = model.integer_vars();
    if ints.is_empty() {
        let sol = model.solve()?;
        return Ok(MipResult {
            status: MipStatus::Optimal,
            x: sol.x,
            objective: sol.objective,
            bound: sol.objective,
            nodes: 1,
        });
    }

    let start = Instant::now();
    let min_sign = match model.sense() {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let to_min = |obj: f64| min_sign * obj;

    let mut work = model.clone();
    let simplex_opts = SimplexOptions {
        engine: opts.engine,
        presolve: opts.presolve,
        ..SimplexOptions::default()
    };

    let mut incumbent: Option<(Vec<f64>, f64)> = None; // (x, obj_min_form)
    let mut heap = BinaryHeap::new();
    let mut seq = 0usize;
    let mut nodes = 0usize;
    let mut best_bound_min = f64::NEG_INFINITY;

    heap.push(HeapEntry {
        bound_min: f64::NEG_INFINITY,
        seq,
        node: Node { fixes: Vec::new() },
    });

    let solve_node = |work: &mut Model, fixes: &[(VarId, f64, f64)]| -> Result<Option<Solution>, LpError> {
        // Apply overrides, solve, then restore the original bounds.
        let saved: Vec<(VarId, f64, f64)> = fixes
            .iter()
            .map(|&(v, _, _)| {
                let (l, u) = work.bounds(v);
                (v, l, u)
            })
            .collect();
        for &(v, l, u) in fixes {
            work.set_bounds(v, l, u);
        }
        let res = work.solve_with(&simplex_opts, None);
        for &(v, l, u) in &saved {
            work.set_bounds(v, l, u);
        }
        match res {
            Ok(sol) => Ok(Some(sol)),
            Err(LpError::Infeasible) => Ok(None),
            Err(e) => Err(e),
        }
    };

    while let Some(entry) = heap.pop() {
        if nodes >= opts.max_nodes || start.elapsed() > opts.time_limit {
            // Put it back conceptually: the popped bound is the best bound.
            best_bound_min = best_bound_min.max(entry.bound_min);
            break;
        }
        // Prune against incumbent.
        if let Some((_, inc)) = &incumbent {
            if entry.bound_min >= *inc - opts.abs_gap {
                best_bound_min = best_bound_min.max(*inc);
                continue;
            }
        }
        nodes += 1;
        let sol = match solve_node(&mut work, &entry.node.fixes)? {
            Some(s) => s,
            None => continue,
        };
        let obj_min = to_min(sol.objective);
        if let Some((_, inc)) = &incumbent {
            if obj_min >= *inc - opts.abs_gap {
                continue; // dominated subtree
            }
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(VarId, f64)> = None;
        let mut best_frac = INT_TOL;
        for &v in &ints {
            let val = sol.x[v.index()];
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((v, val));
            }
        }

        match branch {
            None => {
                // Integer feasible: candidate incumbent.
                let better = incumbent.as_ref().is_none_or(|(_, inc)| obj_min < *inc);
                if better {
                    incumbent = Some((sol.x.clone(), obj_min));
                }
            }
            Some((v, val)) => {
                // Rounding heuristic at shallow depths: fix all ints to the
                // rounded relaxation values and test feasibility.
                if entry.node.fixes.len() <= 1 && incumbent.is_none() {
                    let fixes: Vec<(VarId, f64, f64)> = ints
                        .iter()
                        .map(|&iv| {
                            let (lo, hi) = work.bounds(iv);
                            let mut r = sol.x[iv.index()].round();
                            if r > hi {
                                r = hi.floor();
                            }
                            if r < lo {
                                r = lo.ceil();
                            }
                            (iv, r, r)
                        })
                        .collect();
                    if let Some(h) = solve_node(&mut work, &fixes)? {
                        let hobj = to_min(h.objective);
                        if incumbent.as_ref().is_none_or(|(_, inc)| hobj < *inc) {
                            incumbent = Some((h.x.clone(), hobj));
                        }
                    }
                }
                let floor = val.floor();
                for (lo, hi) in [(work.bounds(v).0, floor), (floor + 1.0, work.bounds(v).1)] {
                    if lo > hi {
                        continue;
                    }
                    let mut fixes = entry.node.fixes.clone();
                    // Tighten rather than duplicate an existing override.
                    if let Some(f) = fixes.iter_mut().find(|f| f.0 == v) {
                        f.1 = f.1.max(lo);
                        f.2 = f.2.min(hi);
                        if f.1 > f.2 {
                            continue;
                        }
                    } else {
                        fixes.push((v, lo, hi));
                    }
                    seq += 1;
                    heap.push(HeapEntry {
                        bound_min: obj_min,
                        seq,
                        node: Node { fixes },
                    });
                }
            }
        }
    }

    // The remaining best bound is the min over the untouched heap and the
    // incumbent.
    let frontier_bound = heap
        .iter()
        .map(|e| e.bound_min)
        .fold(f64::INFINITY, f64::min);
    let proven_min = if heap.is_empty() {
        incumbent.as_ref().map_or(best_bound_min, |(_, inc)| (*inc).min(best_bound_min.max(*inc)))
    } else {
        frontier_bound.min(incumbent.as_ref().map_or(f64::INFINITY, |(_, i)| *i))
    };

    match incumbent {
        Some((x, obj_min)) => {
            let gap = (obj_min - proven_min).abs();
            let status = if heap.is_empty()
                || gap <= opts.abs_gap
                || gap <= opts.rel_gap * obj_min.abs().max(1.0)
            {
                MipStatus::Optimal
            } else {
                MipStatus::Feasible
            };
            Ok(MipResult {
                status,
                objective: min_sign * obj_min,
                bound: min_sign * proven_min,
                x,
                nodes,
            })
        }
        None => {
            let status = if heap.is_empty() && nodes < opts.max_nodes {
                MipStatus::Infeasible
            } else {
                MipStatus::Unknown
            };
            Ok(MipResult {
                status,
                objective: f64::NAN,
                bound: min_sign * proven_min,
                x: Vec::new(),
                nodes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 10, binaries -> a=b=1 (16)
        let mut m = Model::new(Sense::Max);
        let a = m.add_binary("a", 10.0);
        let b = m.add_binary("b", 6.0);
        let c = m.add_binary("c", 4.0);
        m.add_row_le(&[(a, 5.0), (b, 4.0), (c, 3.0)], 10.0);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 16.0).abs() < 1e-6);
        assert!((r.x[a.index()] - 1.0).abs() < 1e-6);
        assert!((r.x[b.index()] - 1.0).abs() < 1e-6);
        assert!(r.x[c.index()].abs() < 1e-6);
    }

    #[test]
    fn pure_lp_shortcut() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        m.add_row_ge(&[(x, 1.0)], 2.5);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 2.5).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_not_valid() {
        // min x st 2x >= 3, x integer -> x = 2 (not 1.5 rounded to 1/2 naive)
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.set_integer(x);
        m.add_row_ge(&[(x, 2.0)], 3.0);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        // binaries a + b = 1 and a + b = 2 cannot both hold... use bounds:
        let mut m = Model::new(Sense::Min);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        m.add_row_eq(&[(a, 1.0), (b, 1.0)], 1.0);
        m.add_row_ge(&[(a, 1.0), (b, 1.0)], 2.0);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
    }

    #[test]
    fn covering_problem() {
        // min a + b + c st a+b>=1, b+c>=1, a+c>=1, binaries -> 2
        let mut m = Model::new(Sense::Min);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        let c = m.add_binary("c", 1.0);
        m.add_row_ge(&[(a, 1.0), (b, 1.0)], 1.0);
        m.add_row_ge(&[(b, 1.0), (c, 1.0)], 1.0);
        m.add_row_ge(&[(a, 1.0), (c, 1.0)], 1.0);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2i + x st i <= 2.5 (int), x <= 1.7, i + x <= 3.5
        let mut m = Model::new(Sense::Max);
        let i = m.add_var("i", 0.0, 2.5, 2.0);
        m.set_integer(i);
        let x = m.add_var("x", 0.0, 1.7, 1.0);
        m.add_row_le(&[(i, 1.0), (x, 1.0)], 3.5);
        let r = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        // i=2, x=1.5 -> 5.5
        assert!((r.objective - 5.5).abs() < 1e-6);
    }
}
