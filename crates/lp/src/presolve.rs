//! LP presolve / postsolve.
//!
//! Reduces a model before the simplex sees it and reconstructs the full
//! primal *and* dual solution afterwards, so callers (warm bases, Benders
//! cut extraction, `SolveReport`) cannot tell the reduction happened. The
//! reductions are chosen for the structure of Flexile's LPs — branch-and-
//! bound node relaxations fix many binary columns, capacity rows are
//! all-positive `≤` rows over bounded tunnel variables — and, crucially,
//! for *exact dual recovery*:
//!
//! * **Fixed columns** (`lb == ub`, including columns fixed by branching):
//!   substituted into the RHS and removed. Duals are unaffected.
//! * **Empty rows** (no live columns): checked for feasibility, removed
//!   with dual 0.
//! * **Singleton rows** (one live column): converted to a bound on that
//!   column and removed. If the implied bound ends up binding, the row's
//!   dual is repaired from the column's full-space reduced cost.
//! * **Empty columns** (no live rows): moved to their cost-optimal bound
//!   (detecting unboundedness), then removed as fixed.
//! * **Free singleton columns** in an equality row: the column absorbs the
//!   row; the row's dual is forced to `c_j / a_ij` and the other columns'
//!   costs are shifted so the reduced problem stays exact.
//! * **Bound tightening** on all-positive `≤` rows whose live columns all
//!   have finite lower bounds (the capacity-row pattern): implied upper
//!   bounds are recorded with their source row so a binding implied bound
//!   can hand its reduced cost back to that row's dual.
//!
//! Dual repair runs in two passes — tightening-derived bounds first, then
//! singleton-row bounds. A binding tightening-implied bound forces every
//! other column of its source row to *its* lower bound, so the repair only
//! pushes those columns' reduced costs upward (feasible at a lower bound in
//! minimization form) and any residual is absorbed by the second pass,
//! which touches one column per (removed singleton) row by construction.

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};
use crate::simplex::{Basis, SimplexOptions, Solution, SolveStatus, VarStatus};
use crate::sparse::{ColMatrix, SparseCol};

/// Tolerance for treating a bound pair as fixed.
const FIX_TOL: f64 = 1e-11;
/// Tolerance on presolve feasibility verdicts (matches the simplex).
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost magnitude worth repairing into a dual.
const REPAIR_TOL: f64 = 1e-9;
/// Minimum relative improvement for a capacity-row bound tightening; keeps
/// the fixpoint loop finitely terminating and skips noise-level changes.
const TIGHTEN_TOL: f64 = 1e-7;
/// Cap on fixpoint passes (each pass is O(nnz); real models converge in 2-3).
const MAX_PASSES: usize = 10;

/// Where a working bound came from (for exact dual postsolve).
#[derive(Debug, Clone, Copy)]
enum BoundSrc {
    /// The model's own bound; nothing to repair.
    Original,
    /// Implied by a removed singleton row `(row, coeff)`.
    Singleton(u32, f64),
    /// Implied by a kept all-positive `≤` row `(row, coeff)`.
    Tightened(u32, f64),
}

/// What happened to an original column.
#[derive(Debug, Clone, Copy)]
enum ColFate {
    Kept,
    /// Removed at a known value.
    Fixed(f64),
    /// Removed as a free singleton; its value is reconstructed from the
    /// matching [`Reduction::free_elims`] entry during postsolve.
    Eliminated,
}

/// A free singleton column folded into its equality row.
#[derive(Debug, Clone)]
struct FreeElim {
    col: usize,
    row: usize,
    coeff: f64,
    /// Adjusted RHS of the row at elimination time.
    rhs: f64,
    /// Adjusted minimization-form cost of the column at elimination time.
    cost: f64,
    /// The row's other live columns at elimination time.
    others: Vec<(u32, f64)>,
}

/// A reduced model plus everything needed to restore the original solution.
pub(crate) struct Reduction {
    reduced: Model,
    kept_cols: Vec<u32>,
    kept_rows: Vec<u32>,
    col_fate: Vec<ColFate>,
    row_kept: Vec<bool>,
    free_elims: Vec<FreeElim>,
    /// Final working bounds (tightened) in original column space.
    tlb: Vec<f64>,
    tub: Vec<f64>,
    lb_src: Vec<BoundSrc>,
    ub_src: Vec<BoundSrc>,
    /// `(row, col)` for each singleton-row removal, in removal order.
    /// Postsolve repairs these duals in *reverse* so chained removals
    /// (a fixing that creates the next singleton) see final duals.
    singleton_log: Vec<(u32, u32)>,
    /// `+1` for Min, `-1` for Max (minimization-form sign).
    sign: f64,
    removed_cols: u64,
    removed_rows: u64,
}

/// Outcome of [`reduce`].
enum Presolved {
    /// Nothing worth reducing; solve the original model directly.
    Unreduced,
    Infeasible,
    Unbounded,
    /// Everything was eliminated; the solution is fully determined.
    Solved(Reduction),
    Reduced(Reduction),
}

/// Presolve + solve + postsolve. Returns `Ok(None)` when presolve found
/// nothing useful (the caller then runs the ordinary path on the original
/// model). Exactly one fault-injection poll happens per call, matching the
/// one-poll-per-attempt contract of the plain solve path.
pub(crate) fn try_solve_presolved(
    model: &Model,
    opts: &SimplexOptions,
    refactor_every: usize,
) -> Result<Option<Solution>, LpError> {
    // Malformed bounds are left to the main path so the error (and the
    // fault-poll sequence) is byte-identical with presolve disabled.
    for j in 0..model.num_vars() {
        if model.lb[j] > model.ub[j] + 1e-12 {
            return Ok(None);
        }
    }
    let poll = || -> Result<(), LpError> {
        match crate::fault::poll() {
            Some(kind) => Err(kind.to_error()),
            None => Ok(()),
        }
    };
    match reduce(model)? {
        Presolved::Unreduced => Ok(None),
        Presolved::Infeasible => {
            poll()?;
            Err(LpError::Infeasible)
        }
        Presolved::Unbounded => {
            poll()?;
            Err(LpError::Unbounded)
        }
        Presolved::Solved(red) => {
            poll()?;
            red.observe();
            Ok(Some(red.postsolve(model, None)))
        }
        Presolved::Reduced(red) => {
            red.observe();
            let inner = SimplexOptions { presolve: false, ..*opts };
            let rsol = crate::simplex::solve_reduced(&red.reduced, &inner, refactor_every)?;
            Ok(Some(red.postsolve(model, Some(rsol))))
        }
    }
}

/// Run the reduction fixpoint loop.
fn reduce(model: &Model) -> Result<Presolved, LpError> {
    let n = model.num_vars();
    let m = model.num_rows();
    let sign = match model.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };

    // Row-major copy of the matrix (the model is column-major).
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
    for j in 0..n {
        for (i, a) in model.cols.col(j).iter() {
            if a != 0.0 {
                rows[i].push((j as u32, a));
            }
        }
    }

    let mut tlb = model.lb.clone();
    let mut tub = model.ub.clone();
    let mut cost: Vec<f64> = model.obj.iter().map(|c| sign * c).collect();
    let mut rhs = model.rhs.clone();
    let mut live_col = vec![true; n];
    let mut live_row = vec![true; m];
    let mut col_live = vec![0usize; n];
    let mut row_live = vec![0usize; m];
    for (i, row) in rows.iter().enumerate() {
        row_live[i] = row.len();
        for &(j, _) in row {
            col_live[j as usize] += 1;
        }
    }
    let mut col_fate = vec![ColFate::Kept; n];
    let mut lb_src = vec![BoundSrc::Original; n];
    let mut ub_src = vec![BoundSrc::Original; n];
    let mut free_elims: Vec<FreeElim> = Vec::new();
    let mut singleton_log: Vec<(u32, u32)> = Vec::new();
    let mut removed_cols = 0u64;
    let mut removed_rows = 0u64;
    let mut tightened = 0u64;

    for _pass in 0..MAX_PASSES {
        let mut changed = false;

        // Fix pinched columns and empty columns.
        for j in 0..n {
            if !live_col[j] {
                continue;
            }
            if tlb[j] > tub[j] + FEAS_TOL * (1.0 + tlb[j].abs()) {
                return Ok(Presolved::Infeasible);
            }
            let val = if tub[j] - tlb[j] <= FIX_TOL && tlb[j].is_finite() {
                tlb[j]
            } else if col_live[j] == 0 {
                // No live rows: the column moves straight to its
                // cost-optimal bound (minimization form).
                if cost[j] > REPAIR_TOL {
                    if !tlb[j].is_finite() {
                        return Ok(Presolved::Unbounded);
                    }
                    tlb[j]
                } else if cost[j] < -REPAIR_TOL {
                    if !tub[j].is_finite() {
                        return Ok(Presolved::Unbounded);
                    }
                    tub[j]
                } else {
                    // Cost-free: match the cold start's resting point.
                    match (tlb[j].is_finite(), tub[j].is_finite()) {
                        (true, _) => tlb[j],
                        (false, true) => tub[j],
                        (false, false) => 0.0,
                    }
                }
            } else {
                continue;
            };
            live_col[j] = false;
            col_fate[j] = ColFate::Fixed(val);
            removed_cols += 1;
            changed = true;
            for (i, a) in model.cols.col(j).iter() {
                if live_row[i] && a != 0.0 {
                    rhs[i] -= a * val;
                    row_live[i] -= 1;
                }
            }
        }

        // Empty and singleton rows.
        for i in 0..m {
            if !live_row[i] {
                continue;
            }
            if row_live[i] == 0 {
                let ok = match model.row_cmp[i] {
                    Cmp::Le => rhs[i] >= -FEAS_TOL,
                    Cmp::Ge => rhs[i] <= FEAS_TOL,
                    Cmp::Eq => rhs[i].abs() <= FEAS_TOL,
                };
                if !ok {
                    return Ok(Presolved::Infeasible);
                }
            } else if row_live[i] == 1 {
                let &(jc, a) = rows[i]
                    .iter()
                    .find(|&&(jc, _)| live_col[jc as usize])
                    .expect("live count says one column");
                let j = jc as usize;
                if a.abs() < 1e-12 {
                    continue; // numerically void; leave the row alone
                }
                let v = rhs[i] / a;
                let (imp_lb, imp_ub) = match (model.row_cmp[i], a > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => (None, Some(v)),
                    (Cmp::Le, false) | (Cmp::Ge, true) => (Some(v), None),
                    (Cmp::Eq, _) => (Some(v), Some(v)),
                };
                if let Some(lo) = imp_lb {
                    if lo > tlb[j] {
                        tlb[j] = lo;
                        lb_src[j] = BoundSrc::Singleton(i as u32, a);
                    }
                }
                if let Some(hi) = imp_ub {
                    if hi < tub[j] {
                        tub[j] = hi;
                        ub_src[j] = BoundSrc::Singleton(i as u32, a);
                    }
                }
                singleton_log.push((i as u32, jc));
            } else {
                continue;
            }
            live_row[i] = false;
            removed_rows += 1;
            changed = true;
            for &(jc, _) in &rows[i] {
                if live_col[jc as usize] {
                    col_live[jc as usize] -= 1;
                }
            }
        }

        // Free singleton columns in an equality row absorb the row.
        for j in 0..n {
            if !live_col[j]
                || col_live[j] != 1
                || tlb[j].is_finite()
                || tub[j].is_finite()
            {
                continue;
            }
            let (i, a) = match model
                .cols
                .col(j)
                .iter()
                .find(|&(i, a)| live_row[i] && a != 0.0)
            {
                Some(e) => e,
                None => continue,
            };
            if model.row_cmp[i] != Cmp::Eq || a.abs() < 1e-9 {
                continue;
            }
            let others: Vec<(u32, f64)> = rows[i]
                .iter()
                .filter(|&&(kc, _)| kc as usize != j && live_col[kc as usize])
                .copied()
                .collect();
            for &(kc, aik) in &others {
                cost[kc as usize] -= cost[j] * aik / a;
            }
            col_fate[j] = ColFate::Eliminated;
            free_elims.push(FreeElim { col: j, row: i, coeff: a, rhs: rhs[i], cost: cost[j], others });
            live_col[j] = false;
            removed_cols += 1;
            live_row[i] = false;
            removed_rows += 1;
            changed = true;
            for &(kc, _) in &rows[i] {
                let k = kc as usize;
                if live_col[k] {
                    col_live[k] -= 1;
                }
            }
        }

        // Capacity-pattern bound tightening: all-positive `≤` rows whose
        // live columns all have finite lower bounds imply upper bounds.
        for i in 0..m {
            if !live_row[i] || row_live[i] < 2 || model.row_cmp[i] != Cmp::Le {
                continue;
            }
            let mut act_min = 0.0;
            let mut eligible = true;
            for &(jc, a) in &rows[i] {
                let j = jc as usize;
                if !live_col[j] {
                    continue;
                }
                if a <= 0.0 || !tlb[j].is_finite() {
                    eligible = false;
                    break;
                }
                act_min += a * tlb[j];
            }
            if !eligible {
                continue;
            }
            if act_min > rhs[i] + FEAS_TOL * (1.0 + rhs[i].abs()) {
                return Ok(Presolved::Infeasible);
            }
            let slack = (rhs[i] - act_min).max(0.0);
            for &(jc, a) in &rows[i] {
                let j = jc as usize;
                if !live_col[j] {
                    continue;
                }
                let imp = tlb[j] + slack / a;
                if imp < tub[j] && (tub[j] - imp) > TIGHTEN_TOL * (1.0 + imp.abs()) {
                    tub[j] = imp;
                    ub_src[j] = BoundSrc::Tightened(i as u32, a);
                    tightened += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    if removed_cols == 0 && removed_rows == 0 && tightened == 0 {
        return Ok(Presolved::Unreduced);
    }

    let kept_cols: Vec<u32> = (0..n as u32).filter(|&j| live_col[j as usize]).collect();
    let kept_rows: Vec<u32> = (0..m as u32).filter(|&i| live_row[i as usize]).collect();

    // Every live row keeps ≥ 2 live columns (emptier rows were removed),
    // so "no rows left" implies "no columns left" and vice versa.
    let solved = kept_rows.is_empty();
    debug_assert!(!solved || kept_cols.is_empty());

    // Assemble the reduced model directly (no name strings on this path —
    // bounds are valid by construction, so they are never reported).
    let reduced = if solved {
        Model::new(model.sense)
    } else {
        let mut row_map = vec![u32::MAX; m];
        for (ir, &i) in kept_rows.iter().enumerate() {
            row_map[i as usize] = ir as u32;
        }
        let mut cols = ColMatrix::new(kept_rows.len());
        let mut obj = Vec::with_capacity(kept_cols.len());
        let mut rlb = Vec::with_capacity(kept_cols.len());
        let mut rub = Vec::with_capacity(kept_cols.len());
        for &jc in &kept_cols {
            let j = jc as usize;
            let entries: Vec<(u32, f64)> = model
                .cols
                .col(j)
                .iter()
                .filter(|&(i, a)| live_row[i] && a != 0.0)
                .map(|(i, a)| (row_map[i], a))
                .collect();
            cols.push_col(SparseCol::from_entries(entries));
            obj.push(sign * cost[j]);
            rlb.push(tlb[j]);
            rub.push(tub[j]);
        }
        let k = kept_cols.len();
        Model {
            sense: model.sense,
            obj,
            lb: rlb,
            ub: rub,
            integer: vec![false; k],
            names: vec![String::new(); k],
            cols,
            row_cmp: kept_rows.iter().map(|&i| model.row_cmp[i as usize]).collect(),
            rhs: kept_rows.iter().map(|&i| rhs[i as usize]).collect(),
        }
    };
    let red = Reduction {
        reduced,
        kept_cols,
        kept_rows,
        col_fate,
        row_kept: live_row,
        free_elims,
        tlb,
        tub,
        lb_src,
        ub_src,
        singleton_log,
        sign,
        removed_cols,
        removed_rows,
    };
    Ok(if solved { Presolved::Solved(red) } else { Presolved::Reduced(red) })
}

impl Reduction {
    /// Record the reduction counters.
    fn observe(&self) {
        flexile_obs::add("lp.presolve_removed_cols", self.removed_cols);
        flexile_obs::add("lp.presolve_removed_rows", self.removed_rows);
    }

    /// Restore the full-space primal point, duals, and a warm-startable
    /// basis from the reduced solution (`None` when everything was
    /// eliminated in presolve).
    fn postsolve(&self, model: &Model, rsol: Option<Solution>) -> Solution {
        let n = model.num_vars();
        let m = model.num_rows();
        let sign = self.sign;

        // Primal: kept columns from the reduced solve, fixed columns at
        // their values, eliminated free columns from their row equations in
        // reverse elimination order (later eliminations are restored first,
        // so every referenced column value is already known).
        let mut x = vec![0.0; n];
        if let Some(rs) = &rsol {
            for (jr, &jc) in self.kept_cols.iter().enumerate() {
                x[jc as usize] = rs.x[jr];
            }
        }
        for (j, fate) in self.col_fate.iter().enumerate() {
            if let ColFate::Fixed(v) = fate {
                x[j] = *v;
            }
        }
        for fe in self.free_elims.iter().rev() {
            let mut act = 0.0;
            for &(kc, a) in &fe.others {
                act += a * x[kc as usize];
            }
            x[fe.col] = (fe.rhs - act) / fe.coeff;
        }

        // Duals, in minimization form: kept rows from the reduced solve,
        // eliminated-row duals forced by their absorbed column, then the
        // two repair passes (see the module docs for why this order is
        // exact for this reduction set).
        let mut y = vec![0.0; m];
        if let Some(rs) = &rsol {
            for (ir, &ic) in self.kept_rows.iter().enumerate() {
                y[ic as usize] = sign * rs.duals[ir];
            }
        }
        for fe in &self.free_elims {
            y[fe.row] = fe.cost / fe.coeff;
        }
        let dval = |j: usize, y: &[f64]| -> f64 {
            let mut d = sign * model.obj[j];
            for (i, a) in model.cols.col(j).iter() {
                d -= a * y[i];
            }
            d
        };
        let at = |v: f64, b: f64| b.is_finite() && (v - b).abs() <= FEAS_TOL * (1.0 + b.abs());
        // Pass 1: binding tightening-implied upper bounds hand their
        // reduced cost to the (kept) capacity row that implied them.
        for j in 0..n {
            if let BoundSrc::Tightened(i, a) = self.ub_src[j] {
                if at(x[j], self.tub[j]) {
                    let d = dval(j, &y);
                    if d < -REPAIR_TOL {
                        y[i as usize] += d / a;
                    }
                }
            }
        }
        // Pass 2: binding singleton-row-implied bounds repair the dual of
        // their (removed) source row; each such row had exactly one live
        // column at removal time. Removed *columns* can still have entries
        // in singleton rows removed later (a fixing creates the next
        // singleton), so repairs run in reverse removal order: by the time
        // row `i` absorbs its column's reduced cost, every dual that cost
        // depends on is final.
        for &(i, jc) in self.singleton_log.iter().rev() {
            let j = jc as usize;
            let d = dval(j, &y);
            if d > REPAIR_TOL {
                if let BoundSrc::Singleton(si, a) = self.lb_src[j] {
                    if si == i && at(x[j], self.tlb[j]) {
                        y[si as usize] += d / a;
                    }
                }
            } else if d < -REPAIR_TOL {
                if let BoundSrc::Singleton(si, a) = self.ub_src[j] {
                    if si == i && at(x[j], self.tub[j]) {
                        y[si as usize] += d / a;
                    }
                }
            }
        }
        if sign < 0.0 {
            y.iter_mut().for_each(|v| *v = -*v);
        }

        // Basis: kept rows carry the mapped reduced basis, removed rows go
        // slack-basic (their slack columns are unit vectors, so the mapped
        // basis stays nonsingular).
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut status = vec![VarStatus::AtLower; n + m];
        for i in 0..m {
            if !self.row_kept[i] {
                status[n + i] = VarStatus::Basic;
            }
        }
        if let Some(rs) = &rsol {
            let k = self.kept_cols.len();
            let kr = self.kept_rows.len();
            let rb = &rs.basis;
            for (jr, &jc) in self.kept_cols.iter().enumerate() {
                status[jc as usize] = rb.status[jr];
            }
            for (ir, &ic) in self.kept_rows.iter().enumerate() {
                status[n + ic as usize] = rb.status[k + ir];
            }
            for (ir, &ic) in self.kept_rows.iter().enumerate() {
                let bj = rb.basis[ir];
                basis[ic as usize] = if bj < k {
                    self.kept_cols[bj] as usize
                } else if bj < k + kr {
                    n + self.kept_rows[bj - k] as usize
                } else {
                    // A phase-1 artificial stayed basic (at zero) in the
                    // reduced solve. It has no full-space column, so the
                    // row keeps its own slack basic instead; the resulting
                    // basis may start primal infeasible, which the warm
                    // path repairs or falls back from.
                    status[n + ic as usize] = VarStatus::Basic;
                    n + ic as usize
                };
            }
            // A kept column nonbasic at a bound *implied* by a removed
            // singleton row has no such bound in the full model; left as-is
            // the warm basis would park it at a different (original) bound
            // and start primal infeasible. The binding implied bound means
            // the source row is active, so the column goes basic in that
            // row and the row's slack takes the binding side instead of
            // going slack-basic. Nonsingularity holds because no other
            // *kept* column can have an entry in a removed singleton row —
            // any such column was live when the row was removed and would
            // have kept it from being a singleton.
            for &jc in &self.kept_cols {
                let j = jc as usize;
                let src = match status[j] {
                    VarStatus::AtLower => self.lb_src[j],
                    VarStatus::AtUpper => self.ub_src[j],
                    _ => BoundSrc::Original,
                };
                if let BoundSrc::Singleton(i, _) = src {
                    let i = i as usize;
                    debug_assert!(!self.row_kept[i]);
                    status[j] = VarStatus::Basic;
                    basis[i] = j;
                    status[n + i] = match model.row_cmp[i] {
                        Cmp::Ge => VarStatus::AtUpper,
                        _ => VarStatus::AtLower,
                    };
                }
            }
        }
        for (j, fate) in self.col_fate.iter().enumerate() {
            let removed = !matches!(fate, ColFate::Kept);
            if removed {
                status[j] = if at(x[j], model.ub[j]) && !at(x[j], model.lb[j]) {
                    VarStatus::AtUpper
                } else if model.lb[j].is_finite() || model.ub[j].is_finite() {
                    VarStatus::AtLower
                } else {
                    VarStatus::FreeZero
                };
            }
        }

        let objective = model.eval_objective(&x);
        let iterations = rsol.as_ref().map_or(0, |rs| rs.iterations);
        Solution {
            status: SolveStatus::Optimal,
            x,
            objective,
            duals: y,
            iterations,
            basis: Basis::from_parts(basis, status),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve_both(m: &Model) -> (Solution, Solution) {
        let on = m
            .solve_with(&SimplexOptions::default(), None)
            .expect("presolve-on solve");
        let off = m
            .solve_with(&SimplexOptions { presolve: false, ..Default::default() }, None)
            .expect("presolve-off solve");
        (on, off)
    }

    /// Full-space KKT check: primal feasibility, dual sign feasibility, and
    /// stationarity of every column against the returned duals.
    fn assert_kkt(m: &Model, sol: &Solution) {
        assert!(m.max_violation(&sol.x) < 1e-6, "primal violation");
        let sign = match m.sense() {
            Sense::Min => 1.0,
            Sense::Max => -1.0,
        };
        for i in 0..m.num_rows() {
            let y_min = sign * sol.duals[i];
            match m.row_cmp[i] {
                Cmp::Le => assert!(y_min <= 1e-7, "row {i} dual sign {y_min}"),
                Cmp::Ge => assert!(y_min >= -1e-7, "row {i} dual sign {y_min}"),
                Cmp::Eq => {}
            }
        }
        for j in 0..m.num_vars() {
            let mut d = sign * m.obj[j];
            for (i, a) in m.cols.col(j).iter() {
                d -= a * sign * sol.duals[i];
            }
            let xj = sol.x[j];
            let at_lb = m.lb[j].is_finite() && (xj - m.lb[j]).abs() <= 1e-6;
            let at_ub = m.ub[j].is_finite() && (xj - m.ub[j]).abs() <= 1e-6;
            if at_lb && !at_ub {
                assert!(d >= -1e-6, "col {j} at lb needs d >= 0, got {d}");
            } else if at_ub && !at_lb {
                assert!(d <= 1e-6, "col {j} at ub needs d <= 0, got {d}");
            } else if !at_lb && !at_ub {
                assert!(d.abs() <= 1e-6, "interior col {j} needs d = 0, got {d}");
            }
        }
    }

    #[test]
    fn singleton_rows_and_duals_recovered() {
        // The classic: singleton rows x<=4 and 2y<=12 presolve away, yet
        // the reported duals must still be 0 / 1.5 / 1.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        let r1 = m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        let r3 = m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let (on, off) = solve_both(&m);
        assert!((on.objective - 36.0).abs() < 1e-9);
        assert!((on.objective - off.objective).abs() < 1e-9);
        assert!((on.dual(r1)).abs() < 1e-9);
        assert!((on.dual(r2) - 1.5).abs() < 1e-9);
        assert!((on.dual(r3) - 1.0).abs() < 1e-9);
        assert_kkt(&m, &on);
    }

    #[test]
    fn all_columns_fixed_solves_without_simplex() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 2.0, 2.0, 3.0);
        let y = m.add_var("y", -1.0, -1.0, 1.0);
        m.add_row_le(&[(x, 1.0), (y, 1.0)], 5.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.iterations, 0, "fully presolved: no pivots");
        assert!((sol.objective - 5.0).abs() < 1e-9);
        assert_kkt(&m, &sol);
    }

    #[test]
    fn infeasible_detected_in_presolve() {
        // Fixed columns leave an empty, violated row.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 1.0, 1.0, 1.0);
        m.add_row_ge(&[(x, 1.0)], 3.0);
        assert!(matches!(m.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn infeasible_from_conflicting_singletons() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_row_le(&[(x, 1.0)], 2.0);
        m.add_row_ge(&[(x, 1.0)], 5.0);
        assert!(matches!(m.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn free_singleton_column_eliminated_exactly() {
        // min x + z st x + y = 5 (y free), x + z >= 3; y absorbs the row.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let z = m.add_var("z", 0.0, 10.0, 1.0);
        let req = m.add_row_eq(&[(x, 1.0), (y, 1.0)], 5.0);
        m.add_row_ge(&[(x, 1.0), (z, 1.0)], 3.0);
        let (on, off) = solve_both(&m);
        assert!((on.objective - off.objective).abs() < 1e-9);
        // y must satisfy the equality exactly in the restored primal.
        assert!((on.value(x) + on.value(y) - 5.0).abs() < 1e-9);
        // The eliminated row's dual equals c_y / a = 0 here.
        assert!(on.dual(req).abs() < 1e-9);
        assert_kkt(&m, &on);
    }

    #[test]
    fn capacity_tightening_keeps_duals_exact() {
        // max 2a + b st a + b <= 4 (capacity), a <= 3, with the singleton
        // row folded into bounds: the tightened bound on `a` binds and its
        // reduced cost must flow back into the capacity row's dual.
        let mut m = Model::new(Sense::Max);
        let a = m.add_var("a", 0.0, f64::INFINITY, 2.0);
        let b = m.add_var("b", 0.0, f64::INFINITY, 1.0);
        let cap = m.add_row_le(&[(a, 1.0), (b, 1.0)], 4.0);
        let lim = m.add_row_le(&[(a, 1.0)], 3.0);
        let (on, off) = solve_both(&m);
        assert!((on.objective - 7.0).abs() < 1e-9);
        assert!((on.objective - off.objective).abs() < 1e-9);
        assert!((on.dual(cap) - off.dual(cap)).abs() < 1e-9);
        assert!((on.dual(lim) - off.dual(lim)).abs() < 1e-9);
        assert_kkt(&m, &on);
    }

    #[test]
    fn unbounded_empty_column_detected() {
        // y has no rows and negative min-form cost with an infinite bound.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let _y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_row_le(&[(x, 1.0)], 1.0);
        assert!(matches!(m.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn presolved_basis_warm_starts_the_full_model() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s1 = m.solve().unwrap();
        m.set_rhs(r2, 11.0);
        let s2 = m.solve_with(&SimplexOptions::default(), Some(&s1.basis)).unwrap();
        assert!((s2.objective - (3.0 * (7.0 / 3.0) + 5.0 * 5.5)).abs() < 1e-6);
    }

    #[test]
    fn mixed_reductions_random_shapes_match() {
        // A hand-rolled deterministic LCG sweeps structured LPs through
        // both paths; objectives must agree and KKT must hold.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) // [0, 2)
        };
        for case in 0..40 {
            let mut m = Model::new(if case % 2 == 0 { Sense::Min } else { Sense::Max });
            let nv = 3 + (case % 5);
            let vars: Vec<_> = (0..nv)
                .map(|j| {
                    let lb = if next() < 0.5 { 0.0 } else { -next() };
                    let fixed = next() < 0.2;
                    let ub = if fixed { lb } else { lb + 1.0 + next() };
                    m.add_var(&format!("v{j}"), lb, ub, next() - 1.0)
                })
                .collect();
            // A capacity row, a singleton row, and a generic row.
            let caps: Vec<_> = vars.iter().map(|&v| (v, 0.5 + next())).collect();
            m.add_row_le(&caps, 1.0 + 2.0 * next());
            m.add_row_le(&[(vars[0], 1.0 + next())], 1.0 + next());
            m.add_row_ge(&[(vars[1], 1.0), (vars[2], -1.0)], -1.0 - next());
            match (
                m.solve_with(&SimplexOptions::default(), None),
                m.solve_with(&SimplexOptions { presolve: false, ..Default::default() }, None),
            ) {
                (Ok(on), Ok(off)) => {
                    let tol = 1e-9 * (1.0 + off.objective.abs());
                    assert!(
                        (on.objective - off.objective).abs() <= tol,
                        "case {case}: {} vs {}",
                        on.objective,
                        off.objective
                    );
                    assert_kkt(&m, &on);
                }
                (Err(a), Err(b)) => assert_eq!(
                    std::mem::discriminant(&a),
                    std::mem::discriminant(&b),
                    "case {case}: {a:?} vs {b:?}"
                ),
                (a, b) => panic!("case {case}: presolve-on {a:?} vs presolve-off {b:?}"),
            }
        }
    }
}
