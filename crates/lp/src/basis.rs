//! Pluggable basis representations for the revised simplex.
//!
//! The simplex kernel only ever touches the basis through four linear-algebra
//! primitives — FTRAN (`B⁻¹a`), BTRAN (`cᵀB⁻¹`), a rank-1 pivot update, and
//! a from-scratch refactorization — so those four calls are the whole
//! [`BasisEngine`] contract. Two implementations exist:
//!
//! * [`LuEngine`] (default): sparse Markowitz LU ([`LuFactors`]) plus a
//!   product-form **eta file**. Each pivot appends one sparse eta factor
//!   (`B_new = B_old · E`) instead of densely updating an inverse, and both
//!   solve directions replay the file around the permuted triangular solves:
//!   FTRAN applies `E⁻¹` chronologically after the LU solve, BTRAN applies
//!   `E⁻ᵀ` in reverse before it. Periodic refactorization (driven by the
//!   simplex, same cadence as before) resets the file.
//! * [`DenseEngine`]: the original explicit dense inverse (Gauss–Jordan
//!   refactorization + dense rank-1 eta updates). O(m²) per pivot, but
//!   simple and numerically transparent — it survives as the differential
//!   -testing oracle and as the engine behind the Bland-safe rung of
//!   [`crate::solve_robust`].
//!
//! The engines are *numerically* interchangeable (differential tests pin
//! them to ≤1e-9 of each other on every tier-1 fixture) but not bit-equal:
//! pivot order inside the factorization differs, so iterate trajectories can
//! diverge on degenerate ties. Everything downstream treats the choice as a
//! performance knob, selected via [`crate::SimplexOptions::engine`].

use crate::error::LpError;
use crate::sparse::{ColSource, DenseMat, LuFactors, RhsBlock, SparseCol};

/// Pivot magnitude below which a product-form update is refused; the ratio
/// test guarantees pivots ≥ 5e-8, so hitting this means the iterate has
/// already gone numerically astray and the caller should refactorize.
const ETA_PIVOT_TOL: f64 = 1e-12;

/// Which basis representation a solve should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Explicit dense inverse: the original engine, kept as an oracle.
    Dense,
    /// Sparse Markowitz LU + eta file (default).
    #[default]
    SparseLu,
}

/// Basis-representation contract used by the simplex kernel.
///
/// All methods take `&mut self` so implementations can reuse internal
/// scratch buffers across calls; none of them allocates on the hot path
/// after the first refactorization at a given dimension.
pub trait BasisEngine {
    /// Which representation this is.
    fn kind(&self) -> EngineKind;

    /// Rebuild the factorization from scratch for the `m × m` basis whose
    /// column at basis position `pos` is supplied by `col_of(pos, out)` as
    /// pushed `(row, value)` entries. Discards any accumulated eta factors.
    fn refactor(
        &mut self,
        m: usize,
        col_of: &mut ColSource<'_>,
    ) -> Result<(), LpError>;

    /// FTRAN: `out = B⁻¹ a` for a sparse column `a`. `out` (indexed by basis
    /// position) is fully overwritten.
    fn ftran(&mut self, col: &SparseCol, out: &mut [f64]);

    /// FTRAN against a dense right-hand side: `out = B⁻¹ rhs`. Used by
    /// `recompute_xb`, where the reduced RHS is dense.
    fn ftran_dense(&mut self, rhs: &[f64], out: &mut [f64]);

    /// BTRAN: `out = cᵀ B⁻¹` for a dense `c` indexed by basis position;
    /// `out` is indexed by row.
    fn btran(&mut self, c: &[f64], out: &mut [f64]);

    /// BTRAN of the `r`-th unit vector: `out = e_rᵀ B⁻¹`, i.e. row `r` of
    /// the basis inverse (the dual-simplex pivot row).
    fn btran_unit(&mut self, r: usize, out: &mut [f64]);

    /// Product-form update after a pivot: the entering column's FTRAN image
    /// is `w` and the leaving basic position is `r`, so `B_new = B · E` with
    /// `E = I` except column `r = w`. Fails if `|w[r]|` is degenerate.
    fn update(&mut self, w: &[f64], r: usize) -> Result<(), LpError>;

    /// Eta factors accumulated since the last refactorization.
    fn eta_len(&self) -> usize;

    /// Dense FTRAN over a whole block of right-hand sides: every lane of
    /// `block` is replaced by `B⁻¹ lane`, each bitwise identical to a
    /// [`Self::ftran_dense`] of that lane. The default implementation simply
    /// loops lanes through the scalar path (and allocates — it exists so the
    /// dense oracle stays correct); [`LuEngine`] overrides it with the true
    /// block kernel.
    fn ftran_dense_block(&mut self, block: &mut RhsBlock) {
        let m = block.rows();
        let mut lane_in = vec![0.0; m];
        let mut lane_out = vec![0.0; m];
        for lane in 0..block.width() {
            block.store_lane(lane, &mut lane_in);
            self.ftran_dense(&lane_in, &mut lane_out);
            block.load_lane(lane, &lane_out);
        }
    }

    /// BTRAN over a whole block of cost vectors: every lane `c` becomes
    /// `cᵀB⁻¹`, bitwise identical to a per-lane [`Self::btran`]. Default as
    /// for [`Self::ftran_dense_block`].
    fn btran_block(&mut self, block: &mut RhsBlock) {
        let m = block.rows();
        let mut lane_in = vec![0.0; m];
        let mut lane_out = vec![0.0; m];
        for lane in 0..block.width() {
            block.store_lane(lane, &mut lane_in);
            self.btran(&lane_in, &mut lane_out);
            block.load_lane(lane, &lane_out);
        }
    }
}

/// Build the engine for `kind`.
pub fn make_engine(kind: EngineKind) -> Box<dyn BasisEngine> {
    match kind {
        EngineKind::Dense => Box::new(DenseEngine::new()),
        EngineKind::SparseLu => Box::new(LuEngine::new()),
    }
}

fn singular() -> LpError {
    LpError::Numerical("singular basis at refactorization".into())
}

fn tiny_eta(wr: f64) -> LpError {
    LpError::Numerical(format!("eta pivot {wr:.3e} too small for basis update"))
}

// ---------------------------------------------------------------------------
// Dense oracle engine
// ---------------------------------------------------------------------------

/// Explicit dense basis inverse (the pre-LU engine, verbatim numerics).
pub struct DenseEngine {
    binv: DenseMat,
    entries: Vec<(u32, f64)>,
    etas: usize,
}

impl DenseEngine {
    /// Fresh engine; unusable until the first [`BasisEngine::refactor`].
    pub fn new() -> Self {
        DenseEngine { binv: DenseMat::identity(0), entries: Vec::new(), etas: 0 }
    }
}

impl Default for DenseEngine {
    fn default() -> Self {
        DenseEngine::new()
    }
}

impl BasisEngine for DenseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Dense
    }

    fn refactor(
        &mut self,
        m: usize,
        col_of: &mut ColSource<'_>,
    ) -> Result<(), LpError> {
        self.etas = 0;
        let mut entries = std::mem::take(&mut self.entries);
        let ok = self.binv.invert_from_columns(m, |pos, out| {
            entries.clear();
            col_of(pos, &mut entries);
            for &(r, v) in &entries {
                out[r as usize] += v;
            }
        });
        self.entries = entries;
        if ok {
            Ok(())
        } else {
            Err(singular())
        }
    }

    fn ftran(&mut self, col: &SparseCol, out: &mut [f64]) {
        self.binv.mul_sparse(col, out);
    }

    fn ftran_dense(&mut self, rhs: &[f64], out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.binv.row(i).iter().zip(rhs.iter()).map(|(a, b)| a * b).sum();
        }
    }

    fn btran(&mut self, c: &[f64], out: &mut [f64]) {
        self.binv.pre_mul_dense(c, out);
    }

    fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        out.copy_from_slice(self.binv.row(r));
    }

    fn update(&mut self, w: &[f64], r: usize) -> Result<(), LpError> {
        if w[r].abs() < ETA_PIVOT_TOL {
            return Err(tiny_eta(w[r]));
        }
        self.binv.eta_update(w, r);
        self.etas += 1;
        Ok(())
    }

    fn eta_len(&self) -> usize {
        self.etas
    }
}

// ---------------------------------------------------------------------------
// Sparse LU + eta-file engine
// ---------------------------------------------------------------------------

/// One product-form factor: column `r` of `E` is the pivot's FTRAN image
/// `w`, stored as the diagonal `w_r` plus the sparse off-diagonal entries.
struct Eta {
    r: u32,
    wr: f64,
    entries: Vec<(u32, f64)>,
}

impl Eta {
    /// `v ← E⁻¹ v`. Only touches anything when `v[r] ≠ 0`, which is what
    /// makes eta replay cheap on hypersparse FTRANs.
    #[inline]
    fn apply_ftran(&self, v: &mut [f64]) {
        let vr = v[self.r as usize];
        if vr == 0.0 {
            return;
        }
        let t = vr / self.wr;
        v[self.r as usize] = t;
        for &(i, wi) in &self.entries {
            v[i as usize] -= wi * t;
        }
    }

    /// `cᵀ ← cᵀ E⁻¹`: only component `r` changes.
    #[inline]
    fn apply_btran(&self, c: &mut [f64]) {
        let mut acc = c[self.r as usize];
        for &(i, wi) in &self.entries {
            acc -= wi * c[i as usize];
        }
        c[self.r as usize] = acc / self.wr;
    }

    /// [`Self::apply_ftran`] on every lane of a block. Lane-outer on purpose:
    /// the per-lane operation sequence (including the `v[r] == 0` early-out)
    /// must match the scalar replay exactly, and the eta file is empty on the
    /// post-refactorization batch hot path anyway.
    fn apply_ftran_block(&self, block: &mut RhsBlock) {
        let r = self.r as usize;
        for lane in 0..block.width() {
            let vr = block.get(r, lane);
            if vr == 0.0 {
                continue;
            }
            let t = vr / self.wr;
            block.set(r, lane, t);
            for &(i, wi) in &self.entries {
                let iu = i as usize;
                block.set(iu, lane, block.get(iu, lane) - wi * t);
            }
        }
    }

    /// [`Self::apply_btran`] on every lane of a block.
    fn apply_btran_block(&self, block: &mut RhsBlock) {
        let r = self.r as usize;
        for lane in 0..block.width() {
            let mut acc = block.get(r, lane);
            for &(i, wi) in &self.entries {
                acc -= wi * block.get(i as usize, lane);
            }
            block.set(r, lane, acc / self.wr);
        }
    }
}

/// Sparse LU basis engine: Markowitz-ordered factorization plus a
/// product-form eta file, with sparsity-exploiting FTRAN/BTRAN.
pub struct LuEngine {
    lu: LuFactors,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
    /// `m·k` workspace for the block kernels, reused across block solves.
    block_scratch: Vec<f64>,
}

impl LuEngine {
    /// Fresh engine; unusable until the first [`BasisEngine::refactor`].
    pub fn new() -> Self {
        LuEngine {
            lu: LuFactors::new(),
            etas: Vec::new(),
            scratch: Vec::new(),
            block_scratch: Vec::new(),
        }
    }

    fn observe_nnz(name: &'static str, v: &[f64]) {
        if flexile_obs::enabled() {
            let nnz = v.iter().filter(|x| **x != 0.0).count();
            flexile_obs::observe(name, nnz as f64);
        }
    }
}

impl Default for LuEngine {
    fn default() -> Self {
        LuEngine::new()
    }
}

impl BasisEngine for LuEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SparseLu
    }

    fn refactor(
        &mut self,
        m: usize,
        col_of: &mut ColSource<'_>,
    ) -> Result<(), LpError> {
        self.etas.clear();
        if !self.lu.factorize(m, col_of) {
            return Err(singular());
        }
        self.scratch.clear();
        self.scratch.resize(m, 0.0);
        if flexile_obs::enabled() && m > 0 {
            flexile_obs::observe("lp.lu_fill", self.lu.nnz() as f64 / m as f64);
        }
        Ok(())
    }

    fn ftran(&mut self, col: &SparseCol, out: &mut [f64]) {
        flexile_obs::add("lp.ftran_calls", 1);
        out.iter_mut().for_each(|v| *v = 0.0);
        for (r, v) in col.iter() {
            out[r] += v;
        }
        self.lu.ftran_in_place(out, &mut self.scratch);
        for eta in &self.etas {
            eta.apply_ftran(out);
        }
        Self::observe_nnz("lp.ftran_nnz", out);
    }

    fn ftran_dense(&mut self, rhs: &[f64], out: &mut [f64]) {
        flexile_obs::add("lp.ftran_calls", 1);
        out.copy_from_slice(rhs);
        self.lu.ftran_in_place(out, &mut self.scratch);
        for eta in &self.etas {
            eta.apply_ftran(out);
        }
    }

    fn btran(&mut self, c: &[f64], out: &mut [f64]) {
        flexile_obs::add("lp.btran_calls", 1);
        out.copy_from_slice(c);
        for eta in self.etas.iter().rev() {
            eta.apply_btran(out);
        }
        self.lu.btran_in_place(out, &mut self.scratch);
        Self::observe_nnz("lp.btran_nnz", out);
    }

    fn btran_unit(&mut self, r: usize, out: &mut [f64]) {
        flexile_obs::add("lp.btran_calls", 1);
        out.iter_mut().for_each(|v| *v = 0.0);
        out[r] = 1.0;
        for eta in self.etas.iter().rev() {
            eta.apply_btran(out);
        }
        self.lu.btran_in_place(out, &mut self.scratch);
        Self::observe_nnz("lp.btran_nnz", out);
    }

    fn ftran_dense_block(&mut self, block: &mut RhsBlock) {
        flexile_obs::add("lp.ftran_calls", 1);
        self.lu.ftran_block(block, &mut self.block_scratch);
        for eta in &self.etas {
            eta.apply_ftran_block(block);
        }
    }

    fn btran_block(&mut self, block: &mut RhsBlock) {
        flexile_obs::add("lp.btran_calls", 1);
        for eta in self.etas.iter().rev() {
            eta.apply_btran_block(block);
        }
        self.lu.btran_block(block, &mut self.block_scratch);
    }

    fn update(&mut self, w: &[f64], r: usize) -> Result<(), LpError> {
        let wr = w[r];
        if wr.abs() < ETA_PIVOT_TOL {
            return Err(tiny_eta(wr));
        }
        let entries: Vec<(u32, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &wi)| i != r && wi != 0.0)
            .map(|(i, &wi)| (i as u32, wi))
            .collect();
        if flexile_obs::enabled() {
            flexile_obs::observe("lp.eta_nnz", (entries.len() + 1) as f64);
        }
        self.etas.push(Eta { r: r as u32, wr, entries });
        Ok(())
    }

    fn eta_len(&self) -> usize {
        self.etas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic sparse nonsingular test basis: diagonally dominant
    /// with a few off-diagonal entries per column.
    fn basis_cols(m: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..m)
            .map(|j| {
                let mut col = vec![(j as u32, 3.0 + next())];
                for _ in 0..2 {
                    let r = (next() * m as f64) as usize % m;
                    if r != j && !col.iter().any(|&(rr, _)| rr as usize == r) {
                        col.push((r as u32, next() - 0.5));
                    }
                }
                col
            })
            .collect()
    }

    fn refactor_from(engine: &mut dyn BasisEngine, cols: &[Vec<(u32, f64)>]) {
        let m = cols.len();
        engine
            .refactor(m, &mut |pos, out| out.extend_from_slice(&cols[pos]))
            .expect("nonsingular test basis");
    }

    #[test]
    fn engines_agree_on_ftran_btran() {
        let m = 30;
        let cols = basis_cols(m, 11);
        let mut dense = DenseEngine::new();
        let mut lu = LuEngine::new();
        refactor_from(&mut dense, &cols);
        refactor_from(&mut lu, &cols);

        let a = SparseCol::from_entries(vec![(2, 1.0), (9, -0.5), (21, 2.0)]);
        let (mut xd, mut xl) = (vec![0.0; m], vec![0.0; m]);
        dense.ftran(&a, &mut xd);
        lu.ftran(&a, &mut xl);
        for i in 0..m {
            assert!((xd[i] - xl[i]).abs() < 1e-9, "ftran {i}: {} vs {}", xd[i], xl[i]);
        }

        let c: Vec<f64> = (0..m).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let (mut yd, mut yl) = (vec![0.0; m], vec![0.0; m]);
        dense.btran(&c, &mut yd);
        lu.btran(&c, &mut yl);
        for i in 0..m {
            assert!((yd[i] - yl[i]).abs() < 1e-9, "btran {i}");
        }

        let (mut rd, mut rl) = (vec![0.0; m], vec![0.0; m]);
        dense.btran_unit(m / 2, &mut rd);
        lu.btran_unit(m / 2, &mut rl);
        for i in 0..m {
            assert!((rd[i] - rl[i]).abs() < 1e-9, "btran_unit {i}");
        }
    }

    #[test]
    fn eta_chain_matches_reinversion() {
        // Mirror of `sparse::tests::eta_update_matches_reinversion`, but for
        // the LU engine and a chain of k updates: after k pivots via the eta
        // file, FTRAN/BTRAN must match a from-scratch refactorization of the
        // updated basis.
        let m = 25;
        let mut cols = basis_cols(m, 23);
        let mut lu = LuEngine::new();
        refactor_from(&mut lu, &cols);

        let replacements: [(usize, Vec<(u32, f64)>); 4] = [
            (3, vec![(0, 1.0), (3, 4.0), (7, -0.25)]),
            (11, vec![(11, 5.0), (12, 0.5)]),
            (3, vec![(2, -0.75), (3, 6.0), (20, 1.0)]),
            (18, vec![(17, 0.3), (18, 3.5), (24, -1.1)]),
        ];
        let mut w = vec![0.0; m];
        for (pos, newcol) in &replacements {
            let a = SparseCol::from_entries(newcol.clone());
            lu.ftran(&a, &mut w);
            lu.update(&w, *pos).expect("well-conditioned pivot");
            cols[*pos] = newcol.clone();
        }
        assert_eq!(lu.eta_len(), replacements.len());

        let mut fresh = LuEngine::new();
        refactor_from(&mut fresh, &cols);
        assert_eq!(fresh.eta_len(), 0, "refactorization resets the eta file");

        let rhs = SparseCol::from_entries(vec![(1, 2.0), (13, -1.0), (24, 0.5)]);
        let (mut via_etas, mut via_fresh) = (vec![0.0; m], vec![0.0; m]);
        lu.ftran(&rhs, &mut via_etas);
        fresh.ftran(&rhs, &mut via_fresh);
        for i in 0..m {
            assert!(
                (via_etas[i] - via_fresh[i]).abs() < 1e-9,
                "eta-chain ftran drifted at {i}: {} vs {}",
                via_etas[i],
                via_fresh[i]
            );
        }
        let c: Vec<f64> = (0..m).map(|i| (i as f64 * 0.61).cos()).collect();
        let (mut ye, mut yf) = (vec![0.0; m], vec![0.0; m]);
        lu.btran(&c, &mut ye);
        fresh.btran(&c, &mut yf);
        for i in 0..m {
            assert!((ye[i] - yf[i]).abs() < 1e-9, "eta-chain btran drifted at {i}");
        }
    }

    /// The engine block paths must stay bitwise equal to per-lane scalar
    /// calls even with a non-empty eta file in play.
    #[test]
    fn block_paths_match_scalar_bitwise_through_etas() {
        let m = 25;
        let cols = basis_cols(m, 41);
        let mut lu = LuEngine::new();
        refactor_from(&mut lu, &cols);
        // Push a couple of eta factors.
        let mut w = vec![0.0; m];
        for (pos, newcol) in
            [(4usize, vec![(1u32, 0.5), (4, 3.0)]), (17, vec![(16, -0.4), (17, 2.5), (20, 1.0)])]
        {
            let a = SparseCol::from_entries(newcol);
            lu.ftran(&a, &mut w);
            lu.update(&w, pos).unwrap();
        }
        assert_eq!(lu.eta_len(), 2);
        let k = 5;
        let lanes: Vec<Vec<f64>> = (0..k)
            .map(|lane| {
                (0..m)
                    .map(|r| if (r + lane) % 3 == 0 { 0.0 } else { (r as f64 * 0.7).sin() + 0.1 })
                    .collect()
            })
            .collect();
        let mut blk = RhsBlock::new(m, k);
        for (lane, v) in lanes.iter().enumerate() {
            blk.load_lane(lane, v);
        }
        lu.ftran_dense_block(&mut blk);
        let mut out = vec![0.0; m];
        for (lane, v) in lanes.iter().enumerate() {
            lu.ftran_dense(v, &mut out);
            for r in 0..m {
                assert_eq!(blk.get(r, lane).to_bits(), out[r].to_bits(), "ftran {lane}/{r}");
            }
        }
        let mut blk = RhsBlock::new(m, k);
        for (lane, v) in lanes.iter().enumerate() {
            blk.load_lane(lane, v);
        }
        lu.btran_block(&mut blk);
        for (lane, v) in lanes.iter().enumerate() {
            lu.btran(v, &mut out);
            for r in 0..m {
                assert_eq!(blk.get(r, lane).to_bits(), out[r].to_bits(), "btran {lane}/{r}");
            }
        }
    }

    #[test]
    fn singular_basis_rejected_at_factorization() {
        for kind in [EngineKind::Dense, EngineKind::SparseLu] {
            let mut engine = make_engine(kind);
            let res = engine.refactor(4, &mut |pos, out| {
                // Columns 1 and 3 identical ⇒ singular.
                let p = if pos == 3 { 1 } else { pos };
                out.push((p as u32, 1.0));
                out.push((((p + 1) % 4) as u32, 2.0));
            });
            match res {
                Err(LpError::Numerical(msg)) => {
                    assert!(msg.contains("singular"), "{kind:?}: {msg}")
                }
                other => panic!("{kind:?}: expected singular error, got {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_eta_pivot_rejected() {
        let m = 5;
        let cols = basis_cols(m, 3);
        for kind in [EngineKind::Dense, EngineKind::SparseLu] {
            let mut engine = make_engine(kind);
            engine
                .refactor(m, &mut |pos, out| out.extend_from_slice(&cols[pos]))
                .unwrap();
            let w = vec![1.0, 0.0, 1.0, 1.0, 1.0];
            assert!(engine.update(&w, 1).is_err(), "{kind:?} must refuse a zero pivot");
        }
    }

    #[test]
    fn default_engine_is_sparse_lu() {
        assert_eq!(EngineKind::default(), EngineKind::SparseLu);
        assert_eq!(make_engine(EngineKind::default()).kind(), EngineKind::SparseLu);
    }
}
