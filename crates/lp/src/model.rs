//! LP/MIP model builder.
//!
//! A [`Model`] owns variables (with bounds and objective coefficients) and
//! rows (linear constraints). Variables may be declared integer, in which
//! case the model must be solved with [`crate::mip::solve_mip`]; the plain
//! [`Model::solve`] solves the continuous relaxation.

use crate::error::LpError;
use crate::simplex::{self, Basis, RestartKind, SimplexOptions, Solution};
use crate::sparse::{ColMatrix, SparseCol};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Min,
    /// Maximize the objective.
    Max,
}

/// Row comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Handle to a variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Positional index of the variable in the model.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a row in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(pub(crate) u32);

impl RowId {
    /// Positional index of the row in the model.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A linear program (optionally with integer variables).
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) obj: Vec<f64>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) integer: Vec<bool>,
    pub(crate) names: Vec<String>,
    /// Structural columns (one per variable).
    pub(crate) cols: ColMatrix,
    pub(crate) row_cmp: Vec<Cmp>,
    pub(crate) rhs: Vec<f64>,
}

impl Model {
    /// Create an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            obj: Vec::new(),
            lb: Vec::new(),
            ub: Vec::new(),
            integer: Vec::new(),
            names: Vec::new(),
            cols: ColMatrix::new(0),
            row_cmp: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lb, ub]` and objective
    /// coefficient `obj`. `ub` may be `f64::INFINITY` and `lb` may be
    /// `f64::NEG_INFINITY`.
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        debug_assert!(lb <= ub, "variable {name}: lb {lb} > ub {ub}");
        self.obj.push(obj);
        self.lb.push(lb);
        self.ub.push(ub);
        self.integer.push(false);
        self.names.push(name.to_string());
        self.cols.push_col(SparseCol::default());
        VarId((self.obj.len() - 1) as u32)
    }

    /// Add a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: &str, obj: f64) -> VarId {
        let v = self.add_var(name, 0.0, 1.0, obj);
        self.integer[v.index()] = true;
        v
    }

    /// Mark an existing variable as integer.
    pub fn set_integer(&mut self, v: VarId) {
        self.integer[v.index()] = true;
    }

    /// True if any variable is integer.
    pub fn has_integers(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Indices of integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.integer
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Overwrite a variable's bounds.
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        debug_assert!(lb <= ub + 1e-12, "set_bounds: lb {lb} > ub {ub}");
        self.lb[v.index()] = lb;
        self.ub[v.index()] = ub.max(lb);
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.lb[v.index()], self.ub[v.index()])
    }

    /// Overwrite a variable's objective coefficient.
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        self.obj[v.index()] = obj;
    }

    /// Variable name (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Add a generic row `coeffs · x (cmp) rhs`.
    pub fn add_row(&mut self, coeffs: &[(VarId, f64)], cmp: Cmp, rhs: f64) -> RowId {
        let row = self.rhs.len();
        self.cols.grow_rows(row + 1);
        for &(v, c) in coeffs {
            self.cols.add_entry(row, v.index(), c);
        }
        self.row_cmp.push(cmp);
        self.rhs.push(rhs);
        RowId(row as u32)
    }

    /// Add a `≤` row.
    pub fn add_row_le(&mut self, coeffs: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(coeffs, Cmp::Le, rhs)
    }

    /// Add a `≥` row.
    pub fn add_row_ge(&mut self, coeffs: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(coeffs, Cmp::Ge, rhs)
    }

    /// Add an `=` row.
    pub fn add_row_eq(&mut self, coeffs: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(coeffs, Cmp::Eq, rhs)
    }

    /// Overwrite a row's right-hand side (used when re-solving a scenario
    /// family that differs only in the RHS, per the paper's reformulation of
    /// the subproblem).
    pub fn set_rhs(&mut self, r: RowId, rhs: f64) {
        self.rhs[r.index()] = rhs;
    }

    /// Current right-hand side of a row.
    pub fn rhs_of(&self, r: RowId) -> f64 {
        self.rhs[r.index()]
    }

    /// Comparison sense of row `i` (by index; see [`Model::num_rows`]).
    pub fn row_sense(&self, i: usize) -> Cmp {
        self.row_cmp[i]
    }

    /// Bounds of variable `j` (by index; see [`Model::num_vars`]).
    pub fn var_bounds(&self, j: usize) -> (f64, f64) {
        (self.lb[j], self.ub[j])
    }

    /// Objective coefficient of variable `j` (by index).
    pub fn objective_coeff(&self, j: usize) -> f64 {
        self.obj[j]
    }

    /// Nonzero column entries of variable `j` as `(row index, coefficient)`.
    /// Index-based like the other by-index accessors; used by external KKT
    /// checks (e.g. the presolve differential tests) that validate duals
    /// against the full model.
    pub fn col_entries(&self, j: usize) -> Vec<(usize, f64)> {
        self.cols.col(j).iter().collect()
    }

    /// Solve the continuous relaxation with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, &SimplexOptions::default(), None)
    }

    /// Solve the continuous relaxation with explicit options and an optional
    /// warm-start basis from a previous solve of a structurally identical
    /// model.
    pub fn solve_with(
        &self,
        opts: &SimplexOptions,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        simplex::solve(self, opts, warm)
    }

    /// Re-solve after an RHS-only change, restarting from `warm`.
    ///
    /// The caller asserts that nothing but row right-hand sides changed since
    /// `warm` was captured (see [`Model::set_rhs`]); the solver then skips the
    /// dual-feasibility scan and repairs the basis with dual-simplex pivots
    /// directly. One attempt, no internal retry — see
    /// [`simplex::solve_rhs_restart`].
    pub fn solve_rhs_restart(
        &self,
        opts: &SimplexOptions,
        warm: &Basis,
    ) -> Result<(Solution, RestartKind), LpError> {
        simplex::solve_rhs_restart(self, opts, warm)
    }

    /// [`Model::solve_rhs_restart`] with caller-owned scratch buffers (see
    /// [`simplex::solve_rhs_restart_with`]): a pool worker performing many
    /// restarts back to back reuses its work vectors across solves.
    pub fn solve_rhs_restart_with(
        &self,
        opts: &SimplexOptions,
        warm: &Basis,
        scratch: &mut crate::SolveScratch,
    ) -> Result<(Solution, RestartKind), LpError> {
        simplex::solve_rhs_restart_with(self, opts, warm, scratch)
    }

    /// Solve a block of RHS-only restarts through one shared factorization
    /// where the members' warm bases coincide — see
    /// [`simplex::solve_rhs_batch`]. Results land in member order and are
    /// bit-identical to sequential [`Model::solve_rhs_restart`] calls; the
    /// model's RHS is restored to its entry state before returning.
    pub fn solve_rhs_batch(
        &mut self,
        opts: &SimplexOptions,
        members: &[crate::RhsBatchMember<'_>],
        scratch: &mut crate::SolveScratch,
    ) -> Vec<Result<(Solution, RestartKind), LpError>> {
        simplex::solve_rhs_batch(self, opts, members, scratch)
    }

    /// The full right-hand-side vector, indexed by row. Batch callers clone
    /// this once per template and overwrite the per-scenario rows to build
    /// each member's RHS (see [`Model::solve_rhs_batch`]).
    pub fn rhs_values(&self) -> &[f64] {
        &self.rhs
    }

    /// Replace the entire right-hand-side vector in one call (the bulk
    /// counterpart of [`Model::set_rhs`]). `rhs.len()` must equal
    /// [`Model::num_rows`].
    pub fn set_rhs_values(&mut self, rhs: &[f64]) {
        assert_eq!(rhs.len(), self.rhs.len(), "RHS length must match row count");
        self.rhs.clear();
        self.rhs.extend_from_slice(rhs);
    }

    /// Evaluate the objective at a point.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        self.obj.iter().zip(x.iter()).map(|(c, v)| c * v).sum()
    }

    /// Maximum row violation of a point (for post-solve verification).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        // Compute A·x row-wise via the column storage.
        let mut ax = vec![0.0; self.num_rows()];
        for j in 0..self.num_vars() {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (r, v) in self.cols.col(j).iter() {
                ax[r] += v * xj;
            }
        }
        for i in 0..self.num_rows() {
            let d = match self.row_cmp[i] {
                Cmp::Le => ax[i] - self.rhs[i],
                Cmp::Ge => self.rhs[i] - ax[i],
                Cmp::Eq => (ax[i] - self.rhs[i]).abs(),
            };
            worst = worst.max(d);
        }
        for j in 0..self.num_vars() {
            worst = worst.max(self.lb[j] - x[j]).max(x[j] - self.ub[j]);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 2.0);
        let y = m.add_binary("y", 1.0);
        let r = m.add_row_ge(&[(x, 1.0), (y, 1.0)], 1.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_rows(), 1);
        assert!(m.has_integers());
        assert_eq!(m.integer_vars(), vec![y]);
        assert_eq!(m.rhs_of(r), 1.0);
        m.set_rhs(r, 2.0);
        assert_eq!(m.rhs_of(r), 2.0);
        assert_eq!(m.var_name(x), "x");
    }

    #[test]
    fn violation_measure() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        assert!(m.max_violation(&[3.0]) < 1e-12);
        assert!((m.max_violation(&[5.0]) - 1.0).abs() < 1e-12);
    }
}
