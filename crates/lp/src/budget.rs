//! Solve budgets: iteration caps plus wall-clock deadlines.
//!
//! A [`SolveBudget`] bounds how much work a solve (or a chain of retries)
//! may spend. The iteration cap is per attempt; the deadline is an
//! *absolute* instant so it composes naturally across the escalation rungs
//! of [`crate::solve_robust`] and across the rounds of a
//! [`crate::solve_with_rowgen`] loop: however many retries fire, the total
//! wall-clock spent stays bounded.

use crate::simplex::SimplexOptions;
use std::time::{Duration, Instant};

/// Work bound for one solve call (including its internal retries).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Hard cap on simplex iterations per attempt. `0` means automatic
    /// (`50 · (rows + cols) + 10_000`).
    pub max_iters: usize,
    /// Absolute wall-clock deadline; crossing it surfaces
    /// [`crate::LpError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Pivots between basis refactorizations (the eta-chain-length
    /// trigger). `None` uses the measured default; smaller values trade
    /// speed for numerical robustness, larger ones stretch the eta file
    /// further between rebuilds.
    pub refactor_every: Option<usize>,
}

impl SolveBudget {
    /// No iteration cap beyond the automatic one, no deadline.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Budget with an explicit per-attempt iteration cap.
    pub fn with_max_iters(max_iters: usize) -> Self {
        SolveBudget { max_iters, ..Default::default() }
    }

    /// Budget whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        SolveBudget { deadline: Some(Instant::now() + timeout), ..Default::default() }
    }

    /// Add a deadline `timeout` from now to this budget.
    pub fn and_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Whether the deadline has already passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Simplex options carrying this budget (other knobs at defaults).
    pub fn simplex_options(&self) -> SimplexOptions {
        SimplexOptions {
            max_iters: self.max_iters,
            deadline: self.deadline,
            refactor_every: self.refactor_every,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = SolveBudget::unlimited();
        assert!(!b.expired());
        assert_eq!(b.max_iters, 0);
    }

    #[test]
    fn elapsed_deadline_reports_expired() {
        let b = SolveBudget { deadline: Some(Instant::now()), ..Default::default() };
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.expired());
    }

    #[test]
    fn future_deadline_not_expired() {
        let b = SolveBudget::with_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
        assert!(b.simplex_options().deadline.is_some());
    }
}
