//! Error types for the LP/MIP solver.

use std::fmt;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The model is primal infeasible (phase 1 terminated with positive
    /// infeasibility).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded before reaching optimality.
    IterationLimit,
    /// The wall-clock deadline of the [`crate::SolveBudget`] passed before
    /// reaching optimality.
    DeadlineExceeded,
    /// A variable id or row id referenced a different model.
    BadIndex(String),
    /// Inconsistent bounds (`lb > ub`) on a variable or a malformed row.
    BadModel(String),
    /// Numerical failure (singular basis that could not be repaired).
    Numerical(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::DeadlineExceeded => write!(f, "solve deadline exceeded"),
            LpError::BadIndex(s) => write!(f, "bad index: {s}"),
            LpError::BadModel(s) => write!(f, "bad model: {s}"),
            LpError::Numerical(s) => write!(f, "numerical failure: {s}"),
        }
    }
}

impl std::error::Error for LpError {}
