//! Bounded-variable two-phase revised simplex method.
//!
//! Implementation notes:
//!
//! * Every row `a·x (cmp) b` gets a slack `s` with `a·x + s = b` and bounds
//!   `[0, ∞)` (for `≤`), `(-∞, 0]` (for `≥`) or `[0, 0]` (for `=`).
//! * Cold solves first run the presolve/postsolve pass ([`crate::presolve`]):
//!   fixed/free-column elimination, empty/singleton-row removal and bound
//!   tightening shrink the model, and the postsolve maps the reduced
//!   solution (primal, duals, basis) back exactly.
//! * Phase 1 starts from the all-slack basis after a bound-shift crash
//!   ([`crate::crash`]) flips doubly-bounded structurals toward feasibility;
//!   rows whose slack value still violates its bounds get a `±1` artificial
//!   column with phase-1 cost 1. Once the artificial sum reaches zero the
//!   artificials are frozen at `[0, 0]` and phase 2 runs with the true cost.
//! * The basis is maintained behind a [`BasisEngine`]: by default a sparse
//!   Markowitz LU factorization with a product-form eta file appended per
//!   pivot, refactorized from scratch periodically (and whenever drift is
//!   detected); the explicit dense inverse survives as the selectable
//!   [`EngineKind::Dense`] oracle.
//! * Pricing is devex by default ([`Pricing::Devex`]: candidate scores
//!   `d_j²/w_j` with reference weights updated per pivot) over a
//!   **candidate list** refilled incrementally from a rotating cursor:
//!   when the list runs dry the scan resumes where the previous refill
//!   stopped and collects up to the cap of attractive columns, so
//!   successive refills cover fresh columns instead of re-pricing the same
//!   prefix. Only a refill that wraps the full column range without
//!   finding an attractive column declares optimality. Dantzig scoring
//!   remains selectable ([`Pricing::Dantzig`]) for the retry/robust paths.
//!   After a run of degenerate pivots the solver switches to Bland's rule
//!   (full lowest-index scan), which guarantees termination, and switches
//!   back once progress resumes.
//! * The dual simplex uses a bound-flipping (long-step) ratio test: one
//!   dual pivot may flip any number of doubly-bounded columns whose
//!   breakpoints it crosses, which is what keeps RHS-only scenario
//!   restarts to a handful of pivots.
//! * Warm starts: [`Solution::basis`] can be fed back into
//!   [`solve`] for a structurally identical model (same variables and rows,
//!   possibly different RHS/bounds/objective). If the saved basis is not
//!   primal feasible for the new data the solver silently falls back to a
//!   cold start, so warm starting is always safe.

use crate::basis::{make_engine, BasisEngine, EngineKind};
use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};
use crate::sparse::{RhsBlock, SparseCol};

/// Feasibility tolerance on variable bounds.
const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (dual) tolerance.
const DUAL_TOL: f64 = 1e-7;
/// Minimum pivot magnitude accepted in the ratio test. Too small a pivot
/// produces huge eta factors and destroys the basis inverse.
const PIVOT_TOL: f64 = 5e-8;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_SWITCH: usize = 60;
/// Pivots between basis refactorizations (default; halved in safe mode).
const REFACTOR_EVERY: usize = 60;

/// Solver status of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// Primal infeasible.
    Infeasible,
    /// Unbounded objective.
    Unbounded,
}

/// Pricing rule used by the primal phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Pick the rule per solve (the default): Dantzig for *cold* solves of
    /// models dominated by a dense column (the MLU / max-concurrent-flow
    /// shape, where devex's reference weights chase the dense column's large
    /// steepest-edge norms and pay ~7% extra pivots — the PR 8 regression),
    /// devex everywhere else. Warm-started solves always use devex: their
    /// phase-2 runs are short and devex's weight framework wins there.
    #[default]
    Auto,
    /// Devex reference-framework pricing: candidate scores are
    /// `d_j² / w_j` with reference weights updated after every pivot, which
    /// approximates steepest edge at a fraction of its cost and typically
    /// needs far fewer pivots than a plain most-negative-cost rule.
    Devex,
    /// Classic Dantzig pricing (most negative reduced cost). Retained as the
    /// fallback rule for the numerical-retry path of [`solve`] and the
    /// cold-refactor rung of [`crate::solve_robust`]; Bland's rule remains
    /// the final anti-cycling fallback behind both.
    Dantzig,
}

/// Resolve [`Pricing::Auto`] against the model shape. Must be called before
/// a [`PhaseCtl`] is built — the phase loops compare against concrete rules.
fn resolve_pricing(p: Pricing, model: &Model, warm: bool) -> Pricing {
    match p {
        Pricing::Auto => {
            let m = model.num_rows();
            let densest =
                (0..model.num_vars()).map(|j| model.cols.col(j).nnz()).max().unwrap_or(0);
            if !warm && m >= 32 && densest >= (m / 8).max(24) {
                Pricing::Dantzig
            } else {
                Pricing::Devex
            }
        }
        other => other,
    }
}

/// Options controlling a simplex run.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations (phases combined). `0` means automatic
    /// (`50 · (rows + cols) + 10_000`).
    pub max_iters: usize,
    /// Absolute wall-clock deadline. Checked once per pivot; crossing it
    /// aborts the solve with [`LpError::DeadlineExceeded`].
    pub deadline: Option<std::time::Instant>,
    /// Use Bland's rule from the first pivot and never leave it. Slower but
    /// cycle-proof; the safe-mode rung of [`crate::solve_robust`].
    pub force_bland: bool,
    /// Pivots between basis refactorizations for the first attempt. `None`
    /// means the default interval; small values trade speed for numerical
    /// robustness.
    pub refactor_every: Option<usize>,
    /// Basis representation. Defaults to the sparse LU engine; the dense
    /// inverse remains selectable as a differential-testing oracle and is
    /// what the Bland-safe rung of [`crate::solve_robust`] uses.
    pub engine: EngineKind,
    /// Primal pricing rule (see [`Pricing`]). Ignored under `force_bland`.
    pub pricing: Pricing,
    /// Run the presolve/postsolve pass ([`crate::presolve`]) before a cold
    /// solve. On by default; automatically skipped for warm-started solves
    /// (the saved basis addresses the full column space) and under
    /// `force_bland` (the safe rung runs the textbook path unmodified).
    pub presolve: bool,
    /// Run the bound-shift crash ([`crate::crash`]) before installing
    /// phase-1 artificials on a cold start. On by default; skipped under
    /// `force_bland` for the same reason as presolve.
    pub crash: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 0,
            deadline: None,
            force_bland: false,
            refactor_every: None,
            engine: EngineKind::default(),
            pricing: Pricing::default(),
            presolve: true,
            crash: true,
        }
    }
}

/// A basis snapshot usable for warm-starting a later solve.
#[derive(Debug, Clone)]
pub struct Basis {
    pub(crate) basis: Vec<usize>,
    pub(crate) status: Vec<VarStatus>,
}

impl Basis {
    /// Assemble a basis from raw parts (used by the presolve postsolve to
    /// map a reduced-space basis back to the full column space).
    pub(crate) fn from_parts(basis: Vec<usize>, status: Vec<VarStatus>) -> Self {
        Basis { basis, status }
    }

    /// Number of basic columns (= rows of the solve that produced it).
    pub fn size(&self) -> usize {
        self.basis.len()
    }

    /// Order-sensitive FNV-1a digest of the basic set and every column's
    /// status. Two bases with equal fingerprints restart a solve
    /// identically, so the decomposition's crash tests use this to prove
    /// that replaying a scenario's RHS chain after a resume reconstructs
    /// *exactly* the warm state the uninterrupted run carried — without
    /// ever persisting the basis itself.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.basis.len() as u64);
        for &c in &self.basis {
            eat(c as u64);
        }
        eat(self.status.len() as u64);
        for &s in &self.status {
            eat(match s {
                VarStatus::Basic => 0,
                VarStatus::AtLower => 1,
                VarStatus::AtUpper => 2,
                VarStatus::FreeZero => 3,
            });
        }
        h
    }
}

/// How a warm-started solve actually restarted (reported by
/// [`solve_rhs_restart`]). The decomposition's scenario pool uses this to
/// count cross-iteration basis reuse explicitly instead of inferring it
/// from telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartKind {
    /// The saved basis was still primal feasible; phase 2 continued from it
    /// directly (typically zero pivots when the optimum is unchanged).
    PrimalWarm,
    /// The RHS change broke primal feasibility; dual-simplex pivots repaired
    /// it from the saved (still dual-feasible) basis.
    DualRestart,
    /// The saved basis could not be used (shape mismatch, singular
    /// refactorization, or the dual repair gave up); a cold two-phase solve
    /// produced the solution.
    Cold,
}

/// An optimal (or best-found) solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Terminal status. `solve` returns `Err` for infeasible/unbounded, so a
    /// returned `Solution` always has `SolveStatus::Optimal`.
    pub status: SolveStatus,
    /// Primal values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Row duals: `duals[i] = ∂objective/∂rhs[i]` (in the model's sense).
    pub duals: Vec<f64>,
    /// Iterations used (both phases).
    pub iterations: usize,
    /// Basis snapshot for warm starts.
    pub basis: Basis,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, v: crate::model::VarId) -> f64 {
        self.x[v.index()]
    }
    /// Dual of a row.
    pub fn dual(&self, r: crate::model::RowId) -> f64 {
        self.duals[r.index()]
    }
}

/// Reusable pool of dense `f64` work vectors shared across solves.
///
/// Every simplex phase needs a handful of `m`-length scratch vectors (BTRAN
/// duals, FTRAN columns, cost gathers, devex weights). Allocating them per
/// solve is invisible for one cold solve but measurable in the decomposition
/// pool, where each worker performs thousands of warm restarts whose entire
/// pivot count is often zero. A `SolveScratch` owns the buffers across
/// solves: `grab` pops a vector and resets it to all zeros — bit-identical
/// to a fresh `vec![0.0; len]` — and `put` returns it.
#[derive(Debug, Default)]
pub struct SolveScratch {
    pool: Vec<Vec<f64>>,
}

impl SolveScratch {
    /// Empty pool; buffers are created on first use and recycled after.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// Pop a buffer and reset it to `len` zeros (identical to
    /// `vec![0.0; len]`, so pooling can never perturb solver output).
    fn grab(&mut self, len: usize) -> Vec<f64> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return a buffer to the pool for reuse by a later solve.
    fn put(&mut self, v: Vec<f64>) {
        self.pool.push(v);
    }
}

/// One member of a multi-RHS batch solve: the full RHS vector it wants
/// installed and the warm basis to restart from. See [`solve_rhs_batch`].
#[derive(Debug, Clone, Copy)]
pub struct RhsBatchMember<'a> {
    /// Full replacement RHS (`model.num_rows()` entries).
    pub rhs: &'a [f64],
    /// Warm basis saved from this member's previous solve.
    pub warm: &'a Basis,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable nonbasic at value 0.
    FreeZero,
}

/// Internal working state. Columns are ordered: structural (0..n), slacks
/// (n..n+m), artificials (n+m..).
struct Work<'a> {
    model: &'a Model,
    n: usize,
    m: usize,
    /// Artificial columns: (row, sign).
    arts: Vec<(usize, f64)>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Phase-2 cost (minimization form).
    cost2: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    engine: Box<dyn BasisEngine>,
    xb: Vec<f64>,
    /// Reduced-RHS scratch reused by [`Work::recompute_xb`] so the hot
    /// refactorization path never allocates.
    rhs_scratch: Vec<f64>,
    pivots_since_refactor: usize,
}

/// Push the non-zero `(row, value)` entries of column `j` in the working
/// column order (structurals, slacks, artificials). Free function so the
/// engine's refactorization callback can borrow these fields while the
/// engine itself is borrowed mutably.
fn push_col_entries(
    model: &Model,
    arts: &[(usize, f64)],
    n: usize,
    m: usize,
    j: usize,
    out: &mut Vec<(u32, f64)>,
) {
    if j < n {
        for (r, v) in model.cols.col(j).iter() {
            out.push((r as u32, v));
        }
    } else if j < n + m {
        out.push(((j - n) as u32, 1.0));
    } else {
        let (r, s) = arts[j - n - m];
        out.push((r as u32, s));
    }
}

impl<'a> Work<'a> {
    fn ncols(&self) -> usize {
        self.n + self.m + self.arts.len()
    }

    /// Visit the non-zero entries of column `j`.
    #[inline]
    fn for_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if j < self.n {
            for (r, v) in self.model.cols.col(j).iter() {
                f(r, v);
            }
        } else if j < self.n + self.m {
            f(j - self.n, 1.0);
        } else {
            let (r, s) = self.arts[j - self.n - self.m];
            f(r, s);
        }
    }

    fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        self.for_col(j, |r, v| acc += dense[r] * v);
        acc
    }

    /// Value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lb[j],
            VarStatus::AtUpper => self.ub[j],
            VarStatus::FreeZero => 0.0,
            VarStatus::Basic => unreachable!("nonbasic_value on basic column"),
        }
    }

    /// Fill [`Work::rhs_scratch`] with the reduced RHS `b - A_N x_N`.
    fn reduced_rhs(&mut self) {
        let model = self.model;
        self.reduced_rhs_with(&model.rhs);
    }

    /// Reduced RHS against a caller-supplied `b` (the batch path reduces
    /// each member's RHS through one shared nonbasic assignment).
    fn reduced_rhs_with(&mut self, rhs_in: &[f64]) {
        // Take the buffer out so `for_col` can borrow `self` immutably.
        let mut r = std::mem::take(&mut self.rhs_scratch);
        r.clear();
        r.extend_from_slice(rhs_in);
        for j in 0..self.ncols() {
            if self.status[j] == VarStatus::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                self.for_col(j, |row, a| r[row] -= a * v);
            }
        }
        self.rhs_scratch = r;
    }

    /// Recompute the basic values `xb = B⁻¹ (b - A_N x_N)` via the engine's
    /// dense FTRAN, reusing the RHS scratch buffer.
    fn recompute_xb(&mut self) {
        self.reduced_rhs();
        self.engine.ftran_dense(&self.rhs_scratch, &mut self.xb);
    }

    /// Refactorize the basis representation from the current column set.
    fn refactorize(&mut self) -> Result<(), LpError> {
        self.refactor_basis()?;
        self.recompute_xb();
        Ok(())
    }

    /// Refactorize *without* recomputing the basic values — the batch path
    /// computes them for a whole RHS block in one FTRAN instead.
    fn refactor_basis(&mut self) -> Result<(), LpError> {
        flexile_obs::add("lp.refactorizations", 1);
        if self.pivots_since_refactor > 0 {
            flexile_obs::observe("lp.eta_chain_len", self.pivots_since_refactor as f64);
        }
        let Work { model, arts, basis, engine, n, m, .. } = self;
        let (n, m) = (*n, *m);
        engine.refactor(m, &mut |pos, out| {
            push_col_entries(model, arts, n, m, basis[pos], out)
        })?;
        self.pivots_since_refactor = 0;
        Ok(())
    }

    /// Max bound violation of the basic values.
    fn primal_infeas(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, &j) in self.basis.iter().enumerate() {
            worst = worst.max(self.lb[j] - self.xb[i]).max(self.xb[i] - self.ub[j]);
        }
        worst
    }

    fn objective_of(&self, cost: &[f64]) -> f64 {
        let mut obj = 0.0;
        for (i, &j) in self.basis.iter().enumerate() {
            obj += cost[j] * self.xb[i];
        }
        for j in 0..self.ncols() {
            if self.status[j] != VarStatus::Basic && cost[j] != 0.0 {
                obj += cost[j] * self.nonbasic_value(j);
            }
        }
        obj
    }
}

/// Outcome of one simplex phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
    IterLimit,
}

/// Per-attempt pivot-loop controls shared by the primal and dual phases.
#[derive(Clone, Copy)]
struct PhaseCtl {
    deadline: Option<std::time::Instant>,
    force_bland: bool,
    pricing: Pricing,
}

impl PhaseCtl {
    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// Price nonbasic column `j`: `Some((|d|, dir))` if it is attractive.
fn price_col(w: &Work, cost: &[f64], y: &[f64], j: usize) -> Option<(f64, f64)> {
    if w.status[j] == VarStatus::Basic {
        return None;
    }
    if w.ub[j] - w.lb[j] <= 0.0 {
        return None; // fixed column can never improve
    }
    let d = cost[j] - w.col_dot(j, y);
    let dir = match w.status[j] {
        VarStatus::AtLower if d < -DUAL_TOL => 1.0,
        VarStatus::AtUpper if d > DUAL_TOL => -1.0,
        VarStatus::FreeZero if d.abs() > DUAL_TOL => -d.signum(),
        _ => return None,
    };
    Some((d.abs(), dir))
}

/// Run simplex iterations with the given cost vector until optimality.
fn run_phase(
    w: &mut Work,
    cost: &[f64],
    iter_budget: &mut usize,
    total_iters: &mut usize,
    refactor_every: usize,
    ctl: PhaseCtl,
    scratch: &mut SolveScratch,
) -> Result<PhaseEnd, LpError> {
    let m = w.m;
    let mut y = scratch.grab(m);
    let mut ftran = scratch.grab(m);
    let mut cb = scratch.grab(m);
    let mut degen_run = 0usize;
    let mut bland = ctl.force_bland;
    let devex = ctl.pricing == Pricing::Devex && !ctl.force_bland;

    // Candidate-list partial pricing: a refill pass stashes attractive
    // columns; later iterations re-price only the list until it runs dry.
    // The cap scales with the column count (no fixed upper clamp) so big
    // LPs amortize many pivots per refill scan.
    let cand_cap = (w.ncols() / 16).max(10);
    let mut cand: Vec<u32> = Vec::with_capacity(cand_cap);
    // Rotating refill cursor: each refill resumes scanning where the last
    // one stopped, so successive refills cover *fresh* columns instead of
    // re-pricing the same prefix over and over (the staleness that used to
    // force full Dantzig rescans).
    let mut cursor = 0usize;
    // Devex reference weights. The reference framework is the nonbasic set
    // at phase start (all weights 1); it is re-anchored when the weights
    // grow past `DEVEX_RESET`.
    const DEVEX_RESET: f64 = 1e8;
    let mut weights: Vec<f64> = if devex {
        let mut v = scratch.grab(w.ncols());
        v.iter_mut().for_each(|x| *x = 1.0);
        v
    } else {
        Vec::new()
    };
    let mut wmax = 1.0f64;
    let mut devex_row: Vec<f64> = if devex { scratch.grab(m) } else { Vec::new() };

    // The pivot loop runs inside a closure so every exit path (optimal,
    // unbounded, budget, deadline, numerical error) falls through to the
    // buffer stash below.
    let result = (|| loop {
        if *iter_budget == 0 {
            return Ok(PhaseEnd::IterLimit);
        }
        if ctl.past_deadline() {
            return Err(LpError::DeadlineExceeded);
        }
        *iter_budget -= 1;
        *total_iters += 1;

        // BTRAN: y = c_B^T B⁻¹
        for (i, &j) in w.basis.iter().enumerate() {
            cb[i] = cost[j];
        }
        w.engine.btran(&cb, &mut y);

        // Pricing. Candidate scores are |d| under Dantzig and d²/w under
        // devex; either way the largest score enters.
        let score_of = |d_abs: f64, j: usize, weights: &[f64]| -> f64 {
            if devex {
                d_abs * d_abs / weights[j]
            } else {
                d_abs
            }
        };
        let mut enter: Option<(usize, f64, f64)> = None; // (col, score, dir)
        if bland {
            // Bland's rule: full scan, lowest attractive index (anti-cycling
            // depends on the full lowest-index order; no candidate list).
            for j in 0..w.ncols() {
                if let Some((score, dir)) = price_col(w, cost, &y, j) {
                    enter = Some((j, score, dir));
                    break;
                }
            }
        } else {
            if !cand.is_empty() {
                // Price only the candidate list, pruning entries that went
                // basic, fixed, or unattractive since they were collected.
                let mut keep = 0;
                for idx in 0..cand.len() {
                    let j = cand[idx] as usize;
                    if let Some((d_abs, dir)) = price_col(w, cost, &y, j) {
                        cand[keep] = j as u32;
                        keep += 1;
                        let score = score_of(d_abs, j, &weights);
                        match enter {
                            Some((_, best, _)) if score <= best => {}
                            _ => enter = Some((j, score, dir)),
                        }
                    }
                }
                cand.truncate(keep);
                if enter.is_some() {
                    flexile_obs::add("lp.pricing_candidates", 1);
                }
            }
            if enter.is_none() {
                // Incremental refill from the rotating cursor: scan until
                // `cand_cap` attractive columns are found or the scan wraps
                // around. A full wrap that finds nothing is a complete
                // pricing pass at the current duals — the only way this
                // path declares optimality.
                flexile_obs::add("lp.pricing_rescans", 1);
                cand.clear();
                let ncols = w.ncols();
                let mut scanned = 0usize;
                while scanned < ncols && cand.len() < cand_cap {
                    let j = cursor;
                    cursor += 1;
                    if cursor == ncols {
                        cursor = 0;
                    }
                    scanned += 1;
                    if let Some((d_abs, dir)) = price_col(w, cost, &y, j) {
                        cand.push(j as u32);
                        let score = score_of(d_abs, j, &weights);
                        match enter {
                            Some((_, best, _)) if score <= best => {}
                            _ => enter = Some((j, score, dir)),
                        }
                    }
                }
            }
        }
        let (q, _, dir) = match enter {
            Some(e) => e,
            None => return Ok(PhaseEnd::Optimal),
        };

        // FTRAN: w = B⁻¹ a_q
        let col = {
            let mut entries = Vec::new();
            w.for_col(q, |r, v| entries.push((r as u32, v)));
            SparseCol::from_entries(entries)
        };
        w.engine.ftran(&col, &mut ftran);

        // Ratio test: entering moves by t >= 0 in direction `dir`; basic i
        // changes by -dir * t * ftran[i].
        let own_range = w.ub[q] - w.lb[q]; // may be +inf
        let mut t_best = if own_range.is_finite() { own_range } else { f64::INFINITY };
        let mut leave: Option<usize> = None; // basic position; None => bound flip
        let mut leave_pivot = 0.0f64;
        for i in 0..m {
            let delta = dir * ftran[i];
            if delta.abs() < PIVOT_TOL {
                continue;
            }
            let bj = w.basis[i];
            let limit = if delta > 0.0 {
                if w.lb[bj].is_finite() {
                    (w.xb[i] - w.lb[bj]) / delta
                } else {
                    continue;
                }
            } else if w.ub[bj].is_finite() {
                (w.xb[i] - w.ub[bj]) / delta
            } else {
                continue;
            };
            let limit = limit.max(0.0);
            // Prefer strictly smaller ratios; break near-ties toward the
            // larger pivot magnitude for numerical stability (or the smaller
            // column index under Bland's rule).
            let better = if limit < t_best - 1e-10 {
                true
            } else if limit <= t_best + 1e-10 {
                match leave {
                    None => true,
                    Some(cur) => {
                        if bland {
                            w.basis[i] < w.basis[cur]
                        } else {
                            ftran[i].abs() > leave_pivot.abs()
                        }
                    }
                }
            } else {
                false
            };
            if better {
                t_best = limit.min(t_best);
                leave = Some(i);
                leave_pivot = ftran[i];
            }
        }

        if t_best.is_infinite() {
            return Ok(PhaseEnd::Unbounded);
        }

        // Track degeneracy and toggle Bland's rule (sticky in safe mode).
        if t_best < 1e-10 {
            degen_run += 1;
            if degen_run > DEGEN_SWITCH {
                if !bland {
                    flexile_obs::add("lp.bland_activations", 1);
                }
                bland = true;
            }
        } else {
            degen_run = 0;
            bland = ctl.force_bland;
        }

        match leave {
            None => {
                // Bound flip: entering runs to its opposite bound.
                for i in 0..m {
                    w.xb[i] -= dir * t_best * ftran[i];
                }
                w.status[q] = match w.status[q] {
                    VarStatus::AtLower => VarStatus::AtUpper,
                    VarStatus::AtUpper => VarStatus::AtLower,
                    s => s, // free variables have no finite flip; unreachable
                };
            }
            Some(r) => {
                let start = w.nonbasic_value(q);
                for i in 0..m {
                    w.xb[i] -= dir * t_best * ftran[i];
                }
                let leaving = w.basis[r];
                if devex {
                    // Partial devex weight update: the pivot row e_r^T B⁻¹
                    // (taken before the basis changes) gives each candidate's
                    // alpha_j; the reference weight becomes
                    // max(w_j, (alpha_j/alpha_r)² w_q). Restricting the
                    // update to the candidate list keeps the cost at one
                    // unit BTRAN plus a handful of column dots per pivot.
                    let alpha_r = ftran[r];
                    let wq = weights[q];
                    w.engine.btran_unit(r, &mut devex_row);
                    let mut updates = 0u64;
                    for &cj in cand.iter() {
                        let j = cj as usize;
                        if j == q {
                            continue;
                        }
                        let aj = w.col_dot(j, &devex_row);
                        if aj == 0.0 {
                            continue;
                        }
                        let cand_w = (aj / alpha_r) * (aj / alpha_r) * wq;
                        if cand_w > weights[j] {
                            weights[j] = cand_w;
                            wmax = wmax.max(cand_w);
                            updates += 1;
                        }
                    }
                    let wl = (wq / (alpha_r * alpha_r)).max(1.0);
                    weights[leaving] = wl;
                    wmax = wmax.max(wl);
                    flexile_obs::add("lp.devex_updates", updates + 1);
                    if wmax > DEVEX_RESET {
                        // Weights drifted too far from the reference
                        // framework: re-anchor at the current nonbasic set.
                        for wgt in weights.iter_mut() {
                            *wgt = 1.0;
                        }
                        wmax = 1.0;
                    }
                }
                // The leaving variable lands on whichever bound blocked.
                let delta = dir * ftran[r];
                w.status[leaving] =
                    if delta > 0.0 { VarStatus::AtLower } else { VarStatus::AtUpper };
                w.basis[r] = q;
                w.status[q] = VarStatus::Basic;
                w.xb[r] = start + dir * t_best;
                w.engine.update(&ftran, r)?;
                w.pivots_since_refactor += 1;
                if w.pivots_since_refactor >= refactor_every {
                    w.refactorize()?;
                    // Drift check: if the recomputed basic values violate
                    // their bounds, the eta-updated path went numerically
                    // astray; surface it so the caller can retry in safe
                    // mode rather than "optimize" an infeasible iterate.
                    let drift = w.primal_infeas();
                    flexile_obs::observe("lp.refactor_drift", drift);
                    if drift > 1e-6 {
                        return Err(LpError::Numerical(format!(
                            "feasibility drift {drift:.3e} detected at refactorization"
                        )));
                    }
                }
            }
        }
    })();
    scratch.put(y);
    scratch.put(ftran);
    scratch.put(cb);
    if devex {
        scratch.put(weights);
        scratch.put(devex_row);
    }
    result
}

/// Outcome of a dual-simplex feasibility restoration.
enum DualEnd {
    /// Primal feasibility restored; continue with the primal phase 2.
    Feasible,
    /// Dual unbounded ⇒ the primal is infeasible.
    PrimalInfeasible,
    /// Budget exhausted.
    IterLimit,
}

/// Bounded-variable dual simplex: starting from a *dual-feasible* basis
/// (correct reduced-cost signs for every nonbasic status) that is primal
/// infeasible, pivot until the basic values respect their bounds.
///
/// This is the engine behind cross-scenario warm starts: the paper's
/// reformulated subproblem changes only the RHS between scenarios, which
/// preserves dual feasibility exactly, so re-solving is a handful of dual
/// pivots instead of a cold two-phase run.
fn run_dual_phase(
    w: &mut Work,
    cost: &[f64],
    iter_budget: &mut usize,
    total_iters: &mut usize,
    refactor_every: usize,
    ctl: PhaseCtl,
    scratch: &mut SolveScratch,
) -> Result<DualEnd, LpError> {
    let m = w.m;
    let mut y = scratch.grab(m);
    let mut cb = scratch.grab(m);
    let mut row = scratch.grab(m);
    let mut ftran = scratch.grab(m);
    // Long-step ratio-test scratch, hoisted out of the pivot loop.
    let mut bps: Vec<(f64, u32, f64)> = Vec::new(); // (ratio, col, alpha)
    let mut flipped: Vec<usize> = Vec::new();
    let mut delta = scratch.grab(m);
    let mut ftd = scratch.grab(m);

    // Closure so every exit path falls through to the buffer stash.
    let result = (|| loop {
        if *iter_budget == 0 {
            return Ok(DualEnd::IterLimit);
        }
        if ctl.past_deadline() {
            return Err(LpError::DeadlineExceeded);
        }
        *iter_budget -= 1;
        *total_iters += 1;

        // Pick the most violated basic variable.
        let mut leave: Option<(usize, f64, bool)> = None; // (pos, violation, below_lb)
        for (i, &j) in w.basis.iter().enumerate() {
            let below = w.lb[j] - w.xb[i];
            let above = w.xb[i] - w.ub[j];
            if below > FEAS_TOL {
                if leave.is_none_or(|(_, v, _)| below > v) {
                    leave = Some((i, below, true));
                }
            } else if above > FEAS_TOL && leave.is_none_or(|(_, v, _)| above > v) {
                leave = Some((i, above, false));
            }
        }
        let (r, _, below_lb) = match leave {
            Some(l) => l,
            None => return Ok(DualEnd::Feasible),
        };

        // Reduced costs need y = c_B B⁻¹; pivot row needs e_r B⁻¹ (a unit
        // BTRAN, hypersparse under the LU engine).
        for (i, &j) in w.basis.iter().enumerate() {
            cb[i] = cost[j];
        }
        w.engine.btran(&cb, &mut y);
        w.engine.btran_unit(r, &mut row);

        // Long-step (bound-flipping) dual ratio test. The breakpoints are
        // the classic dual ratios |d_j / alpha_j| of every eligible nonbasic
        // column. Walking them in increasing order, a doubly-bounded column
        // whose full bound-to-bound flip cannot absorb the remaining
        // infeasibility is simply flipped to its other bound — its reduced
        // cost changes sign exactly when the dual step crosses its
        // breakpoint, so dual feasibility is preserved — and the walk
        // continues; the first column that can absorb the residual enters.
        // One dual pivot thus crosses many breakpoints, which is what makes
        // the RHS-only scenario restarts cheap when many small bounded
        // columns sit between the old and the new optimum.
        bps.clear();
        for j in 0..w.ncols() {
            if w.status[j] == VarStatus::Basic || w.ub[j] - w.lb[j] <= 0.0 {
                continue;
            }
            let mut alpha = 0.0;
            w.for_col(j, |rr, v| alpha += row[rr] * v);
            if alpha.abs() < PIVOT_TOL {
                continue;
            }
            // xb_r changes by -dir_j · t · alpha_j when j moves by t ≥ 0 in
            // its feasible direction dir_j.
            let eligible = match (w.status[j], below_lb) {
                // Need xb_r to increase.
                (VarStatus::AtLower, true) => alpha < 0.0,
                (VarStatus::AtUpper, true) => alpha > 0.0,
                // Need xb_r to decrease.
                (VarStatus::AtLower, false) => alpha > 0.0,
                (VarStatus::AtUpper, false) => alpha < 0.0,
                (VarStatus::FreeZero, _) => true,
                _ => false,
            };
            if !eligible {
                continue;
            }
            let d = cost[j] - w.col_dot(j, &y);
            bps.push(((d / alpha).abs(), j as u32, alpha));
        }
        // Deterministic walk order: ratio ascending, near-ties broken toward
        // the larger |alpha| (more stable pivot), then the column index.
        bps.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    b.2.abs().partial_cmp(&a.2.abs()).unwrap_or(std::cmp::Ordering::Equal)
                })
                .then(a.1.cmp(&b.1))
        });
        let target = if below_lb { w.lb[w.basis[r]] } else { w.ub[w.basis[r]] };
        let mut need_abs = (target - w.xb[r]).abs();
        let mut enter_q: Option<usize> = None;
        flipped.clear();
        for &(_, cj, alpha) in bps.iter() {
            let j = cj as usize;
            let range = w.ub[j] - w.lb[j];
            // A full flip of j moves xb_r by range · |alpha| in the
            // repairing direction; infinite for free / one-sided columns.
            let gain = range * alpha.abs();
            if gain.is_finite() && gain < need_abs - FEAS_TOL {
                need_abs -= gain;
                flipped.push(j);
            } else {
                enter_q = Some(j);
                break;
            }
        }
        let q = match enter_q {
            Some(q) => q,
            // No eligible column at all, or every one flipped with residual
            // infeasibility left: the dual is unbounded ⇒ primal infeasible.
            None => return Ok(DualEnd::PrimalInfeasible),
        };
        if !flipped.is_empty() {
            // Apply all bound flips with a single dense FTRAN: accumulate
            // the RHS shift Σ_j a_j Δx_j, solve B·d = shift, move the basics.
            for dv in delta.iter_mut() {
                *dv = 0.0;
            }
            for &j in &flipped {
                let range = w.ub[j] - w.lb[j];
                let dx = match w.status[j] {
                    VarStatus::AtLower => {
                        w.status[j] = VarStatus::AtUpper;
                        range
                    }
                    VarStatus::AtUpper => {
                        w.status[j] = VarStatus::AtLower;
                        -range
                    }
                    _ => 0.0, // unreachable: only doubly-bounded columns flip
                };
                w.for_col(j, |rr, v| delta[rr] += v * dx);
            }
            w.engine.ftran_dense(&delta, &mut ftd);
            for i in 0..m {
                w.xb[i] -= ftd[i];
            }
            flexile_obs::add("lp.dual_bound_flips", flipped.len() as u64);
        }

        // Primal step: move q so that xb_r lands exactly on its violated
        // bound (xb_r re-read after the flips shifted it). dir and step
        // follow from alpha's sign.
        let col = {
            let mut entries = Vec::new();
            w.for_col(q, |rr, v| entries.push((rr as u32, v)));
            SparseCol::from_entries(entries)
        };
        w.engine.ftran(&col, &mut ftran);
        // xb_r + (-dir t alpha) = target, with |ftran[r]| == |alpha|.
        let need = target - w.xb[r];
        let dir_t = -need / ftran[r]; // dir * t
        let start = w.nonbasic_value(q);
        for i in 0..m {
            w.xb[i] -= dir_t * ftran[i];
        }
        let leaving = w.basis[r];
        w.status[leaving] = if below_lb { VarStatus::AtLower } else { VarStatus::AtUpper };
        w.basis[r] = q;
        w.status[q] = VarStatus::Basic;
        w.xb[r] = start + dir_t;
        w.engine.update(&ftran, r)?;
        w.pivots_since_refactor += 1;
        if w.pivots_since_refactor >= refactor_every {
            w.refactorize()?;
        }
    })();
    scratch.put(y);
    scratch.put(cb);
    scratch.put(row);
    scratch.put(ftran);
    scratch.put(delta);
    scratch.put(ftd);
    result
}

/// Whether the current basis is dual feasible for `cost` (reduced costs
/// have the right sign for every nonbasic status). Takes `&mut Work` only
/// because the engine's BTRAN reuses internal scratch space.
fn dual_feasible(w: &mut Work, cost: &[f64]) -> bool {
    let m = w.m;
    let mut cb = vec![0.0; m];
    for (i, &j) in w.basis.iter().enumerate() {
        cb[i] = cost[j];
    }
    let mut y = vec![0.0; m];
    w.engine.btran(&cb, &mut y);
    for j in 0..w.ncols() {
        if w.status[j] == VarStatus::Basic || w.ub[j] - w.lb[j] <= 0.0 {
            continue;
        }
        let d = cost[j] - w.col_dot(j, &y);
        let ok = match w.status[j] {
            VarStatus::AtLower => d >= -DUAL_TOL * 10.0,
            VarStatus::AtUpper => d <= DUAL_TOL * 10.0,
            VarStatus::FreeZero => d.abs() <= DUAL_TOL * 10.0,
            VarStatus::Basic => true,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Solve `model`, optionally warm-starting from `warm`.
///
/// On a numerical failure (feasibility drift, singular basis) the solve is
/// retried from a cold start with a much shorter refactorization interval;
/// only a second failure is surfaced to the caller.
pub fn solve(
    model: &Model,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    match solve_attempt(model, opts, warm, opts.refactor_every.unwrap_or(REFACTOR_EVERY)) {
        Err(LpError::Numerical(_)) => {
            // Retry on the conservative rule set: Dantzig pricing (no weight
            // state to go stale) and a short refactorization interval. This
            // mirrors rung 2 of [`crate::solve_robust`], so the internal
            // retry and the ladder rung stay behaviourally identical.
            let retry = SimplexOptions { pricing: Pricing::Dantzig, ..*opts };
            solve_attempt(model, &retry, None, 8)
        }
        other => other,
    }
}

/// Run exactly one solve attempt, with no internal numerical retry. The
/// escalation ladder in [`crate::solve_robust`] uses this so each rung is
/// one attempt (and one fault-injection poll).
pub(crate) fn solve_single(
    model: &Model,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    solve_attempt(model, opts, warm, opts.refactor_every.unwrap_or(REFACTOR_EVERY))
}

/// Solve a model whose only change since `warm` was captured is the RHS
/// (the paper's reformulated per-scenario subproblem: criticality rows and
/// capacity rows move, the matrix / bounds / objective do not).
///
/// An RHS-only delta preserves dual feasibility of the saved basis *by
/// construction*, so this entry point skips the O(cols) dual-feasibility
/// scan and goes straight to the dual-simplex repair when the basis is no
/// longer primal feasible. Exactly one attempt (one fault-injection poll),
/// no internal numerical retry: callers that want the escalation ladder
/// fall back to [`crate::solve_robust`] on a retryable error. Returns the
/// solution together with how the restart was actually satisfied.
pub fn solve_rhs_restart(
    model: &Model,
    opts: &SimplexOptions,
    warm: &Basis,
) -> Result<(Solution, RestartKind), LpError> {
    let mut scratch = SolveScratch::new();
    solve_rhs_restart_with(model, opts, warm, &mut scratch)
}

/// [`solve_rhs_restart`] with caller-owned scratch buffers, so a worker
/// performing many restarts back to back (the decomposition pool) reuses
/// its FTRAN/BTRAN work vectors instead of reallocating them per solve.
pub fn solve_rhs_restart_with(
    model: &Model,
    opts: &SimplexOptions,
    warm: &Basis,
    scratch: &mut SolveScratch,
) -> Result<(Solution, RestartKind), LpError> {
    solve_attempt_traced(
        model,
        opts,
        Some(warm),
        opts.refactor_every.unwrap_or(REFACTOR_EVERY),
        true,
        scratch,
        true,
    )
}

/// Solve a block of RHS-only scenario restarts against one shared model.
///
/// Semantically this is bit-identical to installing each member's RHS into
/// `model` and calling [`solve_rhs_restart`] per member, in member order —
/// same solutions, same fault-injection poll sequence, same warm hit/miss
/// accounting. What changes is cost: members whose warm bases are
/// *identical* (the common case when a template's scenarios re-solve after
/// a master iteration that left their optima unchanged) are verified
/// through one shared refactorization, one SoA block FTRAN
/// ([`crate::sparse::RhsBlock`]) and one shared pricing BTRAN, instead of a
/// refactorization plus three triangular solves per member. Members the
/// fast path cannot certify — the shared basis prices non-optimal, or a
/// member's RHS leaves it primal infeasible — fall back to the scalar
/// restart path individually (counted in `lp.batch_divergences`).
///
/// `model.rhs` is restored to its entry state before returning.
pub fn solve_rhs_batch(
    model: &mut Model,
    opts: &SimplexOptions,
    members: &[RhsBatchMember<'_>],
    scratch: &mut SolveScratch,
) -> Vec<Result<(Solution, RestartKind), LpError>> {
    flexile_obs::add("lp.batch_solves", 1);
    let refactor_every = opts.refactor_every.unwrap_or(REFACTOR_EVERY);
    let mut span = flexile_obs::span("lp.solve_batch", "lp")
        .field("rows", model.num_rows())
        .field("members", members.len());

    // Bucket members by *identical* warm basis: fingerprint as prefilter,
    // true equality against the bucket leader as the decider.
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    let mut prints: Vec<u64> = Vec::new();
    for (mi, mem) in members.iter().enumerate() {
        let fp = mem.warm.fingerprint();
        let mut placed = false;
        for (bi, bucket) in buckets.iter_mut().enumerate() {
            if prints[bi] != fp {
                continue;
            }
            let leader = members[bucket[0]].warm;
            if leader.basis == mem.warm.basis && leader.status == mem.warm.status {
                bucket.push(mi);
                placed = true;
                break;
            }
        }
        if !placed {
            buckets.push(vec![mi]);
            prints.push(fp);
        }
    }

    // Joint fast path per bucket (model borrowed immutably throughout).
    let mut joint: Vec<Option<(Solution, RestartKind)>> =
        members.iter().map(|_| None).collect();
    for bucket in &buckets {
        flexile_obs::observe("lp.batch_width", bucket.len() as f64);
        if let Some(res) = batch_warm_attempt(model, opts, members, bucket, scratch) {
            for (lane, r) in res.into_iter().enumerate() {
                joint[bucket[lane]] = r;
            }
        }
    }

    // Emit in member order. Exactly one fault poll per member — the same
    // sequence the scalar loop would consume — and uncertified members
    // re-solve through the scalar restart path with their RHS installed.
    let entry_rhs = model.rhs.clone();
    let mut divergences = 0usize;
    let mut results = Vec::with_capacity(members.len());
    for (mi, mem) in members.iter().enumerate() {
        if let Some(kind) = crate::fault::poll() {
            results.push(Err(kind.to_error()));
            continue;
        }
        if opts.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            results.push(Err(LpError::DeadlineExceeded));
            continue;
        }
        match joint[mi].take() {
            Some(sr) => {
                flexile_obs::add("lp.warm.hit", 1);
                results.push(Ok(sr));
            }
            None => {
                flexile_obs::add("lp.batch_divergences", 1);
                divergences += 1;
                model.rhs.clear();
                model.rhs.extend_from_slice(mem.rhs);
                results.push(solve_attempt_traced(
                    model,
                    opts,
                    Some(mem.warm),
                    refactor_every,
                    true,
                    scratch,
                    false,
                ));
            }
        }
    }
    model.rhs.clear();
    model.rhs.extend_from_slice(&entry_rhs);
    span.set("divergences", divergences);
    results
}

/// Try to satisfy every member of one equal-basis bucket through a single
/// shared factorization. Returns `None` when the whole bucket must take the
/// scalar path (bad warm shape, bad bounds, singular refactorization, or
/// the basis prices non-optimal — every case where the scalar path would do
/// real pivot work). Individual `None` entries mark members whose RHS
/// leaves the shared basis primal infeasible; they need dual pivots of
/// their own and fall back one by one.
fn batch_warm_attempt(
    model: &Model,
    opts: &SimplexOptions,
    members: &[RhsBatchMember<'_>],
    bucket: &[usize],
    scratch: &mut SolveScratch,
) -> Option<Vec<Option<(Solution, RestartKind)>>> {
    let n = model.num_vars();
    let m = model.num_rows();
    let warm = members[bucket[0]].warm;
    if warm.basis.len() != m
        || warm.status.len() < n + m
        || warm.basis.iter().any(|&j| j >= n + m)
    {
        return None;
    }
    for j in 0..n {
        if model.lb[j] > model.ub[j] + 1e-12 {
            return None;
        }
    }
    if bucket.iter().any(|&mi| members[mi].rhs.len() != m) {
        return None;
    }
    let sign = match model.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let mut lb = Vec::with_capacity(n + m);
    let mut ub = Vec::with_capacity(n + m);
    lb.extend_from_slice(&model.lb);
    ub.extend_from_slice(&model.ub);
    for i in 0..m {
        match model.row_cmp[i] {
            Cmp::Le => {
                lb.push(0.0);
                ub.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lb.push(f64::NEG_INFINITY);
                ub.push(0.0);
            }
            Cmp::Eq => {
                lb.push(0.0);
                ub.push(0.0);
            }
        }
    }
    let mut cost2 = vec![0.0; n + m];
    for j in 0..n {
        cost2[j] = sign * model.obj[j];
    }
    let mut w = Work {
        model,
        n,
        m,
        arts: Vec::new(),
        lb,
        ub,
        cost2,
        basis: warm.basis.clone(),
        status: warm.status[..n + m].to_vec(),
        engine: make_engine(opts.engine),
        xb: vec![0.0; m],
        rhs_scratch: Vec::with_capacity(m),
        pivots_since_refactor: 0,
    };
    // Repair statuses exactly as the scalar warm path does.
    for j in 0..n + m {
        if w.status[j] == VarStatus::Basic {
            continue;
        }
        w.status[j] = initial_status(w.lb[j], w.ub[j], w.status[j]);
    }
    if w.refactor_basis().is_err() {
        return None;
    }

    // One block FTRAN computes every member's basic values.
    let k = bucket.len();
    let mut block = RhsBlock::new(m, k);
    for (lane, &mi) in bucket.iter().enumerate() {
        w.reduced_rhs_with(members[mi].rhs);
        block.load_lane(lane, &w.rhs_scratch);
    }
    w.engine.ftran_dense_block(&mut block);

    // Shared pricing: reduced costs depend on the basis, bounds and costs —
    // not the RHS — so one full pricing scan answers "would the scalar
    // phase 2 pivot at all?" for every member at once. Any attractive
    // column sends the whole bucket down the scalar path. (The BTRAN here
    // is bitwise the same one the scalar extraction performs, so `y` is
    // reused as every member's dual vector.)
    let mut cb = scratch.grab(m);
    for (i, &j) in w.basis.iter().enumerate() {
        cb[i] = w.cost2[j];
    }
    let mut y = scratch.grab(m);
    w.engine.btran(&cb, &mut y);
    let clean = (0..w.ncols()).all(|j| price_col(&w, &w.cost2, &y, j).is_none());
    if !clean {
        scratch.put(cb);
        scratch.put(y);
        return None;
    }

    // Shared pieces of every member's Solution.
    let mut x_shared = vec![0.0; n];
    for j in 0..n {
        if w.status[j] != VarStatus::Basic {
            x_shared[j] = w.nonbasic_value(j);
        }
    }
    let mut duals = y.clone();
    if sign < 0.0 {
        duals.iter_mut().for_each(|v| *v = -*v);
    }
    let basis_shared = Basis {
        basis: w.basis.clone(),
        status: w.status[..n + m].to_vec(),
    };
    let mut out = Vec::with_capacity(k);
    for lane in 0..k {
        let mut worst: f64 = 0.0;
        for (i, &j) in w.basis.iter().enumerate() {
            let xv = block.get(i, lane);
            worst = worst.max(w.lb[j] - xv).max(xv - w.ub[j]);
        }
        if worst > 1e-6 {
            // The scalar path would dual-restart this member.
            out.push(None);
            continue;
        }
        let mut x = x_shared.clone();
        for (i, &j) in w.basis.iter().enumerate() {
            if j < n {
                x[j] = block.get(i, lane);
            }
        }
        let objective = model.eval_objective(&x);
        out.push(Some((
            Solution {
                status: SolveStatus::Optimal,
                x,
                objective,
                duals: duals.clone(),
                iterations: 1,
                basis: basis_shared.clone(),
            },
            RestartKind::PrimalWarm,
        )));
    }
    scratch.put(cb);
    scratch.put(y);
    Some(out)
}

fn solve_attempt(
    model: &Model,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    refactor_every: usize,
) -> Result<Solution, LpError> {
    // Presolve hook: cold solves only (a warm basis addresses the full
    // column space) and never on the Bland-safe path, which must run the
    // textbook algorithm unmodified. Exactly one fault-injection poll
    // happens per attempt either way: `try_solve_presolved` polls (directly
    // for terminal presolve outcomes, via the inner reduced solve
    // otherwise), and when it declines with `None` the poll happens in
    // `solve_attempt_traced` below.
    if opts.presolve && warm.is_none() && !opts.force_bland {
        if let Some(sol) = crate::presolve::try_solve_presolved(model, opts, refactor_every)? {
            return Ok(sol);
        }
    }
    let mut scratch = SolveScratch::new();
    solve_attempt_traced(model, opts, warm, refactor_every, false, &mut scratch, true)
        .map(|(sol, _)| sol)
}

/// Solve an already-presolved model directly, bypassing the presolve hook
/// (recursing through it would re-run the reductions on their own output).
pub(crate) fn solve_reduced(
    model: &Model,
    opts: &SimplexOptions,
    refactor_every: usize,
) -> Result<Solution, LpError> {
    let mut scratch = SolveScratch::new();
    solve_attempt_traced(model, opts, None, refactor_every, false, &mut scratch, true)
        .map(|(sol, _)| sol)
}

fn solve_attempt_traced(
    model: &Model,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    refactor_every: usize,
    rhs_only: bool,
    scratch: &mut SolveScratch,
    poll: bool,
) -> Result<(Solution, RestartKind), LpError> {
    if poll {
        if let Some(kind) = crate::fault::poll() {
            return Err(kind.to_error());
        }
    }
    let ctl = PhaseCtl {
        deadline: opts.deadline,
        force_bland: opts.force_bland,
        pricing: resolve_pricing(opts.pricing, model, warm.is_some()),
    };
    if ctl.past_deadline() {
        return Err(LpError::DeadlineExceeded);
    }
    let n = model.num_vars();
    let m = model.num_rows();
    let mut solve_span = flexile_obs::span("lp.solve", "lp").field("rows", m).field("cols", n);
    for j in 0..n {
        if model.lb[j] > model.ub[j] + 1e-12 {
            return Err(LpError::BadModel(format!(
                "variable {} has lb {} > ub {}",
                model.names[j], model.lb[j], model.ub[j]
            )));
        }
    }

    // Minimization form.
    let sign = match model.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };

    // Column bounds: structural then slacks.
    let mut lb = Vec::with_capacity(n + m);
    let mut ub = Vec::with_capacity(n + m);
    lb.extend_from_slice(&model.lb);
    ub.extend_from_slice(&model.ub);
    for i in 0..m {
        match model.row_cmp[i] {
            Cmp::Le => {
                lb.push(0.0);
                ub.push(f64::INFINITY);
            }
            Cmp::Ge => {
                lb.push(f64::NEG_INFINITY);
                ub.push(0.0);
            }
            Cmp::Eq => {
                lb.push(0.0);
                ub.push(0.0);
            }
        }
    }
    let mut cost2 = vec![0.0; n + m];
    for j in 0..n {
        cost2[j] = sign * model.obj[j];
    }

    let mut w = Work {
        model,
        n,
        m,
        arts: Vec::new(),
        lb,
        ub,
        cost2,
        basis: (n..n + m).collect(),
        status: Vec::new(),
        engine: make_engine(opts.engine),
        xb: vec![0.0; m],
        rhs_scratch: Vec::with_capacity(m),
        pivots_since_refactor: 0,
    };

    let max_iters = if opts.max_iters == 0 {
        50 * (n + m) + 10_000
    } else {
        opts.max_iters
    };
    let mut budget = max_iters;
    let mut total_iters = 0usize;

    // Try the warm basis first.
    let mut warm_ok = false;
    let mut restart_kind = RestartKind::Cold;
    if let Some(b) = warm {
        if b.basis.len() == m
            && b.status.len() >= n + m
            && b.basis.iter().all(|&j| j < n + m)
        {
            w.basis = b.basis.clone();
            w.status = b.status[..n + m].to_vec();
            // Repair statuses against possibly-changed bounds.
            for j in 0..n + m {
                if w.status[j] == VarStatus::Basic {
                    continue;
                }
                w.status[j] = initial_status(w.lb[j], w.ub[j], w.status[j]);
            }
            if w.refactorize().is_ok() {
                if w.primal_infeas() <= 1e-6 {
                    warm_ok = true;
                    restart_kind = RestartKind::PrimalWarm;
                } else {
                    // RHS/bound changes broke primal feasibility. If the
                    // basis is still dual feasible (always true when only
                    // the RHS changed — the cross-scenario case, which the
                    // caller can assert via `rhs_only` to skip the scan),
                    // restore feasibility with dual-simplex pivots.
                    let cost_now = {
                        let mut c = w.cost2.clone();
                        c.resize(w.ncols(), 0.0);
                        c
                    };
                    if rhs_only || dual_feasible(&mut w, &cost_now) {
                        flexile_obs::add("lp.dual_restarts", 1);
                        let dual_from = total_iters;
                        match run_dual_phase(
                            &mut w,
                            &cost_now,
                            &mut budget,
                            &mut total_iters,
                            refactor_every,
                            ctl,
                            scratch,
                        ) {
                            Ok(DualEnd::Feasible) => {
                                warm_ok = true;
                                restart_kind = RestartKind::DualRestart;
                            }
                            Ok(DualEnd::PrimalInfeasible) => return Err(LpError::Infeasible),
                            Ok(DualEnd::IterLimit) => {}
                            // A cold start cannot beat an expired clock.
                            Err(e @ LpError::DeadlineExceeded) => return Err(e),
                            Err(_) => {} // fall back to a cold start
                        }
                        flexile_obs::add("lp.pivots.dual", (total_iters - dual_from) as u64);
                    }
                }
            }
        }
    }

    if warm.is_some() {
        flexile_obs::add(if warm_ok { "lp.warm.hit" } else { "lp.warm.miss" }, 1);
    }

    if !warm_ok {
        // Cold start: all-slack basis, structurals at the bound nearest zero.
        w.basis = (n..n + m).collect();
        w.status = (0..n + m)
            .map(|j| {
                if j >= n {
                    VarStatus::Basic
                } else {
                    initial_status(w.lb[j], w.ub[j], VarStatus::AtLower)
                }
            })
            .collect();
        // Crash: greedily flip doubly-bounded structurals to whichever bound
        // leaves fewer slack rows violated, so fewer artificials get
        // installed below and phase 1 starts near-feasible. Statuses are
        // only rewritten where the crash actually chose a different side.
        if opts.crash && !ctl.force_bland {
            let mut at_upper: Vec<bool> =
                (0..n).map(|j| w.status[j] == VarStatus::AtUpper).collect();
            let stats = crate::crash::bound_shift(model, &w.lb, &w.ub, &mut at_upper);
            if stats.flips > 0 {
                for j in 0..n {
                    let cur_up = w.status[j] == VarStatus::AtUpper;
                    if at_upper[j] != cur_up && w.status[j] != VarStatus::FreeZero {
                        w.status[j] =
                            if at_upper[j] { VarStatus::AtUpper } else { VarStatus::AtLower };
                    }
                }
                flexile_obs::add("lp.crash_basis_pivots_saved", stats.rows_fixed as u64);
            }
        }
        // B = I for the all-slack basis, so the basic values are just the
        // reduced RHS — no factorization needed to compute them.
        w.reduced_rhs();
        w.xb.copy_from_slice(&w.rhs_scratch);

        // Install artificials for slack-infeasible rows.
        let mut need_phase1 = false;
        for i in 0..m {
            let s = n + i;
            let v = w.xb[i];
            if v > w.ub[s] + FEAS_TOL {
                // Slack forced to its upper bound; artificial absorbs v - ub.
                let excess = v - w.ub[s];
                w.status[s] = VarStatus::AtUpper;
                let a = w.ncols();
                w.arts.push((i, 1.0));
                w.lb.push(0.0);
                w.ub.push(f64::INFINITY);
                w.cost2.push(0.0);
                w.status.push(VarStatus::Basic);
                w.basis[i] = a;
                w.xb[i] = excess;
                need_phase1 = true;
            } else if v < w.lb[s] - FEAS_TOL {
                let deficit = w.lb[s] - v;
                w.status[s] = VarStatus::AtLower;
                let a = w.ncols();
                w.arts.push((i, -1.0));
                w.lb.push(0.0);
                w.ub.push(f64::INFINITY);
                w.cost2.push(0.0);
                w.status.push(VarStatus::Basic);
                w.basis[i] = a;
                w.xb[i] = deficit;
                need_phase1 = true;
            }
        }
        // Factorize the (possibly artificial-patched ±identity) start basis
        // so the engine is live before the first pivot. Cannot fail: every
        // column is a signed unit vector.
        w.refactorize()?;

        if need_phase1 {
            let mut cost1 = vec![0.0; w.ncols()];
            for j in n + m..w.ncols() {
                cost1[j] = 1.0;
            }
            let p1_from = total_iters;
            match run_phase(&mut w, &cost1, &mut budget, &mut total_iters, refactor_every, ctl, scratch)?
            {
                PhaseEnd::Optimal => {}
                PhaseEnd::Unbounded => {
                    return Err(LpError::Numerical("phase 1 unbounded".into()))
                }
                PhaseEnd::IterLimit => return Err(LpError::IterationLimit),
            }
            flexile_obs::add("lp.pivots.phase1", (total_iters - p1_from) as u64);
            let infeas = w.objective_of(&cost1);
            if infeas > 1e-6 {
                return Err(LpError::Infeasible);
            }
            // Freeze artificials at zero for phase 2.
            for j in n + m..w.ncols() {
                w.lb[j] = 0.0;
                w.ub[j] = 0.0;
                if w.status[j] != VarStatus::Basic {
                    w.status[j] = VarStatus::AtLower;
                }
            }
        }
    }

    // Phase 2.
    let cost2 = {
        let mut c = w.cost2.clone();
        c.resize(w.ncols(), 0.0);
        c
    };
    let p2_from = total_iters;
    match run_phase(&mut w, &cost2, &mut budget, &mut total_iters, refactor_every, ctl, scratch)? {
        PhaseEnd::Optimal => {}
        PhaseEnd::Unbounded => return Err(LpError::Unbounded),
        PhaseEnd::IterLimit => return Err(LpError::IterationLimit),
    }
    flexile_obs::add("lp.pivots.phase2", (total_iters - p2_from) as u64);

    // Numerical hygiene: refactorize once and verify — but only when eta
    // updates have actually accumulated since the last factorization. A
    // solve that ended on a refactorization boundary (or did no pivots at
    // all, the common warm-hit case) has a fresh factorization with nothing
    // to verify, and the redundant rebuild was a measurable fraction of the
    // 1.2M refactorizations in the warm_restart record.
    if w.pivots_since_refactor > 0 {
        w.refactorize()?;
        if w.primal_infeas() > 1e-5 {
            return Err(LpError::Numerical(format!(
                "primal infeasibility {} after optimization",
                w.primal_infeas()
            )));
        }
    }

    // Extract the solution.
    let mut x = vec![0.0; n];
    for j in 0..n {
        if w.status[j] != VarStatus::Basic {
            x[j] = w.nonbasic_value(j);
        }
    }
    for (i, &j) in w.basis.iter().enumerate() {
        if j < n {
            x[j] = w.xb[i];
        }
    }
    // Duals: y = c_B^T B⁻¹ in min form; flip for Max.
    let mut cb = scratch.grab(m);
    for (i, &j) in w.basis.iter().enumerate() {
        cb[i] = cost2[j];
    }
    let mut y = vec![0.0; m];
    w.engine.btran(&cb, &mut y);
    scratch.put(cb);
    if sign < 0.0 {
        y.iter_mut().for_each(|v| *v = -*v);
    }

    flexile_obs::observe("lp.solve_us", solve_span.elapsed_us() as f64);
    solve_span.set("iterations", total_iters);
    let objective = model.eval_objective(&x);
    let basis = Basis {
        basis: w.basis.clone(),
        status: w.status[..n + m].to_vec(),
    };
    Ok((
        Solution {
            status: SolveStatus::Optimal,
            x,
            objective,
            duals: y,
            iterations: total_iters,
            basis,
        },
        restart_kind,
    ))
}

fn initial_status(lb: f64, ub: f64, prefer: VarStatus) -> VarStatus {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if prefer == VarStatus::AtUpper {
                VarStatus::AtUpper
            } else {
                VarStatus::AtLower
            }
        }
        (true, false) => VarStatus::AtLower,
        (false, true) => VarStatus::AtUpper,
        (false, false) => VarStatus::FreeZero,
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_max() {
        // max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6)
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn min_with_ge_rows_needs_phase1() {
        // min 2x + 3y st x + y >= 10, x >= 2, y >= 3 -> x=7,y=3 obj 23
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_row_ge(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_row_ge(&[(x, 1.0)], 2.0);
        m.add_row_ge(&[(y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 23.0);
    }

    #[test]
    fn equality_rows() {
        // min x + y st x + 2y = 4, x - y = 1 -> x=2, y=1
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_row_eq(&[(x, 1.0), (y, 2.0)], 4.0);
        m.add_row_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_row_ge(&[(x, 1.0)], 2.0);
        assert!(matches!(m.solve(), Err(crate::LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_row_ge(&[(x, 1.0), (y, -1.0)], 0.0);
        assert!(matches!(m.solve(), Err(crate::LpError::Unbounded)));
    }

    #[test]
    fn bounded_variables_and_flips() {
        // max x + y with 0<=x<=2, 0<=y<=3, x + y <= 4 -> (1,3) or (2,2), obj 4
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 3.0, 1.0);
        m.add_row_le(&[(x, 1.0), (y, 1.0)], 4.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn free_variable() {
        // min |structure|: x free, min x st x >= -5 -> x = -5
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_row_ge(&[(x, 1.0)], -5.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), -5.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y with x in [-3, -1], y in [2, 10], x + y >= 0
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", -3.0, -1.0, 1.0);
        let y = m.add_var("y", 2.0, 10.0, 1.0);
        m.add_row_ge(&[(x, 1.0), (y, 1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn duals_shadow_price() {
        // max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18; duals: 0, 1.5, 1
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        let r1 = m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        let r3 = m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve().unwrap();
        assert_close(s.dual(r1), 0.0);
        assert_close(s.dual(r2), 1.5);
        assert_close(s.dual(r3), 1.0);
    }

    #[test]
    fn warm_start_reuses_basis() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s1 = m.solve().unwrap();
        // Perturb the RHS slightly and re-solve warm: should take few iters.
        m.set_rhs(r2, 11.0);
        let s2 = m
            .solve_with(&crate::SimplexOptions::default(), Some(&s1.basis))
            .unwrap();
        assert_close(s2.objective, 3.0 * (7.0 / 3.0) + 5.0 * 5.5);
        assert!(s2.iterations <= s1.iterations + 2);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate LP (multiple rows binding at the origin).
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = m.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = m.add_var("z", 0.0, f64::INFINITY, 0.02);
        let u = m.add_var("u", 0.0, f64::INFINITY, -6.0);
        m.add_row_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (u, 9.0)], 0.0);
        m.add_row_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (u, 3.0)], 0.0);
        m.add_row_le(&[(z, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn negative_rhs_le_row_needs_negative_artificial() {
        // Regression: a `<=` row with negative RHS starts with a deficit
        // slack and needs a -1 artificial; the basis inverse must flip
        // that row's sign. min x + y st -x - y <= -15, x,y <= 10.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_row_le(&[(x, -1.0), (y, -1.0)], -15.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 15.0);
        assert!(m.max_violation(&s.x) < 1e-6);
    }

    #[test]
    fn dual_simplex_restores_feasibility_after_rhs_cut() {
        // Tighten a binding RHS: the warm basis goes primal infeasible but
        // stays dual feasible, so the dual phase should repair it in a few
        // pivots and agree with the cold solve.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        let r3 = m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s1 = m.solve().unwrap();
        // Capacity drop, as when a scenario fails links: both rows tighten.
        m.set_rhs(r2, 6.0);
        m.set_rhs(r3, 12.0);
        let warm = m
            .solve_with(&crate::SimplexOptions::default(), Some(&s1.basis))
            .unwrap();
        let cold = m.solve().unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(m.max_violation(&warm.x) < 1e-6);
        assert!(
            warm.iterations <= cold.iterations,
            "dual warm restart ({}) should not exceed cold ({})",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn dual_simplex_detects_infeasible_rhs() {
        // x <= 4 tightened to an impossible combination with x >= 6.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let r1 = m.add_row_le(&[(x, 1.0)], 10.0);
        m.add_row_ge(&[(x, 1.0)], 6.0);
        let s1 = m.solve().unwrap();
        m.set_rhs(r1, 4.0);
        let res = m.solve_with(&crate::SimplexOptions::default(), Some(&s1.basis));
        assert!(matches!(res, Err(crate::LpError::Infeasible)), "{res:?}");
    }

    #[test]
    fn rhs_sweep_warm_matches_cold() {
        // Sweep a capacity through many values (the per-scenario pattern):
        // warm-restarted objectives must track cold solves exactly.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 8.0, 2.0);
        let y = m.add_var("y", 0.0, 8.0, 1.0);
        let cap = m.add_row_le(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_row_le(&[(x, 2.0), (y, 1.0)], 14.0);
        let mut basis = None;
        for c in [10.0, 7.5, 5.0, 2.5, 0.0, 6.0, 9.0] {
            m.set_rhs(cap, c);
            let warm = m
                .solve_with(&crate::SimplexOptions::default(), basis.as_ref())
                .unwrap();
            let cold = m.solve().unwrap();
            assert_close(warm.objective, cold.objective);
            basis = Some(warm.basis);
        }
    }

    #[test]
    fn rhs_restart_reports_primal_warm_on_unchanged_rhs() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s1 = m.solve().unwrap();
        let (s2, kind) = m
            .solve_rhs_restart(&crate::SimplexOptions::default(), &s1.basis)
            .unwrap();
        assert_eq!(kind, crate::simplex::RestartKind::PrimalWarm);
        assert_close(s2.objective, s1.objective);
        // At most a degenerate touch-up pivot; no cold two-phase work.
        assert!(s2.iterations <= 1, "iterations = {}", s2.iterations);
    }

    #[test]
    fn rhs_restart_reports_dual_restart_and_matches_cold() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 8.0, 2.0);
        let y = m.add_var("y", 0.0, 8.0, 1.0);
        let cap = m.add_row_le(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_row_le(&[(x, 2.0), (y, 1.0)], 14.0);
        let s1 = m.solve().unwrap();
        // Tighten the capacity: the old optimal basis goes primal infeasible
        // but stays dual feasible, so the repair must go through the dual
        // simplex — and land on the same optimum as a cold solve.
        m.set_rhs(cap, 5.0);
        let (warm, kind) = m
            .solve_rhs_restart(&crate::SimplexOptions::default(), &s1.basis)
            .unwrap();
        assert_eq!(kind, crate::simplex::RestartKind::DualRestart);
        let cold = m.solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(m.max_violation(&warm.x) < 1e-6);
    }

    #[test]
    fn rhs_restart_detects_infeasible_rhs() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let r1 = m.add_row_le(&[(x, 1.0)], 10.0);
        m.add_row_ge(&[(x, 1.0)], 6.0);
        let s1 = m.solve().unwrap();
        m.set_rhs(r1, 4.0);
        let res = m.solve_rhs_restart(&crate::SimplexOptions::default(), &s1.basis);
        assert!(matches!(res, Err(crate::LpError::Infeasible)), "{res:?}");
    }

    #[test]
    fn fixed_variable_is_respected() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_row_le(&[(x, 1.0), (y, 1.0)], 5.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn dense_engine_remains_selectable() {
        use crate::basis::EngineKind;
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let opts = crate::SimplexOptions { engine: EngineKind::Dense, ..Default::default() };
        let dense = m.solve_with(&opts, None).unwrap();
        let lu = m.solve().unwrap();
        assert_close(dense.objective, 36.0);
        assert!((dense.objective - lu.objective).abs() < 1e-9);
        for (a, b) in dense.x.iter().zip(lu.x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in dense.duals.iter().zip(lu.duals.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_basis_transfers_between_engines() {
        // A basis snapshot is representation-free: a solve on one engine can
        // warm-start the other.
        use crate::basis::EngineKind;
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_row_le(&[(x, 1.0)], 4.0);
        let r2 = m.add_row_le(&[(y, 2.0)], 12.0);
        m.add_row_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let dense_opts =
            crate::SimplexOptions { engine: EngineKind::Dense, ..Default::default() };
        let s1 = m.solve_with(&dense_opts, None).unwrap();
        m.set_rhs(r2, 11.0);
        let s2 = m
            .solve_with(&crate::SimplexOptions::default(), Some(&s1.basis))
            .unwrap();
        assert_close(s2.objective, 3.0 * (7.0 / 3.0) + 5.0 * 5.5);
        assert!(s2.iterations <= s1.iterations + 2);
    }
}
