//! Escalating solve ladder with an auditable report.
//!
//! [`solve_robust`] wraps the simplex in four escalation rungs, each one
//! trading speed for numerical robustness:
//!
//! 1. **Warm** — the caller's options and warm basis: devex pricing,
//!    presolve on cold starts, default refactorization interval. Identical
//!    to the first attempt of [`crate::Model::solve`].
//! 2. **ColdRefactor** — cold start, Dantzig pricing (no devex weight
//!    state), refactorize every 8 pivots. Identical to the internal retry
//!    of [`crate::Model::solve`], so a zero-fault `solve_robust`
//!    reproduces `solve` bit for bit.
//! 3. **BlandSafe** — cold start, Bland's rule from the first pivot, tight
//!    refactorization, on the *dense* basis engine
//!    ([`crate::EngineKind::Dense`]). Cycle-proof and independent of the
//!    default sparse-LU representation, so a numerical failure inside the
//!    LU/eta path cannot recur here; the slowest exact mode.
//! 4. **Perturb** — solve a copy with deterministically jittered finite
//!    bounds/RHS to break pathological degeneracy, then re-solve the
//!    original warm from the perturbed basis. If even the clean-up solve
//!    fails, the perturbed solution itself is returned (feasible for the
//!    original up to the perturbation magnitude).
//!
//! Escalation happens only on retryable errors ([`LpError::Numerical`],
//! [`LpError::IterationLimit`]); verdicts about the model itself
//! (infeasible, unbounded, malformed) and deadline exhaustion are terminal
//! immediately. Every attempt — its rung and its error, if any — is
//! recorded in the returned [`SolveReport`], which is what lets the online
//! controller's degradation chain (and the chaos tests) assert exactly
//! which rung rescued a faulted solve.

use crate::budget::SolveBudget;
use crate::error::LpError;
use crate::model::Model;
use crate::simplex::{solve_single, Basis, SimplexOptions, Solution};

/// One rung of the escalation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Caller options + warm basis (the normal fast path).
    Warm,
    /// Cold start with a short refactorization interval.
    ColdRefactor,
    /// Cold start under forced Bland's rule (safe mode).
    BlandSafe,
    /// Bound-perturbation retry.
    Perturb,
}

impl Rung {
    /// All rungs in escalation order.
    pub const ALL: [Rung; 4] = [Rung::Warm, Rung::ColdRefactor, Rung::BlandSafe, Rung::Perturb];

    /// Stable lower-case name, used in telemetry events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Warm => "warm",
            Rung::ColdRefactor => "cold_refactor",
            Rung::BlandSafe => "bland_safe",
            Rung::Perturb => "perturb",
        }
    }
}

/// One attempted rung and how it ended.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: Rung,
    /// `None` if the attempt succeeded; the error otherwise.
    pub error: Option<LpError>,
    /// Simplex iterations the attempt used (0 when the solve failed before
    /// reporting a count — e.g. an injected fault or a deadline hit).
    pub iterations: usize,
    /// Wall-clock time the attempt took, success or not.
    pub elapsed: std::time::Duration,
}

/// Audit trail of a [`solve_robust`] call.
#[derive(Debug, Clone, Default)]
pub struct SolveReport {
    /// Every attempt, in order.
    pub attempts: Vec<RungAttempt>,
}

impl SolveReport {
    /// The rung that produced the returned solution, if the solve succeeded.
    pub fn succeeded_rung(&self) -> Option<Rung> {
        self.attempts.iter().find(|a| a.error.is_none()).map(|a| a.rung)
    }

    /// Whether the solve succeeded only after at least one failed attempt.
    pub fn recovered(&self) -> bool {
        self.succeeded_rung().is_some() && self.attempts.len() > 1
    }

    /// Errors of the failed attempts, in order.
    pub fn errors(&self) -> impl Iterator<Item = &LpError> {
        self.attempts.iter().filter_map(|a| a.error.as_ref())
    }

    /// Total simplex iterations across every attempt, including the
    /// successful one.
    pub fn total_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }

    /// Total wall-clock time across every attempt.
    pub fn total_elapsed(&self) -> std::time::Duration {
        self.attempts.iter().map(|a| a.elapsed).sum()
    }

    fn record(
        &mut self,
        rung: Rung,
        error: Option<LpError>,
        iterations: usize,
        elapsed: std::time::Duration,
    ) {
        if flexile_obs::enabled() {
            let mut ev = flexile_obs::event("lp.rung", "lp")
                .field("rung", rung.name())
                .field("ok", error.is_none())
                .field("iterations", iterations)
                .field("elapsed_us", elapsed.as_micros() as u64);
            if let Some(e) = &error {
                ev = ev.field("error", e.to_string());
            }
            drop(ev); // recorded on drop
        }
        self.attempts.push(RungAttempt { rung, error, iterations, elapsed });
    }
}

/// Options for [`solve_robust`].
#[derive(Debug, Clone, Copy)]
pub struct RobustOptions {
    /// Iteration/deadline budget. The deadline is absolute, so it bounds
    /// the whole ladder, not each rung.
    pub budget: SolveBudget,
    /// Relative magnitude of the rung-4 bound/RHS jitter.
    pub perturb: f64,
    /// Run the presolve pass on cold solves (rungs 1–2). On by default;
    /// callers that need the *unreduced* dual vector bit-for-bit — e.g. the
    /// Benders cut extraction, whose cuts must not depend on which
    /// reductions fired — turn it off. Rung 3 (Bland safe mode) never
    /// presolves regardless.
    pub presolve: bool,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions { budget: SolveBudget::unlimited(), perturb: 1e-7, presolve: true }
    }
}

/// Result of [`solve_robust`]: the solve outcome plus its audit trail.
#[derive(Debug, Clone)]
pub struct RobustOutcome {
    /// The solution, or the terminal error if every rung failed.
    pub result: Result<Solution, LpError>,
    /// What it took to get there.
    pub report: SolveReport,
}

fn retryable(e: &LpError) -> bool {
    matches!(e, LpError::Numerical(_) | LpError::IterationLimit)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic relative jitter in `[-1, 1] · scale`.
fn jitter(state: &mut u64, scale: f64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 52) as f64) - 1.0;
    u * scale
}

/// A copy of `model` with every finite bound and RHS entry nudged by a
/// deterministic relative epsilon (absolute epsilon for zero entries).
fn perturbed_model(model: &Model, scale: f64) -> Model {
    let mut p = model.clone();
    let mut state = 0x5EED_F1E5_0BAD_CA5E_u64;
    let nudge = |v: f64, state: &mut u64| {
        if !v.is_finite() {
            return v;
        }
        let rel = jitter(state, scale);
        if v == 0.0 {
            rel
        } else {
            v * (1.0 + rel)
        }
    };
    for j in 0..p.lb.len() {
        let (lo, hi) = (nudge(p.lb[j], &mut state), nudge(p.ub[j], &mut state));
        // Never let the jitter cross the bounds.
        p.lb[j] = lo.min(hi);
        p.ub[j] = lo.max(hi);
    }
    for r in 0..p.rhs.len() {
        p.rhs[r] = nudge(p.rhs[r], &mut state);
    }
    p
}

/// Solve `model` through the escalation ladder described in the module
/// docs, recording every attempt in the returned report.
pub fn solve_robust(
    model: &Model,
    opts: &RobustOptions,
    warm: Option<&Basis>,
) -> RobustOutcome {
    let mut report = SolveReport::default();
    let base = SimplexOptions { presolve: opts.presolve, ..opts.budget.simplex_options() };

    // Rung 1: warm, default interval (== first attempt of Model::solve).
    let t0 = std::time::Instant::now();
    match solve_single(model, &base, warm) {
        Ok(sol) => {
            report.record(Rung::Warm, None, sol.iterations, t0.elapsed());
            return RobustOutcome { result: Ok(sol), report };
        }
        Err(e) => {
            let terminal = !retryable(&e);
            report.record(Rung::Warm, Some(e.clone()), 0, t0.elapsed());
            if terminal {
                return RobustOutcome { result: Err(e), report };
            }
        }
    }

    // Rung 2: cold start, Dantzig pricing, refactorize every 8
    // (== Model::solve's internal retry, kept behaviourally identical).
    let cold = SimplexOptions {
        pricing: crate::simplex::Pricing::Dantzig,
        refactor_every: Some(8),
        ..base
    };
    let t0 = std::time::Instant::now();
    match solve_single(model, &cold, None) {
        Ok(sol) => {
            report.record(Rung::ColdRefactor, None, sol.iterations, t0.elapsed());
            return RobustOutcome { result: Ok(sol), report };
        }
        Err(e) => {
            let terminal = !retryable(&e);
            report.record(Rung::ColdRefactor, Some(e.clone()), 0, t0.elapsed());
            if terminal {
                return RobustOutcome { result: Err(e), report };
            }
        }
    }

    // Rung 3: Bland safe mode on the dense oracle engine, so a failure tied
    // to the sparse LU/eta representation cannot reproduce itself here.
    let bland = SimplexOptions {
        force_bland: true,
        refactor_every: Some(8),
        engine: crate::EngineKind::Dense,
        ..base
    };
    let t0 = std::time::Instant::now();
    match solve_single(model, &bland, None) {
        Ok(sol) => {
            report.record(Rung::BlandSafe, None, sol.iterations, t0.elapsed());
            return RobustOutcome { result: Ok(sol), report };
        }
        Err(e) => {
            let terminal = !retryable(&e);
            report.record(Rung::BlandSafe, Some(e.clone()), 0, t0.elapsed());
            if terminal {
                return RobustOutcome { result: Err(e), report };
            }
        }
    }

    // Rung 4: perturbation retry. Iterations/elapsed cover both the
    // perturbed solve and the clean-up re-solve.
    let perturbed = perturbed_model(model, opts.perturb);
    let t0 = std::time::Instant::now();
    match solve_single(&perturbed, &bland, None) {
        Ok(psol) => {
            // Clean-up: re-solve the *original* model warm from the
            // perturbed basis; usually a handful of pivots.
            match solve_single(model, &cold, Some(&psol.basis)) {
                Ok(sol) => {
                    report.record(
                        Rung::Perturb,
                        None,
                        psol.iterations + sol.iterations,
                        t0.elapsed(),
                    );
                    RobustOutcome { result: Ok(sol), report }
                }
                Err(_) => {
                    // The perturbed solution is feasible for the original
                    // up to O(perturb); better than nothing, still Ok.
                    report.record(Rung::Perturb, None, psol.iterations, t0.elapsed());
                    RobustOutcome { result: Ok(psol), report }
                }
            }
        }
        Err(e) => {
            report.record(Rung::Perturb, Some(e.clone()), 0, t0.elapsed());
            RobustOutcome { result: Err(e), report }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{self, FaultInjector, FaultKind};
    use crate::model::Sense;

    /// max x + y s.t. x + y <= 4, x <= 3, y <= 3. Optimum 4.
    fn small_model() -> Model {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 3.0, 1.0);
        let y = m.add_var("y", 0.0, 3.0, 1.0);
        m.add_row_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m
    }

    #[test]
    fn clean_solve_uses_first_rung() {
        let m = small_model();
        let out = solve_robust(&m, &RobustOptions::default(), None);
        let sol = out.result.expect("clean solve");
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert_eq!(out.report.succeeded_rung(), Some(Rung::Warm));
        assert!(!out.report.recovered());
    }

    #[test]
    fn single_fault_recovers_on_second_rung() {
        let m = small_model();
        let (out, used) =
            fault::with_injector(FaultInjector::new().at(0, FaultKind::Numerical), || {
                solve_robust(&m, &RobustOptions::default(), None)
            });
        assert_eq!(used.injected().len(), 1);
        let sol = out.result.expect("recovered solve");
        assert!((sol.objective - 4.0).abs() < 1e-9);
        assert_eq!(out.report.succeeded_rung(), Some(Rung::ColdRefactor));
        assert!(out.report.recovered());
    }

    #[test]
    fn two_faults_reach_bland_rung() {
        let m = small_model();
        let inj = FaultInjector::new()
            .at(0, FaultKind::IterationLimit)
            .at(1, FaultKind::Numerical);
        let (out, _) = fault::with_injector(inj, || {
            solve_robust(&m, &RobustOptions::default(), None)
        });
        assert!((out.result.expect("recovered").objective - 4.0).abs() < 1e-9);
        assert_eq!(out.report.succeeded_rung(), Some(Rung::BlandSafe));
    }

    #[test]
    fn three_faults_reach_perturb_rung() {
        let m = small_model();
        let inj = FaultInjector::new()
            .at(0, FaultKind::Numerical)
            .at(1, FaultKind::SingularBasis)
            .at(2, FaultKind::Numerical);
        let (out, _) = fault::with_injector(inj, || {
            solve_robust(&m, &RobustOptions::default(), None)
        });
        let sol = out.result.expect("perturb rung should rescue");
        assert!((sol.objective - 4.0).abs() < 1e-4);
        assert_eq!(out.report.succeeded_rung(), Some(Rung::Perturb));
        assert_eq!(out.report.errors().count(), 3);
    }

    #[test]
    fn persistent_fault_is_terminal_with_full_report() {
        let m = small_model();
        let (out, used) = fault::with_injector(FaultInjector::always(FaultKind::Numerical), || {
            solve_robust(&m, &RobustOptions::default(), None)
        });
        assert!(matches!(out.result, Err(LpError::Numerical(_))));
        // All four rungs tried (perturb polls twice only on success paths).
        assert_eq!(out.report.attempts.len(), 4);
        assert_eq!(out.report.succeeded_rung(), None);
        assert!(used.injected().len() >= 4);
    }

    #[test]
    fn deadline_fault_is_terminal_immediately() {
        let m = small_model();
        let (out, _) =
            fault::with_injector(FaultInjector::new().at(0, FaultKind::DeadlineExceeded), || {
                solve_robust(&m, &RobustOptions::default(), None)
            });
        assert!(matches!(out.result, Err(LpError::DeadlineExceeded)));
        assert_eq!(out.report.attempts.len(), 1);
    }

    #[test]
    fn infeasible_is_terminal_immediately() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_row_ge(&[(x, 1.0)], 2.0);
        let out = solve_robust(&m, &RobustOptions::default(), None);
        assert!(matches!(out.result, Err(LpError::Infeasible)));
        assert_eq!(out.report.attempts.len(), 1);
    }

    #[test]
    fn success_path_records_iterations_and_elapsed() {
        let m = small_model();
        let out = solve_robust(&m, &RobustOptions::default(), None);
        let sol = out.result.expect("clean solve");
        assert_eq!(out.report.attempts.len(), 1);
        let a = &out.report.attempts[0];
        assert_eq!(a.iterations, sol.iterations);
        assert!(a.iterations > 0, "a real solve takes pivots");
        assert_eq!(out.report.total_iterations(), sol.iterations);
        // Elapsed is recorded on the success path too (not only escalation).
        assert!(out.report.total_elapsed() > std::time::Duration::ZERO);
    }

    #[test]
    fn failed_attempts_still_record_elapsed() {
        let m = small_model();
        let (out, _) =
            fault::with_injector(FaultInjector::new().at(0, FaultKind::Numerical), || {
                solve_robust(&m, &RobustOptions::default(), None)
            });
        let report = out.report;
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].iterations, 0, "faulted attempt has no count");
        assert!(report.attempts[1].iterations > 0);
        assert_eq!(report.total_iterations(), report.attempts[1].iterations);
    }

    #[test]
    fn perturbed_model_stays_close() {
        let m = small_model();
        let p = perturbed_model(&m, 1e-7);
        for j in 0..m.lb.len() {
            assert!((m.lb[j] - p.lb[j]).abs() <= 1e-6);
            assert!(p.lb[j] <= p.ub[j]);
        }
        // Deterministic: same perturbation every time.
        let p2 = perturbed_model(&m, 1e-7);
        assert_eq!(p.rhs, p2.rhs);
    }
}
