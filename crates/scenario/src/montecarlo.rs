//! Monte-Carlo sampling of the failure model — an independent check on the
//! exact enumeration (and on any percentile computed from it).
//!
//! The enumerated [`crate::ScenarioSet`] is an analytic object; sampling
//! raw unit failures gives an empirical distribution to cross-validate it:
//! the empirical frequency of each enumerated scenario must converge to its
//! probability, and empirical quantiles of any per-scenario statistic must
//! converge to the analytic ones. The tests in this module (and the
//! workspace suite) use it exactly that way.

use crate::model::{FailureUnit, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw `samples` independent failure states of the given units. Each
/// sample is materialized like an enumerated [`Scenario`] (probability is
/// set to `1/samples`, demand factor 1).
pub fn sample_failures(
    units: &[FailureUnit],
    num_links: usize,
    samples: usize,
    seed: u64,
) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..samples)
        .map(|_| {
            let mut cap = vec![1.0f64; num_links];
            let mut failed = Vec::new();
            for (u, unit) in units.iter().enumerate() {
                if rng.random_range(0.0..1.0) < unit.prob {
                    failed.push(u as u32);
                    for &(l, share) in &unit.affects {
                        cap[l.index()] = (cap[l.index()] - share).max(0.0);
                    }
                }
            }
            Scenario {
                failed_units: failed,
                prob: 1.0 / samples as f64,
                cap_factor: cap,
                demand_factor: 1.0,
            }
        })
        .collect()
}

/// Empirical estimate of the probability that predicate `pred` holds,
/// from `samples` draws.
pub fn estimate_probability<F>(
    units: &[FailureUnit],
    num_links: usize,
    samples: usize,
    seed: u64,
    mut pred: F,
) -> f64
where
    F: FnMut(&Scenario) -> bool,
{
    let draws = sample_failures(units, num_links, samples, seed);
    draws.iter().filter(|s| pred(s)).count() as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_scenarios, EnumOptions};
    use crate::model::link_units;
    use flexile_topo::{LinkId, Topology};

    fn units() -> Vec<FailureUnit> {
        let t = Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        link_units(&t, &[0.05, 0.1, 0.15])
    }

    #[test]
    fn marginals_converge() {
        let u = units();
        for (l, expect) in [(0usize, 0.05), (1, 0.1), (2, 0.15)] {
            let p = estimate_probability(&u, 3, 60_000, 42 + l as u64, |s| {
                s.link_dead(LinkId(l as u32))
            });
            assert!(
                (p - expect).abs() < 0.01,
                "link {l}: empirical {p} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn enumerated_probabilities_match_sampling() {
        let u = units();
        let set = enumerate_scenarios(
            &u,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        );
        let draws = sample_failures(&u, 3, 80_000, 7);
        for scen in &set.scenarios {
            let hits = draws
                .iter()
                .filter(|d| d.failed_units == scen.failed_units)
                .count() as f64
                / draws.len() as f64;
            assert!(
                (hits - scen.prob).abs() < 0.01,
                "{:?}: empirical {hits} vs analytic {}",
                scen.failed_units,
                scen.prob
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_by_seed() {
        let u = units();
        let a = sample_failures(&u, 3, 100, 5);
        let b = sample_failures(&u, 3, 100, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.failed_units, y.failed_units);
        }
    }
}
