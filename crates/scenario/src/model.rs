//! Failure units, scenarios and scenario sets.

use flexile_topo::{LinkId, Topology, TunnelSet};

/// An independently-failing entity. Failing a unit removes `share` of the
/// capacity of every link it touches:
///
/// * whole-link failure: one `(link, 1.0)` entry;
/// * sub-link failure (richly-connected variants): `(link, 0.5)`;
/// * SRLG: several `(link, 1.0)` entries that fail together.
#[derive(Debug, Clone)]
pub struct FailureUnit {
    /// Links affected, with the capacity share removed on failure.
    pub affects: Vec<(LinkId, f64)>,
    /// Independent failure probability of this unit.
    pub prob: f64,
}

impl FailureUnit {
    /// A whole-link unit.
    pub fn link(l: LinkId, prob: f64) -> Self {
        FailureUnit { affects: vec![(l, 1.0)], prob }
    }

    /// A half-capacity sub-link unit.
    pub fn sublink(l: LinkId, prob: f64) -> Self {
        FailureUnit { affects: vec![(l, 0.5)], prob }
    }

    /// A shared-risk group failing several whole links together.
    pub fn srlg(links: &[LinkId], prob: f64) -> Self {
        FailureUnit { affects: links.iter().map(|&l| (l, 1.0)).collect(), prob }
    }
}

/// One failure scenario: a subset of failed units, its probability, and the
/// per-link capacity factor (`m_eq` in the paper's reformulation (18)).
///
/// `demand_factor` supports the §4.4 "more general scenarios"
/// generalization where each scenario also carries a traffic-matrix level
/// (`d_f` becomes `d_f^q`): 1.0 for plain failure scenarios; see
/// [`crate::tm::with_demand_levels`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Indices of failed units.
    pub failed_units: Vec<u32>,
    /// Scenario probability.
    pub prob: f64,
    /// `cap_factor[l] ∈ [0,1]`: surviving capacity fraction of link `l`.
    pub cap_factor: Vec<f64>,
    /// Uniform demand multiplier for this scenario (§4.4), default 1.0.
    pub demand_factor: f64,
}

impl Scenario {
    /// Whether link `l` is completely dead.
    pub fn link_dead(&self, l: LinkId) -> bool {
        self.cap_factor[l.index()] <= 0.0
    }

    /// Dead-link mask (`true` = dead), as consumed by path liveness checks.
    pub fn dead_mask(&self) -> Vec<bool> {
        self.cap_factor.iter().map(|&c| c <= 0.0).collect()
    }
}

/// An enumerated set of failure scenarios plus the unenumerated residual.
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    /// The failure units the set was enumerated from.
    pub units: Vec<FailureUnit>,
    /// Scenarios in decreasing probability order; `scenarios[0]` is always
    /// the all-alive state.
    pub scenarios: Vec<Scenario>,
    /// Probability mass of scenarios not enumerated.
    pub residual: f64,
    /// Number of links of the underlying topology.
    pub num_links: usize,
}

impl ScenarioSet {
    /// Total enumerated probability.
    pub fn covered_prob(&self) -> f64 {
        1.0 - self.residual
    }

    /// Per-scenario probabilities.
    pub fn probs(&self) -> Vec<f64> {
        self.scenarios.iter().map(|s| s.prob).collect()
    }

    /// For each scenario, whether each pair of `tunnels` has a live tunnel.
    /// `alive[q][p]` is true when pair `p` can carry traffic in scenario `q`.
    pub fn pair_alive_matrix(&self, tunnels: &TunnelSet) -> Vec<Vec<bool>> {
        self.scenarios
            .iter()
            .map(|s| {
                let dead = s.dead_mask();
                (0..tunnels.pairs.len())
                    .map(|p| tunnels.pair_alive(p, &dead))
                    .collect()
            })
            .collect()
    }

    /// The largest design target β such that every pair still has a live
    /// tunnel in enumerated scenarios totalling probability ≥ β (§6: "our
    /// design target is set to as high a probability target as possible,
    /// while ensuring all flows remain connected"). Returns the minimum over
    /// pairs of the alive probability, minus a small safety margin.
    pub fn max_feasible_beta(&self, tunnels: &TunnelSet) -> f64 {
        let alive = self.pair_alive_matrix(tunnels);
        let mut min_alive = f64::INFINITY;
        for p in 0..tunnels.pairs.len() {
            let mass: f64 = self
                .scenarios
                .iter()
                .enumerate()
                .filter(|(q, _)| alive[*q][p])
                .map(|(_, s)| s.prob)
                .sum();
            min_alive = min_alive.min(mass);
        }
        if min_alive.is_infinite() {
            return 0.0;
        }
        // Tiny safety margin keeps percentile boundary cases stable.
        (min_alive - 1e-9).max(0.0)
    }
}

/// Build whole-link failure units for a topology from per-link
/// probabilities.
pub fn link_units(topo: &Topology, probs: &[f64]) -> Vec<FailureUnit> {
    assert_eq!(probs.len(), topo.num_links());
    topo.links()
        .map(|(id, _)| FailureUnit::link(id, probs[id.index()]))
        .collect()
}

/// Build the "richly connected" variant of Fig. 12: each link becomes two
/// independently-failing sub-links, each holding half the capacity.
pub fn sublink_units(topo: &Topology, probs: &[f64]) -> Vec<FailureUnit> {
    assert_eq!(probs.len(), topo.num_links());
    let mut units = Vec::with_capacity(2 * topo.num_links());
    for (id, _) in topo.links() {
        units.push(FailureUnit::sublink(id, probs[id.index()]));
        units.push(FailureUnit::sublink(id, probs[id.index()]));
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexile_topo::graph::Topology;
    use flexile_topo::{NodeId, TunnelClass};

    fn triangle() -> Topology {
        Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
    }

    #[test]
    fn unit_constructors() {
        let u = FailureUnit::link(LinkId(2), 0.01);
        assert_eq!(u.affects, vec![(LinkId(2), 1.0)]);
        let s = FailureUnit::sublink(LinkId(0), 0.02);
        assert_eq!(s.affects, vec![(LinkId(0), 0.5)]);
        let g = FailureUnit::srlg(&[LinkId(0), LinkId(1)], 0.005);
        assert_eq!(g.affects.len(), 2);
    }

    #[test]
    fn scenario_dead_mask() {
        let s = Scenario {
            failed_units: vec![0],
            prob: 0.01,
            cap_factor: vec![0.0, 1.0, 0.5],
            demand_factor: 1.0,
        };
        assert!(s.link_dead(LinkId(0)));
        assert!(!s.link_dead(LinkId(2)));
        assert_eq!(s.dead_mask(), vec![true, false, false]);
    }

    #[test]
    fn link_and_sublink_unit_builders() {
        let t = triangle();
        let probs = vec![0.01, 0.02, 0.03];
        assert_eq!(link_units(&t, &probs).len(), 3);
        let subs = sublink_units(&t, &probs);
        assert_eq!(subs.len(), 6);
        assert!(subs.iter().all(|u| u.affects[0].1 == 0.5));
    }

    #[test]
    fn max_feasible_beta_triangle() {
        let t = triangle();
        // Hand-built scenarios: all alive (0.97), link0 dead (0.02),
        // links 0+1 dead (0.01) -> node 0 isolated.
        let set = ScenarioSet {
            units: link_units(&t, &[0.02, 0.01, 0.01]),
            scenarios: vec![
                Scenario { failed_units: vec![], prob: 0.97, cap_factor: vec![1.0, 1.0, 1.0], demand_factor: 1.0 },
                Scenario { failed_units: vec![0], prob: 0.02, cap_factor: vec![0.0, 1.0, 1.0], demand_factor: 1.0 },
                Scenario { failed_units: vec![0, 1], prob: 0.01, cap_factor: vec![0.0, 0.0, 1.0], demand_factor: 1.0 },
            ],
            residual: 0.0,
            num_links: 3,
        };
        let pairs = t.ordered_pairs();
        let ts = TunnelSet::build(&t, &pairs, TunnelClass::SingleClass);
        // When links 0 and 1 are dead node 0 is cut off: pairs touching node
        // 0 are alive with prob 0.99, the rest 1.0.
        let beta = set.max_feasible_beta(&ts);
        assert!((beta - 0.99).abs() < 1e-6, "beta = {beta}");
        let _ = NodeId(0);
    }
}
