//! Weibull-distributed link failure probabilities (§6 "Failure scenarios").
//!
//! The paper (like Teavar) draws each link's failure probability from a
//! Weibull distribution, choosing parameters so the *median* probability is
//! approximately 0.001, matching empirical WAN failure studies. We sample by
//! inverse CDF so only `rand`'s uniform generator is needed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverse CDF of the Weibull distribution with shape `k` and scale
/// `lambda`: returns `x` with `F(x) = u`.
pub fn weibull_inverse_cdf(u: f64, k: f64, lambda: f64) -> f64 {
    assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
    assert!(k > 0.0 && lambda > 0.0);
    lambda * (-(1.0 - u).ln()).powf(1.0 / k)
}

/// Default Weibull shape used by the evaluation (long-tailed, like Teavar's
/// fits to Microsoft WAN data).
pub const DEFAULT_SHAPE: f64 = 0.8;

/// Default target median failure probability (≈ the empirical WAN median).
pub const DEFAULT_MEDIAN: f64 = 0.001;

/// Sample `n` per-link failure probabilities from a Weibull distribution
/// with the given shape, scaled so the distribution median equals
/// `median_target`. Probabilities are clamped into `[1e-5, 0.3]` so no link
/// is perfectly reliable or absurdly flaky.
pub fn link_failure_probs(n: usize, shape: f64, median_target: f64, seed: u64) -> Vec<f64> {
    // Median of Weibull(k, λ) is λ (ln 2)^{1/k}.
    let lambda = median_target / (2f64.ln()).powf(1.0 / shape);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            weibull_inverse_cdf(u, shape, lambda).clamp(1e-5, 0.3)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cdf_median() {
        // F^{-1}(0.5) should equal λ (ln2)^{1/k}.
        let k = 0.8;
        let lam = 2.0;
        let med = weibull_inverse_cdf(0.5, k, lam);
        assert!((med - lam * (2f64.ln()).powf(1.0 / k)).abs() < 1e-12);
    }

    #[test]
    fn inverse_cdf_monotone() {
        let mut last = 0.0;
        for i in 1..100 {
            let x = weibull_inverse_cdf(i as f64 / 100.0, 0.8, 1.0);
            assert!(x >= last);
            last = x;
        }
    }

    #[test]
    fn sampled_median_near_target() {
        let probs = link_failure_probs(20_001, DEFAULT_SHAPE, DEFAULT_MEDIAN, 42);
        let mut s = probs.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = s[s.len() / 2];
        assert!(
            (med - DEFAULT_MEDIAN).abs() < 0.0005,
            "sampled median {med} far from target"
        );
    }

    #[test]
    fn probabilities_clamped() {
        for p in link_failure_probs(5_000, 0.5, 0.001, 7) {
            assert!((1e-5..=0.3).contains(&p));
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            link_failure_probs(10, 0.8, 0.001, 9),
            link_failure_probs(10, 0.8, 0.001, 9)
        );
        assert_ne!(
            link_failure_probs(10, 0.8, 0.001, 9),
            link_failure_probs(10, 0.8, 0.001, 10)
        );
    }
}
