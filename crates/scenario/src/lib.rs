//! # flexile-scenario — probabilistic failure model
//!
//! Generates the failure-scenario sets `Q` the paper designs against:
//!
//! * [`weibull`] — per-link failure probabilities drawn from a Weibull
//!   distribution whose median matches the ≈0.001 empirical WAN failure rate
//!   (the paper's §6 methodology, following Teavar).
//! * [`model`] — *failure units*: the independently-failing entities. A unit
//!   may be a whole link, a half-capacity sub-link (the "richly connected"
//!   variants of Fig. 12) or a Shared Risk Link Group spanning several links
//!   (§4.1). A scenario is a subset of failed units; each link gets a
//!   *capacity factor* in `[0, 1]` — exactly the `m_eq` coefficient of the
//!   paper's reformulated subproblem (18).
//! * [`enumerate`] — exact enumeration of failure scenarios in strictly
//!   decreasing probability order (heap expansion over sorted odds-ratios),
//!   with a probability cutoff (default 1e-6, like the paper) and an
//!   explicit *residual* mass for everything not enumerated.

#![warn(missing_docs)]

pub mod enumerate;
pub mod model;
pub mod montecarlo;
pub mod stats;
pub mod tm;
pub mod weibull;

pub use enumerate::{enumerate_scenarios, EnumOptions};
pub use model::{FailureUnit, Scenario, ScenarioSet};
pub use montecarlo::{estimate_probability, sample_failures};
pub use stats::{scenario_stats, ScenarioStats};
pub use tm::with_demand_levels;
pub use weibull::{link_failure_probs, weibull_inverse_cdf};
