//! Diagnostics over scenario sets: link criticality, expected capacity
//! loss, and failure-size distribution. Useful when deciding enumeration
//! budgets and explaining *why* a design marks certain scenarios critical.

use crate::model::ScenarioSet;

/// Summary statistics of a scenario set.
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    /// Number of enumerated scenarios.
    pub count: usize,
    /// Covered probability mass.
    pub covered: f64,
    /// Probability-weighted expected fraction of total capacity lost.
    pub expected_capacity_loss: f64,
    /// `size_dist[k]` = probability mass of scenarios with `k` failed
    /// units (truncated at the largest observed size).
    pub size_dist: Vec<f64>,
    /// Per-link probability that the link is fully dead.
    pub link_dead_prob: Vec<f64>,
}

/// Compute [`ScenarioStats`] for a set.
pub fn scenario_stats(set: &ScenarioSet) -> ScenarioStats {
    let nl = set.num_links;
    let mut expected_loss = 0.0;
    let mut link_dead = vec![0.0; nl];
    let max_size = set
        .scenarios
        .iter()
        .map(|s| s.failed_units.len())
        .max()
        .unwrap_or(0);
    let mut size_dist = vec![0.0; max_size + 1];
    for s in &set.scenarios {
        let lost: f64 = s.cap_factor.iter().map(|c| 1.0 - c).sum::<f64>() / nl.max(1) as f64;
        expected_loss += s.prob * lost;
        size_dist[s.failed_units.len()] += s.prob;
        for (l, &c) in s.cap_factor.iter().enumerate() {
            if c <= 0.0 {
                link_dead[l] += s.prob;
            }
        }
    }
    ScenarioStats {
        count: set.scenarios.len(),
        covered: set.covered_prob(),
        expected_capacity_loss: expected_loss,
        size_dist,
        link_dead_prob: link_dead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_scenarios, EnumOptions};
    use crate::model::link_units;
    use flexile_topo::Topology;

    fn set3(p: f64) -> ScenarioSet {
        let t = Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let units = link_units(&t, &[p; 3]);
        enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        )
    }

    #[test]
    fn link_dead_probability_matches_marginal() {
        let set = set3(0.1);
        let st = scenario_stats(&set);
        for &p in &st.link_dead_prob {
            assert!((p - 0.1).abs() < 1e-12, "marginal {p} != 0.1");
        }
    }

    #[test]
    fn size_distribution_sums_to_coverage() {
        let set = set3(0.05);
        let st = scenario_stats(&set);
        let total: f64 = st.size_dist.iter().sum();
        assert!((total - st.covered).abs() < 1e-12);
        assert_eq!(st.size_dist.len(), 4); // 0..=3 failures
        // Binomial check for the all-alive mass.
        assert!((st.size_dist[0] - 0.95f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn expected_capacity_loss_matches_marginals() {
        // With independent whole-link failures, expected fraction of
        // capacity lost equals the mean failure probability.
        let set = set3(0.2);
        let st = scenario_stats(&set);
        assert!((st.expected_capacity_loss - 0.2).abs() < 1e-12);
    }
}
