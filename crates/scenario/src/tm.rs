//! Traffic-matrix scenarios (§4.4 "More general scenarios").
//!
//! The paper notes that formulation (I) extends to designing for a set of
//! traffic matrices: each scenario `q` then carries its own demands
//! `d_f^q`, and the decomposition still applies (cuts remain per-scenario
//! valid; only the cross-scenario dual sharing is lost because the demand
//! coefficients enter the constraint matrix).
//!
//! [`with_demand_levels`] builds the cross product of a failure-scenario
//! set with a discrete distribution over demand levels — e.g. a "normal"
//! matrix 80% of the time and a 1.4× surge 20% of the time — assuming
//! demand levels are independent of failures.

use crate::model::{Scenario, ScenarioSet};

/// Cross a failure-scenario set with independent demand levels
/// `(factor, probability)`. Probabilities must sum to 1 (±1e-9); factors
/// must be positive. The residual mass is preserved.
pub fn with_demand_levels(set: &ScenarioSet, levels: &[(f64, f64)]) -> ScenarioSet {
    assert!(!levels.is_empty(), "need at least one demand level");
    let total_p: f64 = levels.iter().map(|&(_, p)| p).sum();
    assert!(
        (total_p - 1.0).abs() < 1e-9,
        "demand-level probabilities must sum to 1, got {total_p}"
    );
    assert!(levels.iter().all(|&(f, p)| f > 0.0 && p >= 0.0));

    let mut scenarios = Vec::with_capacity(set.scenarios.len() * levels.len());
    for s in &set.scenarios {
        for &(factor, p) in levels {
            if p <= 0.0 {
                continue;
            }
            scenarios.push(Scenario {
                failed_units: s.failed_units.clone(),
                prob: s.prob * p,
                cap_factor: s.cap_factor.clone(),
                demand_factor: s.demand_factor * factor,
            });
        }
    }
    // Keep the non-increasing probability order the consumers rely on.
    scenarios.sort_by(|a, b| b.prob.partial_cmp(&a.prob).unwrap_or(std::cmp::Ordering::Equal));
    ScenarioSet {
        units: set.units.clone(),
        scenarios,
        residual: set.residual,
        num_links: set.num_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_scenarios, EnumOptions};
    use crate::model::link_units;
    use flexile_topo::Topology;

    fn base_set() -> ScenarioSet {
        let t = Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let units = link_units(&t, &[0.01, 0.01, 0.01]);
        enumerate_scenarios(
            &units,
            3,
            &EnumOptions { prob_cutoff: 0.0, max_scenarios: 8, coverage_target: 2.0 },
        )
    }

    #[test]
    fn cross_product_shapes_and_mass() {
        let set = base_set();
        let tm = with_demand_levels(&set, &[(1.0, 0.8), (1.4, 0.2)]);
        assert_eq!(tm.scenarios.len(), 16);
        let total: f64 = tm.scenarios.iter().map(|s| s.prob).sum();
        assert!((total + tm.residual - 1.0).abs() < 1e-9);
        assert!(tm.scenarios.iter().any(|s| (s.demand_factor - 1.4).abs() < 1e-12));
        // Order remains non-increasing.
        for w in tm.scenarios.windows(2) {
            assert!(w[0].prob >= w[1].prob - 1e-15);
        }
    }

    #[test]
    fn zero_probability_levels_dropped() {
        let set = base_set();
        let tm = with_demand_levels(&set, &[(1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(tm.scenarios.len(), 8);
        assert!(tm.scenarios.iter().all(|s| s.demand_factor == 1.0));
    }

    #[test]
    #[should_panic]
    fn probabilities_must_sum_to_one() {
        let set = base_set();
        let _ = with_demand_levels(&set, &[(1.0, 0.5), (1.5, 0.4)]);
    }
}
