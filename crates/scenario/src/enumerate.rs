//! Exact enumeration of failure scenarios in decreasing probability order.
//!
//! With independent unit failures and probabilities `p_u < 0.5`, the
//! probability of a scenario (a failed subset `S`) is
//! `P(S) = Π_{u} (1-p_u) · Π_{u∈S} r_u` with odds ratio `r_u = p_u/(1-p_u)`.
//! After sorting units by decreasing `r`, subsets can be generated in
//! non-increasing probability with the classic heap expansion: from a subset
//! whose largest element (in sorted order) is `i`, emit children
//! `S ∪ {i+1}` and `(S \ {i}) ∪ {i+1}`. Both children have probability no
//! larger than the parent and every subset is generated exactly once.
//!
//! Enumeration stops at the probability cutoff (the paper discards scenarios
//! below 1e-6), a scenario-count cap, or a cumulative coverage target —
//! whichever comes first. The uncovered mass is reported as the residual.

use crate::model::{FailureUnit, Scenario, ScenarioSet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Options controlling scenario enumeration.
#[derive(Debug, Clone)]
pub struct EnumOptions {
    /// Discard scenarios with probability below this (paper: 1e-6).
    pub prob_cutoff: f64,
    /// Hard cap on the number of enumerated scenarios.
    pub max_scenarios: usize,
    /// Stop once enumerated mass reaches this coverage.
    pub coverage_target: f64,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            prob_cutoff: 1e-6,
            max_scenarios: 2_000,
            coverage_target: 0.999_999,
        }
    }
}

struct HeapState {
    prob: f64,
    /// Indices into the *sorted* unit order, ascending.
    subset: Vec<u32>,
}

impl PartialEq for HeapState {
    fn eq(&self, other: &Self) -> bool {
        self.prob == other.prob && self.subset == other.subset
    }
}
impl Eq for HeapState {}
impl PartialOrd for HeapState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapState {
    fn cmp(&self, other: &Self) -> Ordering {
        self.prob
            .partial_cmp(&other.prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.subset.cmp(&self.subset))
    }
}

/// Enumerate failure scenarios over `units` for a topology with `num_links`
/// links. Scenarios come out in non-increasing probability order; the
/// first scenario is always the all-alive state.
pub fn enumerate_scenarios(
    units: &[FailureUnit],
    num_links: usize,
    opts: &EnumOptions,
) -> ScenarioSet {
    for u in units {
        assert!(
            u.prob > 0.0 && u.prob < 0.5,
            "unit failure probabilities must lie in (0, 0.5), got {}",
            u.prob
        );
    }
    // Sort unit indices by decreasing odds ratio.
    let mut order: Vec<usize> = (0..units.len()).collect();
    let odds: Vec<f64> = units.iter().map(|u| u.prob / (1.0 - u.prob)).collect();
    order.sort_by(|&a, &b| odds[b].partial_cmp(&odds[a]).unwrap_or(Ordering::Equal));
    let sorted_odds: Vec<f64> = order.iter().map(|&i| odds[i]).collect();

    let p_all_alive: f64 = units.iter().map(|u| 1.0 - u.prob).product();

    let mut heap = BinaryHeap::new();
    heap.push(HeapState { prob: p_all_alive, subset: Vec::new() });

    let mut scenarios = Vec::new();
    let mut covered = 0.0;
    while let Some(HeapState { prob, subset }) = heap.pop() {
        if prob < opts.prob_cutoff || scenarios.len() >= opts.max_scenarios {
            break;
        }
        // Materialize the scenario.
        let mut cap = vec![1.0f64; num_links];
        let mut failed_units: Vec<u32> = Vec::with_capacity(subset.len());
        for &si in &subset {
            let u = order[si as usize];
            failed_units.push(u as u32);
            for &(l, share) in &units[u].affects {
                cap[l.index()] = (cap[l.index()] - share).max(0.0);
            }
        }
        failed_units.sort_unstable();
        covered += prob;
        scenarios.push(Scenario { failed_units, prob, cap_factor: cap, demand_factor: 1.0 });
        if covered >= opts.coverage_target {
            break;
        }

        // Children in sorted-index space.
        let last = subset.last().copied();
        let next = last.map_or(0, |l| l + 1);
        if (next as usize) < sorted_odds.len() {
            // Child 1: extend with `next`.
            let mut s1 = subset.clone();
            s1.push(next);
            heap.push(HeapState { prob: prob * sorted_odds[next as usize], subset: s1 });
            // Child 2: replace `last` with `next`.
            if let Some(l) = last {
                let mut s2 = subset.clone();
                *s2.last_mut().expect("nonempty") = next;
                heap.push(HeapState {
                    prob: prob / sorted_odds[l as usize] * sorted_odds[next as usize],
                    subset: s2,
                });
            }
        }
    }

    ScenarioSet {
        units: units.to_vec(),
        scenarios,
        residual: (1.0 - covered).max(0.0),
        num_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::link_units;
    use flexile_topo::Topology;

    fn units3(p: [f64; 3]) -> Vec<FailureUnit> {
        let t = Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        link_units(&t, &p)
    }

    #[test]
    fn full_enumeration_covers_everything() {
        let u = units3([0.1, 0.2, 0.3]);
        let opts = EnumOptions { prob_cutoff: 0.0, max_scenarios: 100, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        assert_eq!(set.scenarios.len(), 8);
        let total: f64 = set.scenarios.iter().map(|s| s.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(set.residual < 1e-12);
    }

    #[test]
    fn order_is_non_increasing() {
        let u = units3([0.01, 0.05, 0.2]);
        let opts = EnumOptions { prob_cutoff: 0.0, max_scenarios: 100, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        for w in set.scenarios.windows(2) {
            assert!(w[0].prob >= w[1].prob - 1e-15);
        }
        // First scenario is all-alive.
        assert!(set.scenarios[0].failed_units.is_empty());
    }

    #[test]
    fn probabilities_match_independent_model() {
        let p = [0.1, 0.2, 0.3];
        let u = units3(p);
        let opts = EnumOptions { prob_cutoff: 0.0, max_scenarios: 100, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        for s in &set.scenarios {
            let mut expect = 1.0;
            for i in 0..3 {
                if s.failed_units.contains(&(i as u32)) {
                    expect *= p[i];
                } else {
                    expect *= 1.0 - p[i];
                }
            }
            assert!((s.prob - expect).abs() < 1e-12, "{:?}", s.failed_units);
        }
    }

    #[test]
    fn cutoff_produces_residual() {
        let u = units3([0.002, 0.002, 0.002]);
        let opts = EnumOptions { prob_cutoff: 1e-6, max_scenarios: 100, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        // Double failures (~4e-6) survive the 1e-6 cutoff; the triple
        // failure (8e-9) is cut and lands in the residual.
        assert_eq!(set.scenarios.len(), 7);
        assert!(set.residual > 0.0 && set.residual < 1e-7);
    }

    #[test]
    fn cap_factor_reflects_sublinks() {
        use crate::model::sublink_units;
        let t = Topology::new("t", 3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let u = sublink_units(&t, &[0.1, 0.1, 0.1]);
        let opts = EnumOptions { prob_cutoff: 0.0, max_scenarios: 100, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        assert_eq!(set.scenarios.len(), 64);
        for s in &set.scenarios {
            for &c in &s.cap_factor {
                assert!(c == 0.0 || c == 0.5 || c == 1.0);
            }
        }
        // Some scenario should show a half-capacity link.
        assert!(set
            .scenarios
            .iter()
            .any(|s| s.cap_factor.contains(&0.5)));
    }

    #[test]
    fn max_scenarios_cap_respected() {
        let u = units3([0.1, 0.1, 0.1]);
        let opts = EnumOptions { prob_cutoff: 0.0, max_scenarios: 3, coverage_target: 2.0 };
        let set = enumerate_scenarios(&u, 3, &opts);
        assert_eq!(set.scenarios.len(), 3);
        assert!(set.residual > 0.0);
    }

    #[test]
    #[should_panic]
    fn prob_half_rejected() {
        let u = units3([0.5, 0.1, 0.1]);
        enumerate_scenarios(&u, 3, &EnumOptions::default());
    }
}
