//! Traffic-class configuration and the two-class demand split.

use flexile_topo::TunnelClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one traffic class (`k ∈ K`).
#[derive(Debug, Clone)]
pub struct ClassConfig {
    /// Human-readable name.
    pub name: String,
    /// Percentile target β_k (e.g. 0.999 for interactive traffic). A value
    /// of 0 means "fill in from the scenario set" via
    /// `ScenarioSet::max_feasible_beta`.
    pub beta: f64,
    /// Penalty weight w_k in the Σ w_k α_k objective.
    pub weight: f64,
    /// Tunnel-selection policy for the class.
    pub tunnel_class: TunnelClass,
}

impl ClassConfig {
    /// The single-class experiment configuration.
    pub fn single() -> Self {
        ClassConfig {
            name: "single".into(),
            beta: 0.0,
            weight: 1.0,
            tunnel_class: TunnelClass::SingleClass,
        }
    }

    /// Latency-sensitive interactive traffic (99.9% target by default).
    pub fn interactive() -> Self {
        ClassConfig {
            name: "interactive".into(),
            beta: 0.0, // filled from max_feasible_beta, like the paper
            weight: crate::instance::INTERACTIVE_WEIGHT,
            tunnel_class: TunnelClass::HighPriority,
        }
    }

    /// Elastic background traffic (99% target, §6).
    pub fn elastic() -> Self {
        ClassConfig {
            name: "elastic".into(),
            beta: 0.99,
            weight: crate::instance::ELASTIC_WEIGHT,
            tunnel_class: TunnelClass::LowPriority,
        }
    }
}

/// Randomly split each pair's demand into (high, low) with a uniform high
/// share in `[0.25, 0.75]`, then scale the low-priority part by 2× (§6:
/// "the traffic of each pair was randomly split into high and low priority.
/// We then scaled low priority traffic by a factor of 2").
pub fn two_class_split(base: &[f64], seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut high = Vec::with_capacity(base.len());
    let mut low = Vec::with_capacity(base.len());
    for &d in base {
        let share: f64 = rng.random_range(0.25..0.75);
        high.push(d * share);
        low.push(d * (1.0 - share) * 2.0);
    }
    (high, low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conserves_and_scales() {
        let base = vec![1.0, 2.0, 4.0];
        let (hi, lo) = two_class_split(&base, 1);
        for i in 0..3 {
            // hi + lo/2 reassembles the base demand.
            assert!((hi[i] + lo[i] / 2.0 - base[i]).abs() < 1e-12);
            assert!(hi[i] >= 0.25 * base[i] - 1e-12);
            assert!(hi[i] <= 0.75 * base[i] + 1e-12);
        }
    }

    #[test]
    fn split_is_deterministic() {
        let base = vec![1.0; 8];
        assert_eq!(two_class_split(&base, 3), two_class_split(&base, 3));
    }

    #[test]
    fn class_configs() {
        assert_eq!(ClassConfig::interactive().tunnel_class, TunnelClass::HighPriority);
        assert_eq!(ClassConfig::elastic().beta, 0.99);
        assert!(ClassConfig::interactive().weight > ClassConfig::elastic().weight);
    }
}
