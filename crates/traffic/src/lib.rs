//! # flexile-traffic — traffic matrices and problem instances
//!
//! Workload generation per §6 of the paper:
//!
//! * [`gravity`] — gravity-model traffic matrices from seeded node masses.
//! * [`mlu`] — the min-MLU routing LP used to scale a traffic matrix so the
//!   most congested link sits at a target utilization (the paper uses
//!   MLU ∈ [0.5, 0.7] on the intact network).
//! * [`classes`] — traffic-class configuration: β targets, penalty weights
//!   and tunnel policies; the two-class experiments randomly split each
//!   pair's demand and scale the low-priority share by 2×.
//! * [`instance`] — [`Instance`]: the fully materialized problem (topology,
//!   pairs, classes, tunnels, demands) consumed by every TE scheme and by
//!   Flexile itself, with the flow indexing convention
//!   `flow = class * num_pairs + pair`.

#![warn(missing_docs)]

pub mod classes;
pub mod gravity;
pub mod instance;
pub mod mlu;

pub use classes::{two_class_split, ClassConfig};
pub use gravity::gravity_matrix;
pub use instance::{Instance, INTERACTIVE_WEIGHT, ELASTIC_WEIGHT};
pub use mlu::{min_mlu, scale_to_mlu};
